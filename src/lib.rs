//! # ciao-suite — umbrella crate for the CIAO reproduction
//!
//! Re-exports the individual crates of the workspace under one roof so the
//! examples and downstream users can depend on a single crate:
//!
//! * [`mem`] (`gpu-mem`) — caches, MSHRs, shared memory, DRAM;
//! * [`sim`] (`gpu-sim`) — the cycle-approximate SM simulator;
//! * [`workloads`] (`ciao-workloads`) — the 21 synthetic benchmarks of Table II;
//! * [`schedulers`] (`ciao-schedulers`) — GTO's companions: CCWS, Best-SWL, statPCAL;
//! * [`ciao`] (`ciao-core`) — the paper's contribution (detector, shared-memory
//!   cache, CIAO-T/P/C scheduling, overhead model);
//! * [`fleet`] (`gpu-fleet`) — the cluster tier: open-loop traffic over a
//!   multi-chip fleet with interference-aware placement and SLO reporting;
//! * [`harness`] (`ciao-harness`) — per-figure experiment runners.
//!
//! ```
//! use ciao_suite::prelude::*;
//!
//! let runner = Runner::new(RunScale::Tiny);
//! let record = runner.record(Benchmark::Syrk, SchedulerKind::CiaoC);
//! assert!(record.ipc > 0.0);
//! ```

#![deny(missing_docs)]

pub use ciao_core as ciao;
pub use ciao_harness as harness;
pub use ciao_schedulers as schedulers;
pub use ciao_workloads as workloads;
pub use gpu_fleet as fleet;
pub use gpu_mem as mem;
pub use gpu_sim as sim;

/// The most commonly used types, re-exported for examples and quick scripts.
pub mod prelude {
    pub use ciao_core::{CiaoParams, CiaoScheduler, CiaoVariant, OverheadModel, SharedMemCache};
    pub use ciao_harness::runner::{RunRecord, RunScale, Runner};
    pub use ciao_harness::schedulers::SchedulerKind;
    pub use ciao_schedulers::{CcwsScheduler, PcalScheduler, SwlScheduler};
    pub use ciao_workloads::{Benchmark, BenchmarkClass, ScaleConfig};
    pub use gpu_fleet::{Fleet, FleetRequest, FleetResult, PlacementPolicy, TrafficSpec};
    pub use gpu_sim::{BackendKind, GpuConfig, SimRequest, SimResult, Simulator, TimingBackend};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_covers_the_end_to_end_flow() {
        let runner = Runner::new(RunScale::Tiny);
        let gto = runner.record(Benchmark::Nn, SchedulerKind::Gto);
        let ciao = runner.record(Benchmark::Nn, SchedulerKind::CiaoC);
        assert!(gto.ipc > 0.0 && ciao.ipc > 0.0);
    }
}
