//! Multi-SM scaling: simulate the same kernel on chips of 1, 2, 4, 8 and
//! 15 SMs and watch chip IPC scale while the shared L2 and DRAM absorb the
//! combined traffic of every SM.
//!
//! Each chip run dispatches the kernel's CTAs round-robin across the SMs,
//! executes the per-SM cycle loops in parallel worker threads, and routes
//! every L1 miss through the SM's crossbar port into one shared, banked
//! L2 + DRAM backend — so the printed numbers include real inter-SM L2
//! contention and DRAM row-buffer interference, not a per-SM extrapolation.
//!
//! ```sh
//! cargo run --release --example multi_sm_scaling
//! ```

use ciao_suite::prelude::*;

fn main() {
    let benchmark = Benchmark::Backprop;
    println!("benchmark: {} (class {})", benchmark.name(), benchmark.class().label());
    println!("machine:   GTX480-like; DRAM bandwidth scales with the SM count\n");
    println!(
        "{:>4}  {:>9}  {:>8}  {:>9}  {:>12}  {:>12}",
        "SMs", "chip IPC", "speedup", "cycles", "L2 accesses", "DRAM row-hit"
    );

    let mut base_ipc = 0.0;
    for sms in [1usize, 2, 4, 8, 15] {
        let runner = Runner::new(RunScale::Quick).with_sms(sms);
        let res = runner.run_one(benchmark, SchedulerKind::CiaoC);
        if sms == 1 {
            base_ipc = res.ipc();
        }
        println!(
            "{:>4}  {:>9.3}  {:>7.2}x  {:>9}  {:>12}  {:>11.1}%",
            res.num_sms,
            res.ipc(),
            res.ipc() / base_ipc,
            res.cycles,
            res.stats.l2.accesses(),
            res.stats.dram.row_hit_rate() * 100.0,
        );
    }

    println!(
        "\nper-SM breakdowns live in SimResult::per_sm; rerun any harness figure with \
         `--sms N` for chip-level numbers."
    );
}
