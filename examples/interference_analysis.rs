//! Interference analysis: reproduce the paper's motivation (Figs. 1a and 4a)
//! on any benchmark — which warps interfere with which, how skewed the
//! interference is, and what the interference detector concludes.
//!
//! ```sh
//! cargo run --release --example interference_analysis [BENCHMARK]
//! ```

use ciao_suite::prelude::*;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Backprop".to_string());
    let benchmark = Benchmark::from_name(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark {name}, falling back to Backprop");
        Benchmark::Backprop
    });

    let runner = Runner::new(RunScale::Quick);
    println!("analysing {} under GTO ...", benchmark.name());
    let result = runner.run_one(benchmark, SchedulerKind::Gto);
    let matrix = &result.interference;

    // Rank warps by how much interference they suffered.
    let mut victims: Vec<(u32, u64)> =
        (0..matrix.num_warps() as u32).map(|w| (w, matrix.suffered_by(w))).collect();
    victims.sort_by_key(|&(_, s)| std::cmp::Reverse(s));

    println!("\ntotal cross-warp evictions: {}", matrix.total());
    println!("L1D hit rate: {:.3}, IPC: {:.3}\n", result.l1d_hit_rate(), result.ipc());

    println!("most interfered warps and their dominant interferer:");
    for &(victim, suffered) in victims.iter().take(8).filter(|&&(_, s)| s > 0) {
        match matrix.worst_interferer(victim) {
            Some((evictor, count)) => println!(
                "  W{victim:<3} suffered {suffered:>6} evictions; worst interferer W{evictor} ({count} evictions, {:.0}% of the total)",
                100.0 * count as f64 / suffered as f64
            ),
            None => println!("  W{victim:<3} suffered {suffered:>6} evictions"),
        }
    }

    if let Some((min, max)) = matrix.min_max_nonzero() {
        println!(
            "\npairwise interference frequency ranges from {min} to {max} — the skew that\nlets CIAO track only the most recently and frequently interfering warp (Fig. 4)."
        );
    } else {
        println!("\nno cross-warp interference observed — this is a compute-intensive workload.");
    }
}
