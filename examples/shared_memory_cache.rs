//! Shared-memory-as-cache walkthrough: drive the CIAO on-chip memory
//! architecture (SMMT reservation, address translation, direct-mapped
//! tag/data layout) directly through its public API, without the simulator.
//!
//! ```sh
//! cargo run --release --example shared_memory_cache
//! ```

use ciao_suite::ciao::translation::TranslationUnit;
use ciao_suite::ciao::SharedMemCache;
use ciao_suite::sim::redirect::{RedirectCache, RedirectLookup};

fn main() {
    // 48 KB scratchpad; suppose resident CTAs use 16 KB (like PVC at 33%).
    let mut cache = SharedMemCache::new(48 * 1024, 1);
    cache.set_capacity(32 * 1024);
    println!(
        "scratchpad: 48 KB, CTAs use 16 KB -> CIAO reserves {} KB as a direct-mapped cache ({} lines of 128 B)",
        cache.capacity_bytes() / 1024,
        cache.capacity_bytes() / 128
    );

    // Show the §IV-B bit-sliced translation for a few global addresses.
    let unit = TranslationUnit::new(32 * 1024, 0).expect("enough space");
    println!("\naddress translation (data block vs tag placement):");
    for addr in [0x0u64, 0x80, 0x1000, 0xdead_0000 & 0xffff_ff80] {
        let loc = unit.translate(addr);
        println!(
            "  global {:#010x} -> line {:>3}: data (group {}, row {:>3}), tag (group {}, row {:>3}, slot {:>2})",
            addr, loc.line_index, loc.data_group, loc.data_row, loc.tag_group, loc.tag_row, loc.tag_slot
        );
    }

    // Exercise the cache behaviour of an isolated (interfering) warp.
    println!("\nredirected accesses of an isolated warp:");
    let warp = 7;
    for i in 0..4u64 {
        let addr = 0x4000_0000 + i * 128;
        match cache.lookup(addr, warp, false) {
            RedirectLookup::Miss => {
                cache.fill(addr, warp);
                println!("  {:#010x}: miss -> fetched from L2 and filled", addr);
            }
            RedirectLookup::Hit { latency } => println!("  {:#010x}: hit ({latency} cycle)", addr),
            RedirectLookup::Unavailable => println!("  {:#010x}: structure unavailable", addr),
        }
    }
    for i in 0..4u64 {
        let addr = 0x4000_0000 + i * 128;
        let outcome = cache.lookup(addr, warp, false);
        println!("  {:#010x}: re-reference -> {:?}", addr, outcome);
    }
    println!(
        "\nhits: {}, misses: {}, utilisation: {:.4}",
        cache.hits(),
        cache.misses(),
        cache.utilization()
    );

    // When a new CTA takes the whole scratchpad, the structure gracefully
    // reports Unavailable and the SM falls back to the L1D path.
    cache.set_capacity(0);
    println!(
        "\nafter a CTA claims the whole scratchpad: {:?}",
        cache.lookup(0x4000_0000, warp, false)
    );
}
