//! Multi-tenant co-execution in a dozen lines: co-run a cache-sensitive and
//! a streaming benchmark under each SM partitioning policy and watch which
//! one contains the inter-tenant cache interference.
//!
//! ```sh
//! cargo run --release --example multi_tenant_mix
//! ```

use ciao_suite::harness::runner::{RunScale, Runner};
use ciao_suite::harness::schedulers::SchedulerKind;
use ciao_suite::sim::{avg_normalized_turnaround, system_throughput, DispatchPolicy};
use ciao_suite::workloads::Mix;

fn main() {
    let runner = Runner::new(RunScale::Quick).with_sms(4);
    let mix = Mix::CacheStream; // SYRK (cache-sensitive) × ATAX (streaming)
    let scheduler = SchedulerKind::CiaoC;

    // Per-tenant baseline: each benchmark alone on the same 4-SM chip.
    let alone: Vec<f64> = mix
        .benchmarks()
        .iter()
        .map(|&b| runner.run_one(b, scheduler).per_tenant[0].ipc())
        .collect();

    println!("mix {} ({}), scheduler {}, 4 SMs", mix, mix.description(), scheduler.label());
    println!("{:<11} {:>7} {:>7}  per-tenant shared IPC (alone)", "policy", "STP", "ANTT");
    for policy in DispatchPolicy::all() {
        let res = runner.run_mix(mix, policy, scheduler);
        let shared = res.tenant_ipcs();
        let stp = system_throughput(&alone, &shared);
        let antt = avg_normalized_turnaround(&alone, &shared);
        let detail: Vec<String> = res
            .per_tenant
            .iter()
            .zip(&alone)
            .map(|(t, &a)| format!("{} {:.4} ({:.4})", t.kernel, t.ipc(), a))
            .collect();
        println!("{:<11} {:>7.3} {:>7.3}  {}", policy.label(), stp, antt, detail.join(", "));
    }
    println!();
    println!(
        "STP (system throughput / weighted speedup): higher is better, {} = perfect isolation.",
        alone.len()
    );
    println!("ANTT (avg normalized turnaround): lower is better, 1.0 = no slowdown.");
}
