//! Quickstart: simulate one benchmark under the baseline GTO scheduler and
//! under CIAO-C, and print the headline comparison.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ciao_suite::prelude::*;

fn main() {
    // A reduced-scale run so the example finishes in seconds; use
    // `RunScale::Full` to reproduce the EXPERIMENTS.md numbers.
    let runner = Runner::new(RunScale::Quick);
    let benchmark = Benchmark::Syrk;

    println!("benchmark: {} (class {})", benchmark.name(), benchmark.class().label());
    println!("machine:   GTX480-like, 16KB L1D / 48KB shared memory / 768KB L2\n");

    let mut baseline_ipc = 0.0;
    for scheduler in [
        SchedulerKind::Gto,
        SchedulerKind::Ccws,
        SchedulerKind::BestSwl,
        SchedulerKind::CiaoT,
        SchedulerKind::CiaoP,
        SchedulerKind::CiaoC,
    ] {
        let record = runner.record(benchmark, scheduler);
        if scheduler == SchedulerKind::Gto {
            baseline_ipc = record.ipc;
        }
        println!(
            "{:<9} ipc {:.3}  (vs GTO {:+5.1}%)  L1D hit rate {:.2}  interference events {:>6}  shmem-cache util {:.2}",
            scheduler.label(),
            record.ipc,
            (record.ipc / baseline_ipc - 1.0) * 100.0,
            record.l1d_hit_rate,
            record.interference_events,
            record.redirect_utilization,
        );
    }

    println!("\nCIAO-C should recover most of the locality that inter-warp interference");
    println!("destroys under GTO, without throttling TLP the way CCWS/Best-SWL do.");
}
