//! Scheduler comparison across benchmark classes: a miniature Fig. 8a.
//!
//! Runs one representative benchmark from each working-set class (LWS, SWS,
//! CI) under all seven schedulers of the paper and prints the normalised IPC
//! matrix plus per-class conclusions.
//!
//! ```sh
//! cargo run --release --example scheduler_comparison
//! ```

use ciao_suite::harness::experiments::fig8;
use ciao_suite::harness::geometric_mean;
use ciao_suite::prelude::*;

fn main() {
    let runner = Runner::new(RunScale::Quick);
    // One representative per class (Fig. 10 uses the same LWS/SWS pair).
    let benchmarks = [Benchmark::Kmn, Benchmark::Syrk, Benchmark::Backprop];
    let schedulers = SchedulerKind::all();

    println!("running {} simulations ...", benchmarks.len() * schedulers.len());
    let result = fig8::run(&runner, &benchmarks, &schedulers);
    println!("\n{}", fig8::render(&result));

    // Highlight the headline claims of the paper on this subset.
    let norm_of = |bench: &str, sched: &str| {
        result
            .normalized
            .iter()
            .find(|(b, s, _)| b == bench && s == sched)
            .map(|&(_, _, v)| v)
            .unwrap_or(0.0)
    };
    let ciao_c: Vec<f64> = benchmarks.iter().map(|b| norm_of(b.name(), "CIAO-C")).collect();
    let ccws: Vec<f64> = benchmarks.iter().map(|b| norm_of(b.name(), "CCWS")).collect();
    println!(
        "geomean over the subset: CIAO-C {:.2}x vs CCWS {:.2}x (paper: +54% for CIAO-C over CCWS on the full suite)",
        geometric_mean(&ciao_c),
        geometric_mean(&ccws)
    );
}
