//! CIAO on-chip memory architecture: unused shared memory as a cache (§IV-B).
//!
//! The structure is a **direct-mapped** cache (so a tag and its data block
//! can be fetched with a single scratchpad access) whose capacity tracks the
//! shared memory left unused by the resident CTAs. Tags and 128-byte data
//! blocks are placed in opposite 16-bank groups by the
//! [`crate::translation::TranslationUnit`], which makes a
//! tag + data access conflict-free; the hit latency therefore equals the
//! scratchpad latency.
//!
//! The structure plugs into the SM through `gpu_sim::RedirectCache`. The SM
//! handles the orchestration (L1D probe + migration through the response
//! queue, MSHR allocation with the translated address, L2 fetch); this module
//! owns the tag state, the replacement behaviour, the SMMT reservation
//! bookkeeping and the utilisation statistic reported in Fig. 8b.

use crate::translation::TranslationUnit;
use gpu_mem::cache::EvictedLine;
use gpu_mem::smmt::Smmt;
use gpu_mem::{Addr, Cycle, WarpId};
use gpu_sim::redirect::{RedirectCache, RedirectLookup};
use serde::{Deserialize, Serialize};

/// One direct-mapped line of the shared-memory cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct ShmemLine {
    valid: bool,
    block_addr: Addr,
    owner: WarpId,
}

impl ShmemLine {
    fn invalid() -> Self {
        ShmemLine { valid: false, block_addr: 0, owner: 0 }
    }
}

/// Statistics of the shared-memory cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShmemCacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Lookups made while the structure had no capacity.
    pub unavailable: u64,
    /// Fills performed.
    pub fills: u64,
    /// Valid lines displaced by fills.
    pub evictions: u64,
    /// Capacity changes triggered by CTA launch/retire.
    pub resizes: u64,
}

/// Unused shared memory organised as a direct-mapped cache.
#[derive(Debug, Clone)]
pub struct SharedMemCache {
    /// Scratchpad size managed by the SMMT (total, including CTA usage).
    scratchpad_bytes: u32,
    /// Scratchpad access latency (hit latency of this cache).
    latency: Cycle,
    /// SMMT mirror used to reserve the unused space for CIAO.
    smmt: Smmt,
    /// Translation unit for the currently reserved region (None = no space).
    translation: Option<TranslationUnit>,
    lines: Vec<ShmemLine>,
    stats: ShmemCacheStats,
}

impl SharedMemCache {
    /// Creates the structure for a scratchpad of `scratchpad_bytes` with the
    /// given access latency, initially assuming the whole scratchpad is
    /// unused (the SM adjusts it via [`RedirectCache::set_capacity`] as CTAs
    /// launch and retire).
    pub fn new(scratchpad_bytes: u32, latency: Cycle) -> Self {
        let mut cache = SharedMemCache {
            scratchpad_bytes,
            latency,
            smmt: Smmt::new(scratchpad_bytes),
            translation: None,
            lines: Vec::new(),
            stats: ShmemCacheStats::default(),
        };
        cache.rebuild(scratchpad_bytes as u64);
        cache
    }

    /// Convenience constructor matching the Table I scratchpad (48 KB, 1 cycle).
    pub fn gtx480() -> Self {
        SharedMemCache::new(48 * 1024, 1)
    }

    /// Current statistics.
    pub fn stats(&self) -> &ShmemCacheStats {
        &self.stats
    }

    /// Number of cache lines currently available.
    pub fn num_lines(&self) -> usize {
        self.lines.len()
    }

    /// Number of valid lines currently held.
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    fn rebuild(&mut self, unused_bytes: u64) {
        self.stats.resizes += 1;
        // Mirror the SMMT bookkeeping: release the previous CIAO reservation,
        // model the CTA usage as a single opaque allocation, and re-reserve
        // whatever is left for the cache.
        self.smmt = Smmt::new(self.scratchpad_bytes);
        let cta_used =
            self.scratchpad_bytes.saturating_sub(unused_bytes.min(u64::from(u32::MAX)) as u32);
        if cta_used > 0 {
            let _ = self.smmt.allocate_cta(0, cta_used);
        }
        let reserved = self.smmt.reserve_unused_for_ciao().ok();
        self.translation = reserved.and_then(|r| TranslationUnit::new(r.size as u64, r.base / 128));
        let lines = self.translation.map(|t| t.num_lines() as usize).unwrap_or(0);
        self.lines = vec![ShmemLine::invalid(); lines];
    }

    fn line_index(&self, block_addr: Addr) -> Option<usize> {
        self.translation.map(|t| t.translate(block_addr).line_index as usize)
    }
}

impl RedirectCache for SharedMemCache {
    fn lookup(&mut self, block_addr: Addr, _wid: WarpId, _is_write: bool) -> RedirectLookup {
        let Some(idx) = self.line_index(block_addr) else {
            self.stats.unavailable += 1;
            return RedirectLookup::Unavailable;
        };
        let line = self.lines[idx];
        if line.valid && line.block_addr == block_addr {
            self.stats.hits += 1;
            RedirectLookup::Hit { latency: self.latency }
        } else {
            self.stats.misses += 1;
            RedirectLookup::Miss
        }
    }

    fn fill(&mut self, block_addr: Addr, wid: WarpId) -> Option<EvictedLine> {
        let idx = self.line_index(block_addr)?;
        let previous = self.lines[idx];
        self.lines[idx] = ShmemLine { valid: true, block_addr, owner: wid };
        self.stats.fills += 1;
        if previous.valid && previous.block_addr != block_addr {
            self.stats.evictions += 1;
            Some(EvictedLine {
                block_addr: previous.block_addr,
                owner: previous.owner,
                dirty: false,
            })
        } else {
            None
        }
    }

    fn utilization(&self) -> f64 {
        if self.lines.is_empty() {
            0.0
        } else {
            self.valid_lines() as f64 / self.lines.len() as f64
        }
    }

    fn capacity_bytes(&self) -> u64 {
        self.translation.map(|t| t.data_capacity_bytes()).unwrap_or(0)
    }

    fn hits(&self) -> u64 {
        self.stats.hits
    }

    fn misses(&self) -> u64 {
        self.stats.misses
    }

    fn invalidate_all(&mut self) {
        for l in &mut self.lines {
            *l = ShmemLine::invalid();
        }
    }

    fn set_capacity(&mut self, unused_bytes: u64) {
        let current = self.capacity_bytes();
        // Rebuild only when the usable capacity actually changes; the SM
        // calls this after every CTA launch/retire.
        let future =
            TranslationUnit::new(unused_bytes, 0).map(|t| t.data_capacity_bytes()).unwrap_or(0);
        if future != current {
            self.rebuild(unused_bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = SharedMemCache::gtx480();
        assert_eq!(c.lookup(0x8000, 1, false), RedirectLookup::Miss);
        assert!(c.fill(0x8000, 1).is_none());
        assert_eq!(c.lookup(0x8000, 2, false), RedirectLookup::Hit { latency: 1 });
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn direct_mapped_conflicts_evict_with_owner() {
        let mut c = SharedMemCache::gtx480();
        let lines = c.num_lines() as u64;
        let a = 0x0;
        let b = lines * 128; // maps onto the same line as `a`
        c.fill(a, 3);
        let ev = c.fill(b, 5).expect("conflict must evict");
        assert_eq!(ev.block_addr, a);
        assert_eq!(ev.owner, 3);
        assert_eq!(c.lookup(a, 3, false), RedirectLookup::Miss);
        assert_eq!(c.lookup(b, 5, false), RedirectLookup::Hit { latency: 1 });
    }

    #[test]
    fn refilling_same_block_does_not_evict() {
        let mut c = SharedMemCache::gtx480();
        c.fill(0x100, 1);
        assert!(c.fill(0x100, 2).is_none());
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn capacity_tracks_cta_usage() {
        let mut c = SharedMemCache::gtx480();
        let full = c.capacity_bytes();
        assert!(full > 40 * 1024, "nearly the whole 48 KB should be usable, got {full}");
        // CTAs occupy 40 KB: only ~8 KB left.
        c.set_capacity(8 * 1024);
        assert!(c.capacity_bytes() <= 8 * 1024);
        assert!(c.capacity_bytes() > 4 * 1024);
        // CTAs occupy everything: structure unavailable.
        c.set_capacity(0);
        assert_eq!(c.capacity_bytes(), 0);
        assert_eq!(c.lookup(0x80, 0, false), RedirectLookup::Unavailable);
        assert!(c.fill(0x80, 0).is_none());
        // Space frees up again.
        c.set_capacity(48 * 1024);
        assert_eq!(c.capacity_bytes(), full);
    }

    #[test]
    fn utilization_grows_with_fills() {
        let mut c = SharedMemCache::new(8 * 1024, 1);
        assert_eq!(c.utilization(), 0.0);
        let n = c.num_lines() as u64;
        for i in 0..n / 2 {
            c.fill(i * 128, 0);
        }
        let u = c.utilization();
        assert!(u > 0.4 && u <= 0.51, "expected about half utilised, got {u}");
        c.invalidate_all();
        assert_eq!(c.utilization(), 0.0);
    }

    #[test]
    fn resize_invalidates_contents() {
        let mut c = SharedMemCache::gtx480();
        c.fill(0x80, 0);
        c.set_capacity(16 * 1024);
        assert_eq!(c.valid_lines(), 0);
        assert!(c.stats().resizes >= 2);
    }

    #[test]
    fn same_capacity_resize_is_a_no_op() {
        let mut c = SharedMemCache::gtx480();
        c.fill(0x80, 0);
        let resizes = c.stats().resizes;
        c.set_capacity(48 * 1024);
        assert_eq!(c.stats().resizes, resizes, "identical capacity must not rebuild");
        assert_eq!(c.valid_lines(), 1);
    }

    proptest! {
        /// The structure never reports more valid lines than its capacity and
        /// hit/miss/unavailable counts account for every lookup.
        #[test]
        fn accounting_invariants(ops in proptest::collection::vec((0u64..512, any::<bool>()), 1..300)) {
            let mut c = SharedMemCache::new(4 * 1024, 1);
            let mut lookups = 0u64;
            for (block, do_fill) in ops {
                let addr = block * 128;
                if do_fill {
                    c.fill(addr, (block % 48) as WarpId);
                } else {
                    lookups += 1;
                    let _ = c.lookup(addr, (block % 48) as WarpId, false);
                }
                prop_assert!(c.valid_lines() <= c.num_lines());
            }
            let s = c.stats();
            prop_assert_eq!(s.hits + s.misses + s.unavailable, lookups);
        }
    }
}
