//! Address-translation unit (§IV-B, Fig. 7c).
//!
//! The unit maps a global memory address onto the shared-memory locations of
//! the corresponding 128-byte data block and its tag, using the bit-sliced
//! layout of Fig. 7c:
//!
//! * the data-block address is decomposed (LSB → MSB) into a 3-bit byte
//!   offset **F** (8-byte bank words), a 4-bit bank index **B** (16 banks per
//!   group), a 1-bit bank group **G**, and an 8-bit row index **R**;
//! * the 128-byte block is striped across the 16 banks of one group, so the
//!   (F, B) fields address the word within the block and G+R select the
//!   block's row;
//! * the tag of the block lives in the *other* bank group (G flipped) so a
//!   tag and its data block never conflict and can be read in parallel. One
//!   physical row of a bank holds two 31-bit tags (25-bit tag + 6-bit WID),
//!   so 32 tags share one row of a 16-bank group; the 5 bits formed by (F, B)
//!   of the data block select which of the 32 tag slots is used;
//! * data-block and tag *offset registers* rebase both index spaces so the
//!   structure can live anywhere inside the unused region the SMMT reserved.
//!
//! The unit is purely combinational: given the number of rows reserved for
//! data it produces deterministic locations, which the property tests below
//! verify to be collision-free.

use gpu_mem::Addr;
use serde::{Deserialize, Serialize};

/// Number of banks per bank group (32 banks split into two groups).
pub const BANKS_PER_GROUP: u32 = 16;
/// Bytes per bank word (64-bit banks).
pub const BANK_WORD_BYTES: u32 = 8;
/// Bytes of data per row of one bank group (16 banks × 8 bytes = one block).
pub const BLOCK_BYTES: u32 = BANKS_PER_GROUP * BANK_WORD_BYTES;
/// Tags per bank-group row (two 31-bit tags per 8-byte bank word × 16 banks).
pub const TAGS_PER_ROW: u32 = 32;

/// Location of a data block and its tag inside the scratchpad.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShmemLocation {
    /// Cache-line index within the direct-mapped shared-memory cache.
    pub line_index: u32,
    /// Bank group holding the data block (0 or 1).
    pub data_group: u8,
    /// Row index of the data block within its bank group.
    pub data_row: u32,
    /// Bank group holding the tag (always the other group).
    pub tag_group: u8,
    /// Row index of the tag within its bank group.
    pub tag_row: u32,
    /// Tag slot within the tag row (0..31).
    pub tag_slot: u32,
}

/// The address-translation unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TranslationUnit {
    /// Number of data rows available per bank group.
    data_rows_per_group: u32,
    /// Row offset register: first row of the reserved region (data blocks).
    data_row_offset: u32,
    /// Row offset register: first row holding tags.
    tag_row_offset: u32,
}

impl TranslationUnit {
    /// Builds a translation unit for a reserved region of `capacity_bytes`.
    ///
    /// The region is split so that every data block has a tag slot: each
    /// group of 32 blocks (two groups × 16 rows... strictly, 32 tag slots per
    /// tag row) consumes one extra tag row. Returns `None` when the region is
    /// too small to hold even one block and one tag row per group.
    pub fn new(capacity_bytes: u64, data_row_offset: u32) -> Option<Self> {
        // Rows available across both groups.
        let total_rows = (capacity_bytes / (2 * BLOCK_BYTES as u64)) as u32 * 2;
        if total_rows < 4 {
            return None;
        }
        // Reserve ceil(data_rows / TAGS_PER_ROW) rows per group for tags.
        // Solve greedily: start from all rows as data and peel off tag rows.
        let mut data_rows_per_group = total_rows / 2;
        loop {
            let tag_rows = data_rows_per_group.div_ceil(TAGS_PER_ROW / 2);
            if data_rows_per_group + tag_rows <= total_rows / 2 || data_rows_per_group == 0 {
                break;
            }
            data_rows_per_group -= 1;
        }
        if data_rows_per_group == 0 {
            return None;
        }
        let tag_row_offset = data_row_offset + data_rows_per_group;
        Some(TranslationUnit { data_rows_per_group, data_row_offset, tag_row_offset })
    }

    /// Number of 128-byte blocks the structure can hold (both groups).
    pub fn num_lines(&self) -> u32 {
        self.data_rows_per_group * 2
    }

    /// Data capacity in bytes.
    pub fn data_capacity_bytes(&self) -> u64 {
        self.num_lines() as u64 * BLOCK_BYTES as u64
    }

    /// Translates a global address into its shared-memory location.
    pub fn translate(&self, global_addr: Addr) -> ShmemLocation {
        let block_index = global_addr / BLOCK_BYTES as u64;
        let line_index = (block_index % self.num_lines() as u64) as u32;
        // G is the LSB of the line index; R the remaining bits.
        let data_group = (line_index & 1) as u8;
        let data_row = self.data_row_offset + (line_index >> 1);
        // The tag lives in the other group. The tag slot is formed from the
        // 5 bits that address the word within the data block's row region —
        // here the low 5 bits of the line index; the remaining bits select
        // the tag row.
        let tag_group = data_group ^ 1;
        let tag_slot = line_index % TAGS_PER_ROW;
        let tag_row = self.tag_row_offset + line_index / TAGS_PER_ROW;
        ShmemLocation { line_index, data_group, data_row, tag_group, tag_row, tag_slot }
    }

    /// Number of rows (per group) holding tags.
    pub fn tag_rows_per_group(&self) -> u32 {
        self.data_rows_per_group.div_ceil(TAGS_PER_ROW / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn too_small_regions_are_rejected() {
        assert!(TranslationUnit::new(0, 0).is_none());
        assert!(TranslationUnit::new(256, 0).is_none());
        assert!(TranslationUnit::new(8 * 1024, 0).is_some());
    }

    #[test]
    fn capacity_accounting() {
        // 32 KB reserved: 256 rows total, 128 per group; tags need
        // ceil(d/16) rows, so d = 120 data rows per group fit (120 + 8 = 128).
        let t = TranslationUnit::new(32 * 1024, 0).unwrap();
        assert_eq!(t.num_lines(), 240);
        assert_eq!(t.data_capacity_bytes(), 240 * 128);
        assert!(t.data_capacity_bytes() <= 32 * 1024);
        assert!(t.tag_rows_per_group() >= t.data_rows_per_group().div_ceil(16));
    }

    impl TranslationUnit {
        fn data_rows_per_group(&self) -> u32 {
            self.data_rows_per_group
        }
    }

    #[test]
    fn data_and_tag_never_share_a_bank_group() {
        let t = TranslationUnit::new(16 * 1024, 0).unwrap();
        for block in 0..t.num_lines() as u64 * 3 {
            let loc = t.translate(block * 128);
            assert_ne!(loc.data_group, loc.tag_group);
            assert!(loc.tag_slot < TAGS_PER_ROW);
        }
    }

    #[test]
    fn same_block_same_location_and_direct_mapping_wraps() {
        let t = TranslationUnit::new(16 * 1024, 0).unwrap();
        let lines = t.num_lines() as u64;
        let a = t.translate(0);
        let b = t.translate(lines * 128); // wraps onto line 0
        assert_eq!(a, b);
        assert_eq!(t.translate(5 * 128 + 7).line_index, t.translate(5 * 128).line_index);
    }

    #[test]
    fn offset_registers_rebase_rows() {
        let base0 = TranslationUnit::new(8 * 1024, 0).unwrap();
        let base64 = TranslationUnit::new(8 * 1024, 64).unwrap();
        let a = base0.translate(0x80);
        let b = base64.translate(0x80);
        assert_eq!(b.data_row, a.data_row + 64);
        assert_eq!(b.tag_row, a.tag_row + 64);
        assert_eq!(a.line_index, b.line_index);
    }

    proptest! {
        /// Distinct line indices map to distinct (group, row) data locations —
        /// i.e. no two cached blocks alias in the scratchpad.
        #[test]
        fn data_locations_are_collision_free(capacity_kb in 2u64..48) {
            let Some(t) = TranslationUnit::new(capacity_kb * 1024, 0) else { return Ok(()); };
            let mut seen = std::collections::HashSet::new();
            for line in 0..t.num_lines() as u64 {
                let loc = t.translate(line * 128);
                prop_assert!(seen.insert((loc.data_group, loc.data_row)), "data collision at line {line}");
                prop_assert!(loc.data_row < t.data_row_offset + t.data_rows_per_group());
            }
        }

        /// Tag locations never collide with each other or with data rows.
        #[test]
        fn tag_locations_are_collision_free(capacity_kb in 2u64..48) {
            let Some(t) = TranslationUnit::new(capacity_kb * 1024, 0) else { return Ok(()); };
            let mut seen = std::collections::HashSet::new();
            for line in 0..t.num_lines() as u64 {
                let loc = t.translate(line * 128);
                prop_assert!(seen.insert((loc.tag_group, loc.tag_row, loc.tag_slot)), "tag collision at line {line}");
                // Tags start after the data rows.
                prop_assert!(loc.tag_row >= t.data_row_offset + t.data_rows_per_group());
            }
        }
    }
}
