//! Hardware-overhead model (§V-F).
//!
//! The paper's overhead argument counts the storage and logic CIAO adds on
//! top of an existing GPU SM and scales it against the GTX 480's die area and
//! power. This module reproduces that accounting:
//!
//! * VTA: 8 victim tags per warp × 48 warps per SM (half of CCWS's), each
//!   31 bits (25-bit tag + 6-bit WID) — 0.65 mm² for 15 SMs, 0.12 % of the
//!   529 mm² chip;
//! * per-warp 32-bit VTA-hit counters (48 per SM);
//! * the interference list (64 × 8 bits) and pair list (64 × 12 bits);
//! * the IRS evaluation logic (adders + shifter + comparator, ≈ 2112 gates);
//! * the shared-memory modifications: translation unit, multiplexer, extra
//!   MSHR field (≈ 4500 gates + 64 B storage per SM);
//! * ≈ 79 mW average power for the new components (GPUWattch estimate).
//!
//! The absolute constants (area per bit, area per gate) are calibrated so the
//! headline numbers of §V-F are reproduced; what matters for the argument —
//! and what the tests check — is that the totals stay below 2 % of chip area
//! and below 0.5 % of chip power.

use serde::{Deserialize, Serialize};

/// Technology/die constants used to scale the overhead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadModel {
    /// Number of SMs on the chip (15 on the GTX 480).
    pub num_sms: usize,
    /// Warps per SM (48).
    pub warps_per_sm: usize,
    /// Entries in the interference and pair lists (64; WIDs are 6 bits).
    pub list_entries: usize,
    /// Victim tags per warp (8 for CIAO, 16 for CCWS).
    pub vta_entries_per_warp: usize,
    /// Total chip area in mm² (GTX 480: 529 mm²).
    pub chip_area_mm2: f64,
    /// Total chip power in W (GTX 480 TDP ≈ 250 W).
    pub chip_power_w: f64,
    /// SRAM area per bit in mm² (calibrated against the paper's CACTI 6.0
    /// number: one 15-SM VTA structure of ~178 Kb ≈ 0.65 mm²).
    pub mm2_per_sram_bit: f64,
    /// Logic area per gate in mm² (40 nm-class standard cell).
    pub mm2_per_gate: f64,
    /// Average power of the added components in W (GPUWattch estimate).
    pub added_power_w: f64,
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel {
            num_sms: 15,
            warps_per_sm: 48,
            list_entries: 64,
            vta_entries_per_warp: 8,
            chip_area_mm2: 529.0,
            chip_power_w: 250.0,
            mm2_per_sram_bit: 0.65 / (15.0 * 48.0 * 8.0 * 31.0),
            mm2_per_gate: 1.0e-6,
            added_power_w: 0.079,
        }
    }
}

/// The computed overhead report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadReport {
    /// VTA storage per SM in bits.
    pub vta_bits_per_sm: u64,
    /// VTA area for the whole chip in mm².
    pub vta_area_mm2: f64,
    /// VTA-hit counters + interference list + pair list, per SM, in bits.
    pub counter_and_list_bits_per_sm: u64,
    /// Area of the counters and lists for the whole chip, in mm² (the paper
    /// reports 549 µm² per SM / 8235 µm² for 15 SMs).
    pub counter_and_list_area_mm2: f64,
    /// Gates for the IRS evaluation logic per SM.
    pub irs_logic_gates: u64,
    /// Gates for the shared-memory datapath modifications per SM.
    pub shmem_mod_gates: u64,
    /// Extra storage added to the MSHR / translation path per SM, in bytes.
    pub shmem_mod_storage_bytes: u64,
    /// Total added area for the whole chip in mm².
    pub total_area_mm2: f64,
    /// Added area as a fraction of the chip.
    pub area_fraction: f64,
    /// Added power in watts.
    pub added_power_w: f64,
    /// Added power as a fraction of chip power.
    pub power_fraction: f64,
}

impl OverheadModel {
    /// Computes the overhead report for this configuration.
    pub fn report(&self) -> OverheadReport {
        let vta_bits_per_sm = (self.vta_entries_per_warp * self.warps_per_sm) as u64 * 31;
        let vta_area_mm2 = vta_bits_per_sm as f64 * self.num_sms as f64 * self.mm2_per_sram_bit;

        let vta_hit_counter_bits = self.warps_per_sm as u64 * 32;
        let interference_list_bits = self.list_entries as u64 * 8;
        let pair_list_bits = self.list_entries as u64 * 12;
        let counter_and_list_bits_per_sm =
            vta_hit_counter_bits + interference_list_bits + pair_list_bits;
        let counter_and_list_area_mm2 =
            counter_and_list_bits_per_sm as f64 * self.num_sms as f64 * self.mm2_per_sram_bit;

        let irs_logic_gates = 2112;
        let shmem_mod_gates = 4500;
        let shmem_mod_storage_bytes = 64;

        let logic_area_mm2 =
            (irs_logic_gates + shmem_mod_gates) as f64 * self.num_sms as f64 * self.mm2_per_gate;
        let shmem_storage_area_mm2 =
            shmem_mod_storage_bytes as f64 * 8.0 * self.num_sms as f64 * self.mm2_per_sram_bit;

        let total_area_mm2 =
            vta_area_mm2 + counter_and_list_area_mm2 + logic_area_mm2 + shmem_storage_area_mm2;

        OverheadReport {
            vta_bits_per_sm,
            vta_area_mm2,
            counter_and_list_bits_per_sm,
            counter_and_list_area_mm2,
            irs_logic_gates,
            shmem_mod_gates,
            shmem_mod_storage_bytes,
            total_area_mm2,
            area_fraction: total_area_mm2 / self.chip_area_mm2,
            added_power_w: self.added_power_w,
            power_fraction: self.added_power_w / self.chip_power_w,
        }
    }
}

impl OverheadReport {
    /// Renders the report as human-readable lines (used by the harness).
    pub fn lines(&self) -> Vec<String> {
        vec![
            format!("VTA storage per SM: {} bits ({} bytes)", self.vta_bits_per_sm, self.vta_bits_per_sm / 8),
            format!("VTA area (15 SMs): {:.3} mm2", self.vta_area_mm2),
            format!(
                "VTA-hit counters + interference list + pair list per SM: {} bits; chip area {:.6} mm2",
                self.counter_and_list_bits_per_sm, self.counter_and_list_area_mm2
            ),
            format!("IRS evaluation logic: {} gates per SM", self.irs_logic_gates),
            format!(
                "Shared-memory datapath modifications: {} gates + {} B storage per SM",
                self.shmem_mod_gates, self.shmem_mod_storage_bytes
            ),
            format!(
                "Total added area: {:.3} mm2 ({:.2}% of the {:.0} mm2 chip)",
                self.total_area_mm2,
                self.area_fraction * 100.0,
                self.total_area_mm2 / self.area_fraction
            ),
            format!(
                "Added power: {:.1} mW ({:.2}% of chip power)",
                self.added_power_w * 1000.0,
                self.power_fraction * 100.0
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vta_numbers_match_section_5f() {
        let r = OverheadModel::default().report();
        // 8 entries × 48 warps × 31 bits.
        assert_eq!(r.vta_bits_per_sm, 8 * 48 * 31);
        // Calibrated to ~0.65 mm² for 15 SMs, i.e. ~0.12% of 529 mm².
        assert!((r.vta_area_mm2 - 0.65).abs() < 0.01, "vta area {}", r.vta_area_mm2);
        assert!(r.vta_area_mm2 / 529.0 < 0.0013);
    }

    #[test]
    fn counters_and_lists_are_tiny() {
        let r = OverheadModel::default().report();
        // 48×32 + 64×8 + 64×12 bits = 2816 bits per SM.
        assert_eq!(r.counter_and_list_bits_per_sm, 48 * 32 + 64 * 8 + 64 * 12);
        // Negligible against the 529 mm² die even with the conservative
        // (large-array) SRAM density used for the VTA.
        assert!(r.counter_and_list_area_mm2 < 0.2);
        assert!(r.counter_and_list_area_mm2 / 529.0 < 0.0005);
    }

    #[test]
    fn totals_match_the_papers_claims() {
        let r = OverheadModel::default().report();
        assert!(r.area_fraction < 0.02, "area fraction {}", r.area_fraction);
        assert!(r.power_fraction < 0.005, "power fraction {}", r.power_fraction);
        assert!((r.added_power_w - 0.079).abs() < 1e-9);
        assert_eq!(r.irs_logic_gates, 2112);
        assert_eq!(r.shmem_mod_gates, 4500);
    }

    #[test]
    fn ccws_sized_vta_costs_twice_as_much() {
        let ciao = OverheadModel::default().report();
        let ccws = OverheadModel { vta_entries_per_warp: 16, ..OverheadModel::default() }.report();
        assert_eq!(ccws.vta_bits_per_sm, 2 * ciao.vta_bits_per_sm);
        assert!(ccws.vta_area_mm2 > 1.9 * ciao.vta_area_mm2);
    }

    #[test]
    fn report_lines_render() {
        let lines = OverheadModel::default().report().lines();
        assert_eq!(lines.len(), 7);
        assert!(lines.iter().any(|l| l.contains("VTA")));
        assert!(lines.iter().any(|l| l.contains("mW")));
    }
}
