//! CIAO warp scheduling (§III-C, §IV-C, Algorithm 1).
//!
//! The scheduler (like its detector and shared-memory cache) is a strictly
//! **per-SM** structure: it sees one SM's warps, cache events and VTA. On a
//! multi-SM chip run (`gpu_sim::gpu::Gpu`) the harness builds one
//! [`CiaoScheduler`] instance per SM and the engine reports their metrics
//! chip-wide via `gpu_sim::SchedulerMetrics::merge` — mirroring the paper's
//! hardware, where every SM carries its own detector/scheduler logic.
//!
//! The scheduler keeps the GTO issue order but reacts to the interference
//! detector at two epoch granularities:
//!
//! * every **high-cutoff epoch** (5000 instructions), for the warp about to
//!   be scheduled: if its IRS exceeds `high-cutoff`, the most interfering
//!   warp recorded in the interference list is either *isolated* (its global
//!   accesses are redirected to the shared-memory cache — CIAO-P action) or,
//!   if it is already isolated (or the variant has no redirect path),
//!   *stalled* (CIAO-T action). The triggering interfered warp is recorded in
//!   the pair list so the decision can be reverted later.
//! * every **low-cutoff epoch** (100 instructions), for stalled or isolated
//!   warps: if the interfered warp that triggered the decision has IRS below
//!   `low-cutoff` or has finished, the warp is reactivated (stall removed
//!   first, reverse order of application) or its requests are routed back to
//!   the L1D.
//!
//! The three evaluated variants share the code path and differ only in which
//! actions are permitted:
//!
//! | variant | isolate (redirect) | stall |
//! |---------|--------------------|-------|
//! | CIAO-P  | yes                | no    |
//! | CIAO-T  | no                 | yes   |
//! | CIAO-C  | yes                | yes   |

use crate::detector::{InterferenceDetector, PairRole};
use crate::params::CiaoParams;
use crate::shmem_cache::SharedMemCache;
use gpu_mem::{Cycle, WarpId};
use gpu_sim::config::GpuConfig;
use gpu_sim::redirect::RedirectCache;
use gpu_sim::scheduler::{
    CacheEvent, CacheEventOutcome, MemRoute, SchedulerCtx, SchedulerMetrics, WarpScheduler,
};
use serde::{Deserialize, Serialize};

/// Which CIAO mechanisms are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CiaoVariant {
    /// CIAO-P: only redirect interfering warps to the shared-memory cache.
    PartitionOnly,
    /// CIAO-T: only selectively throttle interfering warps.
    ThrottleOnly,
    /// CIAO-C: redirect first, throttle when redirection is insufficient.
    Combined,
}

impl CiaoVariant {
    /// The scheduler name used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            CiaoVariant::PartitionOnly => "CIAO-P",
            CiaoVariant::ThrottleOnly => "CIAO-T",
            CiaoVariant::Combined => "CIAO-C",
        }
    }

    /// Whether the variant may redirect accesses to the shared-memory cache.
    pub fn can_isolate(self) -> bool {
        matches!(self, CiaoVariant::PartitionOnly | CiaoVariant::Combined)
    }

    /// Whether the variant may stall warps.
    pub fn can_throttle(self) -> bool {
        matches!(self, CiaoVariant::ThrottleOnly | CiaoVariant::Combined)
    }

    /// Builds the scheduler plus (for the variants that redirect) the
    /// shared-memory cache to install on the SM's datapath.
    pub fn build(
        self,
        params: &CiaoParams,
        config: &GpuConfig,
    ) -> (Box<dyn WarpScheduler>, Option<Box<dyn RedirectCache>>) {
        let scheduler = Box::new(CiaoScheduler::new(self, *params, config.max_warps_per_sm));
        let redirect: Option<Box<dyn RedirectCache>> = if self.can_isolate() {
            Some(Box::new(SharedMemCache::new(
                config.shared_mem.size_bytes,
                config.shared_mem.latency,
            )))
        } else {
            None
        };
        (scheduler, redirect)
    }
}

/// Per-warp scheduling state mirroring the `V` and `I` bits of §IV-A.
#[derive(Debug, Clone, Copy, Default)]
struct WarpFlags {
    /// `V = 0` means the warp is stalled by CIAO.
    stalled: bool,
    /// `I = 1` means the warp's global accesses go to the shared-memory cache.
    isolated: bool,
    finished: bool,
}

/// The CIAO warp scheduler.
pub struct CiaoScheduler {
    variant: CiaoVariant,
    params: CiaoParams,
    detector: InterferenceDetector,
    flags: Vec<WarpFlags>,
    /// Stall order, so reactivation happens in reverse order (§III-C).
    stall_stack: Vec<WarpId>,
    last_issued: Option<usize>,
    instructions_seen: u64,
    next_high_check: u64,
    next_low_check: u64,
    num_warps: usize,
    /// Diagnostics: how many isolation / stall / reactivation decisions fired.
    decisions: CiaoDecisionCounters,
}

/// Counters describing the decisions CIAO took during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CiaoDecisionCounters {
    /// Warps redirected to the shared-memory cache.
    pub isolations: u64,
    /// Warps stalled.
    pub stalls: u64,
    /// Warps reactivated after a stall.
    pub reactivations: u64,
    /// Warps routed back to the L1D after isolation.
    pub deisolations: u64,
}

impl CiaoScheduler {
    /// Creates a CIAO scheduler of the given variant.
    pub fn new(variant: CiaoVariant, params: CiaoParams, num_warps: usize) -> Self {
        debug_assert!(params.validate().is_ok(), "invalid CIAO parameters");
        CiaoScheduler {
            variant,
            params,
            detector: InterferenceDetector::new(num_warps),
            flags: vec![WarpFlags::default(); num_warps],
            stall_stack: Vec::new(),
            last_issued: None,
            instructions_seen: 0,
            next_high_check: params.high_epoch,
            next_low_check: params.low_epoch,
            num_warps,
            decisions: CiaoDecisionCounters::default(),
        }
    }

    /// The variant of this scheduler instance.
    pub fn variant(&self) -> CiaoVariant {
        self.variant
    }

    /// Decision counters (for analysis and the ablation benches).
    pub fn decisions(&self) -> CiaoDecisionCounters {
        self.decisions
    }

    /// Read access to the interference detector (analysis/tests).
    pub fn detector(&self) -> &InterferenceDetector {
        &self.detector
    }

    /// Number of warps whose programs have not finished (the
    /// `Nactive-warp` term of Eq. 1 when the SM context is unavailable,
    /// e.g. in standalone analyses of the detector).
    pub fn active_warp_count(&self) -> usize {
        self.flags.iter().filter(|f| !f.finished).count().max(1)
    }

    /// End-of-high-epoch evaluation (Algorithm 1, lines 20–29) for warp `i`.
    fn high_epoch_check(&mut self, i: WarpId, instructions: u64, active_warps: usize) {
        if self.flags[i as usize].stalled || self.flags[i as usize].finished {
            return;
        }
        let irs_i = self.detector.irs(i, instructions, active_warps);
        if irs_i <= self.params.high_cutoff {
            return;
        }
        let Some(j) = self.detector.top_interferer(i) else {
            return;
        };
        if j == i || (j as usize) >= self.num_warps || self.flags[j as usize].finished {
            return;
        }
        let j_flags = self.flags[j as usize];
        if !j_flags.isolated && self.variant.can_isolate() {
            // Isolate warp j: redirect its requests to the shared-memory cache.
            self.flags[j as usize].isolated = true;
            self.detector.pair_list_mut().set(j, PairRole::Redirect, i);
            self.decisions.isolations += 1;
        } else if !j_flags.stalled && self.variant.can_throttle() {
            // Either already isolated (CIAO-C) or a throttle-only variant:
            // stall warp j.
            self.flags[j as usize].stalled = true;
            self.detector.pair_list_mut().set(j, PairRole::Stall, i);
            self.stall_stack.push(j);
            self.decisions.stalls += 1;
        }
    }

    /// End-of-low-epoch evaluation (Algorithm 1, lines 4–19): reactivate
    /// stalled warps (in reverse stall order) and un-redirect isolated warps
    /// whose triggering interfered warp has calmed down or finished.
    fn low_epoch_check(&mut self, instructions: u64, active_warps: usize) {
        // Stalled warps: reverse order of stalling to keep TLP high.
        if let Some(&candidate) = self.stall_stack.last() {
            let release = match self.detector.pair_list().get(candidate, PairRole::Stall) {
                Some(k) => {
                    let k_active =
                        (k as usize) < self.num_warps && !self.flags[k as usize].finished;
                    let irs_k = self.detector.irs(k, instructions, active_warps);
                    !(irs_k > self.params.low_cutoff && k_active)
                }
                None => true,
            };
            if release {
                self.stall_stack.pop();
                self.flags[candidate as usize].stalled = false;
                self.detector.pair_list_mut().clear(candidate, PairRole::Stall);
                self.decisions.reactivations += 1;
            }
        }
        // Isolated warps: route back to the L1D when their trigger calmed down.
        for w in 0..self.num_warps as u32 {
            if !self.flags[w as usize].isolated || self.flags[w as usize].stalled {
                continue;
            }
            let release = match self.detector.pair_list().get(w, PairRole::Redirect) {
                Some(k) => {
                    let k_active =
                        (k as usize) < self.num_warps && !self.flags[k as usize].finished;
                    let irs_k = self.detector.irs(k, instructions, active_warps);
                    !(irs_k > self.params.low_cutoff && k_active)
                }
                None => true,
            };
            if release {
                self.flags[w as usize].isolated = false;
                self.detector.pair_list_mut().clear(w, PairRole::Redirect);
                self.decisions.deisolations += 1;
            }
        }
    }
}

impl WarpScheduler for CiaoScheduler {
    fn name(&self) -> &'static str {
        self.variant.label()
    }

    fn pick(&mut self, ctx: &SchedulerCtx<'_>) -> Option<usize> {
        // Epoch bookkeeping uses the SM-wide instruction count. When nothing
        // is ready (e.g. every runnable warp is currently stalled by CIAO and
        // the rest wait on memory) the low-cutoff evaluation still runs, so
        // stalled warps are reactivated even though no instructions retire.
        self.instructions_seen = ctx.instructions_executed;
        if ctx.instructions_executed >= self.next_low_check || ctx.ready.is_empty() {
            self.next_low_check = ctx.instructions_executed + self.params.low_epoch;
            self.low_epoch_check(ctx.instructions_executed, ctx.active_warps.max(1));
        }

        // GTO: greedy on the last issued warp, else oldest.
        let pick = match self.last_issued.filter(|last| ctx.ready.contains(last)) {
            Some(last) => last,
            None => {
                let oldest = ctx.ready.iter().copied().min_by_key(|&i| ctx.warps[i].launch_seq)?;
                self.last_issued = Some(oldest);
                oldest
            }
        };

        if ctx.instructions_executed >= self.next_high_check {
            self.next_high_check = ctx.instructions_executed + self.params.high_epoch;
            let wid = ctx.warps[pick].id;
            self.high_epoch_check(wid, ctx.instructions_executed, ctx.active_warps.max(1));
        }
        Some(pick)
    }

    fn on_idle_cycles(&mut self, ctx: &SchedulerCtx<'_>, skipped: u64) {
        // Every empty-ready `pick` runs the low-cutoff evaluation with the
        // same (instructions, active_warps) arguments — no instructions
        // retire while nothing is ready — so iterating it reaches a fixed
        // point: each call either releases a stalled/isolated warp (bumping a
        // decision counter) or changes nothing. Replaying until the state
        // stops changing (capped at `skipped`) is therefore exact.
        self.instructions_seen = ctx.instructions_executed;
        for _ in 0..skipped {
            self.next_low_check = ctx.instructions_executed + self.params.low_epoch;
            let before = (self.stall_stack.len(), self.decisions);
            self.low_epoch_check(ctx.instructions_executed, ctx.active_warps.max(1));
            if (self.stall_stack.len(), self.decisions) == before {
                break;
            }
        }
    }

    fn on_cache_event(&mut self, ev: &CacheEvent) {
        // Both the L1D and the shared-memory cache share the same VTA (§III-C).
        if let CacheEventOutcome::Miss = ev.outcome {
            let _ = self.detector.on_miss(ev.wid, ev.block_addr);
        }
        if let Some(victim) = ev.evicted {
            self.detector.on_eviction(victim.owner, victim.block_addr, ev.wid);
        }
    }

    fn on_warp_launched(&mut self, wid: WarpId, _now: Cycle) {
        // Warp slots are reused across CTA waves: the new occupant starts
        // active (V=1), not isolated (I=0) and with clean pair-list records.
        if let Some(f) = self.flags.get_mut(wid as usize) {
            *f = WarpFlags::default();
        }
        self.stall_stack.retain(|&w| w != wid);
        self.detector.pair_list_mut().clear(wid, PairRole::Redirect);
        self.detector.pair_list_mut().clear(wid, PairRole::Stall);
    }

    fn on_warp_finished(&mut self, wid: WarpId, _now: Cycle) {
        if let Some(f) = self.flags.get_mut(wid as usize) {
            f.finished = true;
            f.stalled = false;
            f.isolated = false;
        }
        self.stall_stack.retain(|&w| w != wid);
    }

    fn route(&mut self, wid: WarpId) -> MemRoute {
        if self.variant.can_isolate()
            && self.flags.get(wid as usize).map(|f| f.isolated).unwrap_or(false)
        {
            MemRoute::RedirectCache
        } else {
            MemRoute::L1d
        }
    }

    fn is_throttled(&self, wid: WarpId) -> bool {
        self.flags.get(wid as usize).map(|f| f.stalled).unwrap_or(false)
    }

    fn metrics(&self) -> SchedulerMetrics {
        SchedulerMetrics {
            vta_hits: self.detector.total_vta_hits(),
            throttled_warps: self.flags.iter().filter(|f| f.stalled && !f.finished).count(),
            isolated_warps: self.flags.iter().filter(|f| f.isolated && !f.finished).count(),
            bypassed_warps: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_mem::cache::EvictedLine;
    use gpu_sim::scheduler::CacheKind;
    use gpu_sim::trace::VecProgram;
    use gpu_sim::warp::Warp;

    fn warps(n: usize) -> Vec<Warp> {
        (0..n)
            .map(|i| Warp::new(i as WarpId, 0, i as u64, Box::new(VecProgram::new(vec![]))))
            .collect()
    }

    fn ctx<'a>(warps: &'a [Warp], ready: &'a [usize], insts: u64) -> SchedulerCtx<'a> {
        SchedulerCtx {
            now: 0,
            warps,
            ready,
            instructions_executed: insts,
            active_warps: warps.len(),
            dram_utilization: 0.0,
        }
    }

    /// Makes warp `interferer` evict warp `victim`'s block and the victim
    /// re-reference it, producing one VTA hit attributed to `interferer`.
    fn inject_interference(s: &mut CiaoScheduler, victim: WarpId, interferer: WarpId, addr: u64) {
        s.on_cache_event(&CacheEvent {
            kind: CacheKind::L1d,
            wid: interferer,
            block_addr: addr,
            is_write: false,
            outcome: CacheEventOutcome::Miss,
            evicted: Some(EvictedLine {
                block_addr: addr + 0x10_0000,
                owner: victim,
                dirty: false,
            }),
            now: 0,
        });
        s.on_cache_event(&CacheEvent {
            kind: CacheKind::L1d,
            wid: victim,
            block_addr: addr + 0x10_0000,
            is_write: false,
            outcome: CacheEventOutcome::Miss,
            evicted: None,
            now: 0,
        });
    }

    fn params_fast() -> CiaoParams {
        // Small epochs so unit tests trigger decisions quickly.
        CiaoParams { high_cutoff: 0.01, low_cutoff: 0.005, high_epoch: 10, low_epoch: 5 }
    }

    #[test]
    fn variant_capabilities() {
        assert!(
            CiaoVariant::PartitionOnly.can_isolate() && !CiaoVariant::PartitionOnly.can_throttle()
        );
        assert!(
            !CiaoVariant::ThrottleOnly.can_isolate() && CiaoVariant::ThrottleOnly.can_throttle()
        );
        assert!(CiaoVariant::Combined.can_isolate() && CiaoVariant::Combined.can_throttle());
        assert_eq!(CiaoVariant::Combined.label(), "CIAO-C");
    }

    #[test]
    fn build_installs_redirect_cache_only_when_isolating() {
        let cfg = GpuConfig::gtx480();
        let p = CiaoParams::default();
        assert!(CiaoVariant::PartitionOnly.build(&p, &cfg).1.is_some());
        assert!(CiaoVariant::Combined.build(&p, &cfg).1.is_some());
        assert!(CiaoVariant::ThrottleOnly.build(&p, &cfg).1.is_none());
    }

    #[test]
    fn ciao_p_isolates_the_interfering_warp() {
        let mut s = CiaoScheduler::new(CiaoVariant::PartitionOnly, params_fast(), 4);
        let w = warps(4);
        // Warp 1 interferes with warp 0 heavily.
        for k in 0..20 {
            inject_interference(&mut s, 0, 1, k * 128);
        }
        // Warp 0 is picked at the end of a high epoch; IRS_0 = 20/(100/4) >> cutoff.
        assert_eq!(s.pick(&ctx(&w, &[0, 1, 2, 3], 100)), Some(0));
        assert_eq!(s.route(1), MemRoute::RedirectCache, "interferer must be isolated");
        assert_eq!(s.route(0), MemRoute::L1d);
        assert!(!s.is_throttled(1), "CIAO-P never stalls");
        assert_eq!(s.metrics().isolated_warps, 1);
        assert_eq!(s.decisions().isolations, 1);
    }

    #[test]
    fn ciao_t_stalls_the_interfering_warp() {
        let mut s = CiaoScheduler::new(CiaoVariant::ThrottleOnly, params_fast(), 4);
        let w = warps(4);
        for k in 0..20 {
            inject_interference(&mut s, 0, 1, k * 128);
        }
        s.pick(&ctx(&w, &[0, 1, 2, 3], 100));
        assert!(s.is_throttled(1), "CIAO-T must stall the interferer");
        assert_eq!(s.route(1), MemRoute::L1d, "CIAO-T never redirects");
        assert_eq!(s.metrics().throttled_warps, 1);
    }

    #[test]
    fn ciao_c_isolates_first_then_stalls() {
        let mut s = CiaoScheduler::new(CiaoVariant::Combined, params_fast(), 4);
        let w = warps(4);
        for k in 0..20 {
            inject_interference(&mut s, 0, 1, k * 128);
        }
        s.pick(&ctx(&w, &[0, 1, 2, 3], 100));
        assert_eq!(s.route(1), MemRoute::RedirectCache);
        assert!(!s.is_throttled(1));
        // Warp 1 keeps interfering (now at the shared-memory cache): the next
        // high-epoch check stalls it.
        for k in 20..40 {
            inject_interference(&mut s, 0, 1, k * 128);
        }
        s.pick(&ctx(&w, &[0, 1, 2, 3], 200));
        assert!(s.is_throttled(1), "persistent interference must escalate to a stall");
        assert_eq!(s.decisions().stalls, 1);
    }

    #[test]
    fn stalled_warp_reactivates_when_trigger_calms_down() {
        let mut s = CiaoScheduler::new(CiaoVariant::ThrottleOnly, params_fast(), 4);
        let w = warps(4);
        for k in 0..20 {
            inject_interference(&mut s, 0, 1, k * 128);
        }
        s.pick(&ctx(&w, &[0, 1, 2, 3], 100));
        assert!(s.is_throttled(1));
        // Many instructions later warp 0's IRS (cumulative hits / per-warp
        // instructions) has decayed below the low cutoff: 20/(20000/4) = 0.004.
        s.pick(&ctx(&w, &[0, 2, 3], 20_000));
        assert!(!s.is_throttled(1), "stall must lift once IRS of the trigger drops");
        assert_eq!(s.decisions().reactivations, 1);
    }

    #[test]
    fn stalled_warp_reactivates_when_trigger_finishes() {
        let mut s = CiaoScheduler::new(CiaoVariant::ThrottleOnly, params_fast(), 4);
        let w = warps(4);
        for k in 0..50 {
            inject_interference(&mut s, 0, 1, k * 128);
        }
        s.pick(&ctx(&w, &[0, 1, 2, 3], 100));
        assert!(s.is_throttled(1));
        s.on_warp_finished(0, 0);
        s.pick(&ctx(&w, &[1, 2, 3], 110));
        assert!(!s.is_throttled(1), "trigger finished: the stalled warp must reactivate");
    }

    #[test]
    fn isolated_warp_routes_back_when_trigger_calms_down() {
        let mut s = CiaoScheduler::new(CiaoVariant::PartitionOnly, params_fast(), 4);
        let w = warps(4);
        for k in 0..20 {
            inject_interference(&mut s, 0, 1, k * 128);
        }
        s.pick(&ctx(&w, &[0, 1, 2, 3], 100));
        assert_eq!(s.route(1), MemRoute::RedirectCache);
        s.pick(&ctx(&w, &[0, 1, 2, 3], 20_000));
        assert_eq!(s.route(1), MemRoute::L1d, "isolation must end once the trigger calms down");
        assert_eq!(s.decisions().deisolations, 1);
    }

    #[test]
    fn reactivation_happens_in_reverse_stall_order() {
        let mut s = CiaoScheduler::new(CiaoVariant::ThrottleOnly, params_fast(), 6);
        let w = warps(6);
        // Warp 1 interferes with warp 0; stall it at instruction 100.
        for k in 0..30 {
            inject_interference(&mut s, 0, 1, k * 128);
        }
        s.pick(&ctx(&w, &[0, 1, 2, 3, 4, 5], 100));
        assert!(s.is_throttled(1));
        // Warp 2 interferes with warp 3; stall it at instruction 200 (warp 0
        // is not ready on this cycle, so warp 3 is the scheduled warp whose
        // IRS is evaluated).
        for k in 100..140 {
            inject_interference(&mut s, 3, 2, k * 128);
        }
        s.pick(&ctx(&w, &[3, 4, 5], 200));
        assert!(s.is_throttled(2));
        // When pressure drops, warp 2 (stalled last) must reactivate first.
        s.pick(&ctx(&w, &[0, 3, 4, 5], 100_000));
        assert!(!s.is_throttled(2));
        assert!(s.is_throttled(1), "reverse order: warp 1 is released on a later epoch");
        s.pick(&ctx(&w, &[0, 2, 3, 4, 5], 100_200));
        assert!(!s.is_throttled(1));
    }

    #[test]
    fn no_decisions_without_interference() {
        let mut s = CiaoScheduler::new(CiaoVariant::Combined, params_fast(), 4);
        let w = warps(4);
        for step in 0..50u64 {
            s.pick(&ctx(&w, &[0, 1, 2, 3], step * 10));
        }
        assert_eq!(s.decisions(), CiaoDecisionCounters::default());
        assert_eq!(s.metrics().throttled_warps, 0);
        assert_eq!(s.metrics().isolated_warps, 0);
    }

    #[test]
    fn gto_order_is_preserved() {
        let mut s = CiaoScheduler::new(CiaoVariant::Combined, CiaoParams::default(), 4);
        let w = warps(4);
        assert_eq!(s.pick(&ctx(&w, &[2, 1, 3], 0)), Some(1));
        // Greedy on warp 1 while it stays ready.
        assert_eq!(s.pick(&ctx(&w, &[3, 1], 1)), Some(1));
        // Falls back to oldest when warp 1 stalls.
        assert_eq!(s.pick(&ctx(&w, &[3, 2], 2)), Some(2));
    }
}
