//! Cache-interference detector (§III-A, §IV-A).
//!
//! The detector combines four structures:
//!
//! 1. the **Victim Tag Array** (reused from CCWS, but with half the entries —
//!    8 per warp) plus per-warp VTA-hit counters and a per-SM total
//!    instruction counter, from which the **Individual Re-reference Score**
//!    of Eq. 1 is computed:
//!    `IRS_i = F_vta_hits_i / (N_executed_inst / N_active_warp)`;
//! 2. the **interference list**: one entry per warp holding the WID of the
//!    most recently *and* frequently interfering warp, guarded by a 2-bit
//!    saturating counter so a burst from a new interferer does not
//!    immediately displace the dominant one;
//! 3. the **pair list**: one entry per warp recording which *interfered* warp
//!    triggered this warp's redirection (field 0) or stall (field 1), so the
//!    reverse decision can be made when the interfered warp's IRS drops;
//! 4. the **interference matrix** used for the motivation figures (1a, 4a/4b);
//!    the hardware does not need it, so its cost is not part of §V-F.

use ciao_schedulers::vta::{Vta, VtaConfig, VtaHit};
use gpu_mem::{Addr, WarpId};
use serde::{Deserialize, Serialize};

/// Which of the two pair-list fields a record occupies (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PairRole {
    /// Field 0: the interfered warp that triggered redirecting this warp's
    /// memory requests to shared memory.
    Redirect,
    /// Field 1: the interfered warp that triggered stalling this warp.
    Stall,
}

/// The interference list: per-warp (interfering WID, 2-bit saturating counter).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterferenceList {
    entries: Vec<Option<(WarpId, u8)>>,
}

impl InterferenceList {
    /// Creates an empty list for `num_warps` warps.
    pub fn new(num_warps: usize) -> Self {
        InterferenceList { entries: vec![None; num_warps] }
    }

    /// Records that `interferer` interfered with `victim` (a VTA hit whose
    /// last evictor was `interferer`). Implements the counter protocol of
    /// Fig. 4c: same interferer → increment (saturating at 3); different
    /// interferer → decrement, and replace only once the counter reaches 0.
    pub fn record(&mut self, victim: WarpId, interferer: WarpId) {
        let Some(entry) = self.entries.get_mut(victim as usize) else {
            return;
        };
        match entry {
            None => *entry = Some((interferer, 0)),
            Some((current, counter)) => {
                if *current == interferer {
                    *counter = (*counter + 1).min(3);
                } else if *counter == 0 {
                    *entry = Some((interferer, 0));
                } else {
                    *counter -= 1;
                }
            }
        }
    }

    /// The warp currently recorded as most interfering with `victim`.
    pub fn top_interferer(&self, victim: WarpId) -> Option<WarpId> {
        self.entries.get(victim as usize).copied().flatten().map(|(w, _)| w)
    }

    /// The saturating-counter value for `victim`'s entry (tests/diagnostics).
    pub fn counter(&self, victim: WarpId) -> Option<u8> {
        self.entries.get(victim as usize).copied().flatten().map(|(_, c)| c)
    }

    /// Storage cost in bits: each entry stores a 6-bit WID and a 2-bit counter.
    pub fn storage_bits(&self) -> u64 {
        self.entries.len() as u64 * 8
    }

    /// Clears the list.
    pub fn reset(&mut self) {
        self.entries.iter_mut().for_each(|e| *e = None);
    }
}

/// The pair list: per-warp `[redirect-trigger, stall-trigger]` records.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairList {
    entries: Vec<[Option<WarpId>; 2]>,
}

impl PairList {
    /// Creates an empty pair list for `num_warps` warps.
    pub fn new(num_warps: usize) -> Self {
        PairList { entries: vec![[None; 2]; num_warps] }
    }

    /// Records that `trigger` (the interfered warp) caused `warp` to be
    /// redirected or stalled.
    pub fn set(&mut self, warp: WarpId, role: PairRole, trigger: WarpId) {
        if let Some(e) = self.entries.get_mut(warp as usize) {
            e[role as usize] = Some(trigger);
        }
    }

    /// The interfered warp recorded for `warp` in the given role.
    pub fn get(&self, warp: WarpId, role: PairRole) -> Option<WarpId> {
        self.entries.get(warp as usize).and_then(|e| e[role as usize])
    }

    /// Clears the record for `warp` in the given role.
    pub fn clear(&mut self, warp: WarpId, role: PairRole) {
        if let Some(e) = self.entries.get_mut(warp as usize) {
            e[role as usize] = None;
        }
    }

    /// Storage cost in bits: two 6-bit WIDs per entry.
    pub fn storage_bits(&self) -> u64 {
        self.entries.len() as u64 * 12
    }

    /// Clears every record.
    pub fn reset(&mut self) {
        self.entries.iter_mut().for_each(|e| *e = [None; 2]);
    }
}

/// The complete interference detector.
#[derive(Debug, Clone)]
pub struct InterferenceDetector {
    vta: Vta,
    interference_list: InterferenceList,
    pair_list: PairList,
    num_warps: usize,
}

impl InterferenceDetector {
    /// Builds a detector for `num_warps` warps using CIAO's 8-entry-per-warp
    /// VTA configuration.
    pub fn new(num_warps: usize) -> Self {
        InterferenceDetector {
            vta: Vta::new(VtaConfig {
                entries_per_warp: VtaConfig::ciao().entries_per_warp,
                num_warps,
            }),
            interference_list: InterferenceList::new(num_warps),
            pair_list: PairList::new(num_warps),
            num_warps,
        }
    }

    /// Number of warps tracked.
    pub fn num_warps(&self) -> usize {
        self.num_warps
    }

    /// Records an eviction: warp `evictor` displaced a line owned by `victim`.
    pub fn on_eviction(&mut self, victim: WarpId, block_addr: Addr, evictor: WarpId) {
        if victim != evictor {
            self.vta.record_eviction(victim, block_addr, evictor);
        }
    }

    /// Checks a miss of `wid` against its victim tags; on a VTA hit the
    /// interference list is updated and the hit returned.
    pub fn on_miss(&mut self, wid: WarpId, block_addr: Addr) -> Option<VtaHit> {
        let hit = self.vta.check_miss(wid, block_addr)?;
        self.interference_list.record(wid, hit.last_evictor);
        Some(hit)
    }

    /// Individual Re-reference Score of warp `i` (Eq. 1). Returns 0 when no
    /// instructions have executed yet.
    pub fn irs(&self, wid: WarpId, executed_instructions: u64, active_warps: usize) -> f64 {
        if executed_instructions == 0 || active_warps == 0 {
            return 0.0;
        }
        let per_warp_instructions = executed_instructions as f64 / active_warps as f64;
        self.vta.hits_of(wid) as f64 / per_warp_instructions
    }

    /// Total VTA hits (interference intensity over the whole SM).
    pub fn total_vta_hits(&self) -> u64 {
        self.vta.total_hits()
    }

    /// VTA hits of one warp.
    pub fn vta_hits_of(&self, wid: WarpId) -> u64 {
        self.vta.hits_of(wid)
    }

    /// The warp most interfering with `victim`, if known.
    pub fn top_interferer(&self, victim: WarpId) -> Option<WarpId> {
        self.interference_list.top_interferer(victim)
    }

    /// Immutable access to the pair list.
    pub fn pair_list(&self) -> &PairList {
        &self.pair_list
    }

    /// Mutable access to the pair list (the scheduler records triggers here).
    pub fn pair_list_mut(&mut self) -> &mut PairList {
        &mut self.pair_list
    }

    /// Storage cost of the detector's SRAM structures in bits (VTA + VTA-hit
    /// counters + interference list + pair list), matching §V-F.
    pub fn storage_bits(&self) -> u64 {
        let vta_hit_counters = self.num_warps as u64 * 32;
        self.vta.storage_bits()
            + vta_hit_counters
            + self.interference_list.storage_bits()
            + self.pair_list.storage_bits()
    }

    /// Resets all structures (between kernels).
    pub fn reset(&mut self) {
        self.vta.reset();
        self.interference_list.reset();
        self.pair_list.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn interference_list_counter_protocol() {
        // Reproduces the Fig. 4c walk-through: W32 interferes with W34 until
        // the counter saturates, W42 shows up once, then W32 returns.
        let mut list = InterferenceList::new(64);
        list.record(34, 32);
        assert_eq!(list.counter(34), Some(0));
        for _ in 0..5 {
            list.record(34, 32);
        }
        assert_eq!(list.counter(34), Some(3), "counter saturates at 3");
        list.record(34, 42); // step 2: decrement
        assert_eq!(list.top_interferer(34), Some(32));
        assert_eq!(list.counter(34), Some(2));
        list.record(34, 32); // step 3: increment again
        assert_eq!(list.counter(34), Some(3));
    }

    #[test]
    fn interference_list_replaces_only_at_zero() {
        let mut list = InterferenceList::new(8);
        list.record(1, 5);
        list.record(1, 5); // counter = 1
        list.record(1, 7); // decrement to 0, keep 5
        assert_eq!(list.top_interferer(1), Some(5));
        list.record(1, 7); // counter is 0 → replace
        assert_eq!(list.top_interferer(1), Some(7));
        assert_eq!(list.counter(1), Some(0));
    }

    #[test]
    fn pair_list_roles_are_independent() {
        let mut pairs = PairList::new(8);
        pairs.set(1, PairRole::Redirect, 0);
        pairs.set(1, PairRole::Stall, 3);
        assert_eq!(pairs.get(1, PairRole::Redirect), Some(0));
        assert_eq!(pairs.get(1, PairRole::Stall), Some(3));
        pairs.clear(1, PairRole::Redirect);
        assert_eq!(pairs.get(1, PairRole::Redirect), None);
        assert_eq!(pairs.get(1, PairRole::Stall), Some(3));
    }

    #[test]
    fn detector_tracks_vta_hits_and_interferers() {
        let mut d = InterferenceDetector::new(48);
        d.on_eviction(3, 0x1000, 9);
        assert!(d.on_miss(3, 0x1000).is_some());
        assert_eq!(d.vta_hits_of(3), 1);
        assert_eq!(d.top_interferer(3), Some(9));
        // A self-eviction is not interference.
        d.on_eviction(4, 0x2000, 4);
        assert!(d.on_miss(4, 0x2000).is_none());
    }

    #[test]
    fn irs_matches_equation_one() {
        let mut d = InterferenceDetector::new(48);
        for i in 0..10u64 {
            d.on_eviction(0, i * 128, 1);
            d.on_miss(0, i * 128);
        }
        // 10 VTA hits, 5000 instructions, 20 active warps:
        // IRS = 10 / (5000 / 20) = 0.04.
        let irs = d.irs(0, 5000, 20);
        assert!((irs - 0.04).abs() < 1e-12, "irs = {irs}");
        assert_eq!(d.irs(0, 0, 20), 0.0);
        assert_eq!(d.irs(0, 5000, 0), 0.0);
        assert_eq!(d.irs(7, 5000, 20), 0.0, "warps with no hits have zero IRS");
    }

    #[test]
    fn storage_cost_is_small() {
        let d = InterferenceDetector::new(48);
        // VTA: 48*8*31, counters: 48*32, interference list: 48*8, pair list: 48*12.
        assert_eq!(d.storage_bits(), 48 * 8 * 31 + 48 * 32 + 48 * 8 + 48 * 12);
        // Well under 3 KB of SRAM per SM.
        assert!(d.storage_bits() / 8 < 3 * 1024);
    }

    #[test]
    fn reset_clears_everything() {
        let mut d = InterferenceDetector::new(8);
        d.on_eviction(0, 0x80, 1);
        d.on_miss(0, 0x80);
        d.pair_list_mut().set(1, PairRole::Stall, 0);
        d.reset();
        assert_eq!(d.total_vta_hits(), 0);
        assert_eq!(d.top_interferer(0), None);
        assert_eq!(d.pair_list().get(1, PairRole::Stall), None);
    }

    proptest! {
        /// The saturating counter never leaves [0, 3] and the recorded
        /// interferer is always one of the warps that actually interfered.
        #[test]
        fn counter_bounds(interferers in proptest::collection::vec(0u32..8, 1..200)) {
            let mut list = InterferenceList::new(4);
            for &i in &interferers {
                list.record(0, i);
                let c = list.counter(0).unwrap();
                prop_assert!(c <= 3);
                let top = list.top_interferer(0).unwrap();
                prop_assert!(interferers.contains(&top));
            }
        }

        /// IRS is monotone in the number of VTA hits and inversely monotone
        /// in the per-warp instruction count.
        #[test]
        fn irs_monotonicity(hits in 1u64..50, insts in 1000u64..100_000, warps in 1usize..48) {
            let mut d = InterferenceDetector::new(48);
            for i in 0..hits {
                d.on_eviction(0, i * 128, 1);
                d.on_miss(0, i * 128);
            }
            let base = d.irs(0, insts, warps);
            d.on_eviction(0, hits * 128, 1);
            d.on_miss(0, hits * 128);
            prop_assert!(d.irs(0, insts, warps) > base);
            prop_assert!(d.irs(0, insts * 2, warps) < d.irs(0, insts, warps));
        }
    }
}
