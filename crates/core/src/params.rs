//! CIAO decision thresholds and epochs (§IV-A).

use serde::{Deserialize, Serialize};

/// Tunable parameters of the CIAO interference detector and scheduler.
///
/// The defaults are the values the paper selects after its sensitivity sweep
/// (§IV-A and §V-E): `high-cutoff` = 0.01 (1%), `low-cutoff` = 0.005 (half of
/// it), a 5000-instruction high-cutoff epoch and a 100-instruction low-cutoff
/// epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CiaoParams {
    /// IRS threshold above which a warp is considered severely interfered,
    /// triggering isolation or throttling of its top interferer.
    pub high_cutoff: f64,
    /// IRS threshold below which a previously triggering warp is considered
    /// relieved, allowing reactivation / un-redirection.
    pub low_cutoff: f64,
    /// Instructions between evaluations of the high-cutoff condition.
    pub high_epoch: u64,
    /// Instructions between evaluations of the low-cutoff condition (shorter
    /// than the high epoch so stalled warps are reactivated promptly, keeping
    /// TLP high).
    pub low_epoch: u64,
}

impl Default for CiaoParams {
    fn default() -> Self {
        CiaoParams { high_cutoff: 0.01, low_cutoff: 0.005, high_epoch: 5000, low_epoch: 100 }
    }
}

impl CiaoParams {
    /// Returns a copy with a different high-cutoff epoch (Fig. 11a sweeps
    /// 1K, 5K, 10K and 50K instructions).
    pub fn with_high_epoch(mut self, epoch: u64) -> Self {
        self.high_epoch = epoch.max(1);
        self.low_epoch = self.low_epoch.min(self.high_epoch);
        self
    }

    /// Returns a copy with a different high-cutoff threshold, keeping the
    /// low-cutoff at half of it (Fig. 11b sweeps 4%, 2%, 1% and 0.5%).
    pub fn with_high_cutoff(mut self, cutoff: f64) -> Self {
        self.high_cutoff = cutoff;
        self.low_cutoff = cutoff / 2.0;
        self
    }

    /// Validates the parameter combination.
    pub fn validate(&self) -> Result<(), String> {
        if self.high_cutoff.is_nan() || self.high_cutoff <= 0.0 {
            return Err("high_cutoff must be positive".into());
        }
        if self.low_cutoff.is_nan() || self.low_cutoff <= 0.0 || self.low_cutoff > self.high_cutoff
        {
            return Err("low_cutoff must be positive and not exceed high_cutoff".into());
        }
        if self.high_epoch == 0 || self.low_epoch == 0 {
            return Err("epochs must be positive".into());
        }
        if self.low_epoch > self.high_epoch {
            return Err("low epoch must not exceed the high epoch".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = CiaoParams::default();
        assert!((p.high_cutoff - 0.01).abs() < 1e-12);
        assert!((p.low_cutoff - 0.005).abs() < 1e-12);
        assert_eq!(p.high_epoch, 5000);
        assert_eq!(p.low_epoch, 100);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn sweep_builders() {
        let p = CiaoParams::default().with_high_epoch(50_000);
        assert_eq!(p.high_epoch, 50_000);
        assert!(p.validate().is_ok());

        let p = CiaoParams::default().with_high_cutoff(0.04);
        assert!((p.low_cutoff - 0.02).abs() < 1e-12);
        assert!(p.validate().is_ok());

        // Shrinking the high epoch below the low epoch clamps the low epoch.
        let p = CiaoParams::default().with_high_epoch(50);
        assert!(p.low_epoch <= p.high_epoch);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_combinations() {
        assert!(CiaoParams { high_cutoff: 0.0, ..CiaoParams::default() }.validate().is_err());
        assert!(CiaoParams { low_cutoff: 0.02, ..CiaoParams::default() }.validate().is_err());
        assert!(CiaoParams { high_epoch: 0, ..CiaoParams::default() }.validate().is_err());
        assert!(CiaoParams { low_epoch: 10_000, ..CiaoParams::default() }.validate().is_err());
    }
}
