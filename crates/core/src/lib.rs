//! # ciao-core — Cache Interference-Aware throughput-Oriented architecture and scheduling
//!
//! The paper's contribution, implemented on top of the `gpu-sim` /
//! `gpu-mem` substrate:
//!
//! * [`params`] — the decision thresholds and epochs of §IV-A
//!   (`high-cutoff` = 0.01, `low-cutoff` = 0.005, 5000- and 100-instruction
//!   epochs) with builders for the sensitivity sweeps of Fig. 11.
//! * [`detector`] — the cache-interference detector: per-warp VTA-hit
//!   counters on top of the Victim Tag Array, the *interference list* with
//!   its 2-bit saturating counters tracking the most recently and frequently
//!   interfering warp per warp, the *pair list*, and the Individual
//!   Re-reference Score (IRS) of Eq. 1.
//! * [`translation`] — the address-translation unit of §IV-B that maps a
//!   global address onto the shared-memory data-block and tag locations
//!   (byte offset / bank / bank group / row bit slicing).
//! * [`shmem_cache`] — the CIAO on-chip memory architecture: unused shared
//!   memory organised as a direct-mapped cache with tags and 128-byte blocks
//!   striped across the two 16-bank groups, exposed to the SM through the
//!   `gpu_sim::RedirectCache` interface.
//! * [`scheduler`] — CIAO warp scheduling (Algorithm 1) in its three
//!   evaluated variants: CIAO-P (redirection only), CIAO-T (selective
//!   throttling only) and CIAO-C (both).
//! * [`overhead`] — the §V-F hardware-overhead model (storage bits, gate
//!   counts, area and power estimates).
//!
//! ## Quick start
//!
//! ```
//! use ciao_core::{CiaoParams, CiaoVariant};
//! use gpu_sim::{GpuConfig, SimRequest, Simulator};
//! use ciao_workloads::{Benchmark, ScaleConfig};
//! use std::sync::Arc;
//!
//! let config = GpuConfig::gtx480().with_max_instructions(5_000);
//! let sim = Simulator::new(config.clone());
//! let kernel = Benchmark::Syrk.kernel(&ScaleConfig::tiny());
//! let request = SimRequest::kernel(Arc::new(kernel)).num_sms(1);
//! let result =
//!     sim.execute(request, |_sm| CiaoVariant::Combined.build(&CiaoParams::default(), &config));
//! assert!(result.stats.instructions > 0);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod detector;
pub mod overhead;
pub mod params;
pub mod scheduler;
pub mod shmem_cache;
pub mod translation;

pub use detector::{InterferenceDetector, InterferenceList, PairList, PairRole};
pub use overhead::{OverheadModel, OverheadReport};
pub use params::CiaoParams;
pub use scheduler::{CiaoScheduler, CiaoVariant};
pub use shmem_cache::SharedMemCache;
pub use translation::{ShmemLocation, TranslationUnit};
