//! The per-chip rate-server model of the fleet tier.
//!
//! A [`ChipModel`] stands in for one cycle-level chip (a [`gpu_sim`] run)
//! inside a fleet simulation. It is a discrete-event queueing server whose
//! constants come from real chip measurements ([`crate::calib`]): up to
//! [`MAX_RESIDENT`] jobs run concurrently, each draining at
//!
//! ```text
//! rate(job) = share(job) × solo_ipc(class) / max co-resident slowdown
//! ```
//!
//! where `share` divides the chip's SMs among residents (interactive jobs
//! weigh double — the fleet-model analogue of the chip tier's
//! [`gpu_sim::QosSpec`] floors), and the slowdown factor switches from the
//! unmanaged [`Calibration::shared_slowdown`] matrix to the contained
//! [`Calibration::aware_slowdown`] matrix once the on-chip dispatcher has
//! *classified* the pair — a delay of [`Calibration::classify_delay`]
//! cycles after admission, exactly the window the paper's dispatcher needs
//! to observe hit rates before acting.
//!
//! Every admission, classification, and completion appends a real
//! [`DispatchDecision`] to a live [`gpu_sim::DispatchLog`] — the same type
//! the chip engine emits — so cluster placement reads chip state through
//! the identical telemetry surface it would have against real chips (see
//! [`ChipModel::view`]). The log is compacted once it exceeds a cap so an
//! eight-chip, million-arrival fleet stays in bounded memory.
//!
//! Determinism: all state is advanced by [`ChipModel::advance_to`] with a
//! fixed event order (completions by slot, then classifications by slot,
//! then arrivals) and fixed-order f64 arithmetic, so a chip's trajectory is
//! a pure function of the jobs pushed into it — independent of which fleet
//! worker thread drives it.

use gpu_sim::{DispatchAction, DispatchDecision, DispatchLog, LatencyClass, TenantClass};
use std::collections::VecDeque;

use crate::calib::Calibration;
use crate::traffic::{Arrival, WorkClass};

/// Maximum concurrently resident jobs per chip (the chip tier co-runs up to
/// four tenants; beyond that, arrivals queue).
pub const MAX_RESIDENT: usize = 4;

/// Decision-log length that triggers compaction, and the length compaction
/// keeps. The newest decisions always survive, so [`ChipModel::view`] reads
/// fresh telemetry.
const LOG_COMPACT_AT: usize = 1024;
const LOG_KEEP: usize = 256;

/// Queue-share weight per latency class: interactive jobs get a double
/// share of the chip while resident (throughput floor) and jump the
/// admission queue.
fn weight(latency: LatencyClass) -> f64 {
    match latency {
        LatencyClass::Interactive => 2.0,
        LatencyClass::Batch => 1.0,
    }
}

/// One job on (or queued for) a chip.
#[derive(Debug, Clone)]
struct Job {
    id: u64,
    class: WorkClass,
    latency: LatencyClass,
    work: u64,
    arrival: u64,
    /// Instructions still to execute.
    remaining: f64,
    /// Cycle at which the on-chip dispatcher classifies this job.
    classify_at: u64,
    classified: bool,
}

impl Job {
    fn from_arrival(a: &Arrival) -> Job {
        Job {
            id: a.id,
            class: a.class,
            latency: a.latency,
            work: a.work,
            arrival: a.cycle,
            remaining: a.work as f64,
            classify_at: 0,
            classified: false,
        }
    }
}

/// A finished job, reported back to the fleet for SLO accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletedJob {
    /// Submission id from the traffic stream.
    pub id: u64,
    /// Tenant class.
    pub class: WorkClass,
    /// Latency (SLO) class.
    pub latency: LatencyClass,
    /// Kernel size in instructions.
    pub work: u64,
    /// Fleet-time arrival cycle.
    pub arrival: u64,
    /// Fleet-time completion cycle.
    pub finish: u64,
    /// Chip the job ran on.
    pub chip: usize,
}

/// Placement-visible snapshot of one chip, derived from its live dispatch
/// log (classification counts) and queue state (load).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChipView {
    /// Chip index in the fleet.
    pub chip: usize,
    /// Currently resident jobs.
    pub resident: usize,
    /// Jobs queued or in flight to this chip (admission backlog).
    pub queued: usize,
    /// Resident jobs the dispatch log currently classifies as
    /// cache-sensitive.
    pub classified_cache: usize,
    /// Resident jobs the dispatch log currently classifies as streaming.
    pub classified_stream: usize,
    /// Backlog of not-yet-resident work in solo-equivalent cycles, by
    /// declared [`crate::traffic::WorkClass::index`] (the cluster placed
    /// these jobs, so it knows their declared class and size even though
    /// the chip has not classified them yet).
    pub pending_class_cycles: [u64; 3],
}

impl ChipView {
    /// Total pending backlog in solo-equivalent cycles, all classes.
    pub fn pending_cycles(&self) -> u64 {
        self.pending_class_cycles.iter().sum()
    }
}

/// End-of-run accounting for one chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipAccounting {
    /// Cycles with at least one resident job, up to the chip's last event.
    pub busy_cycles: u64,
    /// Integral of resident count over time (slot-cycles).
    pub slot_cycles: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Classification verdicts issued, by class (cache, stream, compute).
    pub classified: [u64; 3],
    /// Peak admission-queue depth observed.
    pub peak_queue: usize,
}

/// One chip of the fleet: a calibrated rate server with a live
/// [`DispatchLog`]. Driven by [`ChipModel::push`] (from fleet placement)
/// and [`ChipModel::advance_to`] (from the fleet epoch loop).
#[derive(Debug)]
pub struct ChipModel {
    id: usize,
    calib: Calibration,
    now: u64,
    /// Placed but not yet arrived jobs, in arrival order.
    inbox: VecDeque<Job>,
    /// Arrived jobs waiting for a resident slot.
    queue: VecDeque<Job>,
    /// Resident slots (tenant ids of the on-chip dispatcher).
    resident: [Option<Job>; MAX_RESIDENT],
    log: DispatchLog,
    /// Solo-equivalent cycles of the jobs in `inbox` + `queue`, by declared
    /// [`WorkClass::index`].
    pending_cycles: [u64; 3],
    done: Vec<CompletedJob>,
    busy_cycles: u64,
    slot_cycles: u64,
    classified: [u64; 3],
    peak_queue: usize,
}

impl ChipModel {
    /// Creates chip `id` with the given calibration table.
    pub fn new(id: usize, calib: Calibration) -> ChipModel {
        ChipModel {
            id,
            calib,
            now: 0,
            inbox: VecDeque::new(),
            queue: VecDeque::new(),
            resident: [None, None, None, None],
            log: DispatchLog::default(),
            pending_cycles: [0; 3],
            done: Vec::new(),
            busy_cycles: 0,
            slot_cycles: 0,
            classified: [0; 3],
            peak_queue: 0,
        }
    }

    /// Queues an arrival for this chip. Must be called in non-decreasing
    /// arrival order (the fleet places the globally sorted stream).
    pub fn push(&mut self, arrival: &Arrival) {
        debug_assert!(
            self.inbox.back().is_none_or(|j| j.arrival <= arrival.cycle),
            "arrivals must be pushed in order"
        );
        self.pending_cycles[arrival.class.index()] +=
            self.calib.solo_cycles(arrival.class, arrival.work).round() as u64;
        self.inbox.push_back(Job::from_arrival(arrival));
    }

    /// Current sim time of this chip.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// True when no work is queued, resident, or in flight.
    pub fn idle(&self) -> bool {
        self.inbox.is_empty() && self.queue.is_empty() && self.resident.iter().all(Option::is_none)
    }

    /// Conservative lower bound on the next cycle at which advancing this
    /// chip can change its state: `u64::MAX` when fully drained, the first
    /// in-flight arrival when nothing is resident or queued, [`Self::now`]
    /// otherwise. The fleet epoch loop skips advancing (and re-polling)
    /// chips whose hint lies beyond the epoch end — sound because a
    /// skipped chip's clock simply stays frozen and [`Self::advance_to`]
    /// fast-forwards over arrival gaps, so its trajectory is unchanged.
    pub fn next_event_time(&self) -> u64 {
        if self.resident.iter().any(Option::is_some) || !self.queue.is_empty() {
            self.now
        } else {
            self.inbox.front().map_or(u64::MAX, |j| j.arrival)
        }
    }

    /// The live decision log (same telemetry type the chip engine emits).
    pub fn log(&self) -> &DispatchLog {
        &self.log
    }

    /// Placement-visible snapshot. Classification counts are read from the
    /// last [`DispatchDecision`] of the live log — the placement tier sees
    /// exactly what the chip's dispatcher published, nothing more.
    pub fn view(&self) -> ChipView {
        let (mut cache, mut stream) = (0, 0);
        if let Some(d) = self.log.decisions.last() {
            for c in &d.classes {
                match c {
                    TenantClass::CacheSensitive => cache += 1,
                    TenantClass::Streaming => stream += 1,
                    TenantClass::Unclassified => {}
                }
            }
        }
        ChipView {
            chip: self.id,
            resident: self.resident.iter().flatten().count(),
            queued: self.inbox.len() + self.queue.len(),
            classified_cache: cache,
            classified_stream: stream,
            pending_class_cycles: self.pending_cycles,
        }
    }

    /// End-of-run accounting.
    pub fn accounting(&self) -> ChipAccounting {
        ChipAccounting {
            busy_cycles: self.busy_cycles,
            slot_cycles: self.slot_cycles,
            completed: self.done.len() as u64,
            classified: self.classified,
            peak_queue: self.peak_queue,
        }
    }

    /// Drains the completed-job list (fleet collects after the run).
    pub fn take_completed(&mut self) -> Vec<CompletedJob> {
        std::mem::take(&mut self.done)
    }

    /// The published [`TenantClass`] of the job in `slot`: its true class
    /// once the dispatcher has classified it, `Unclassified` before.
    fn slot_class(&self, slot: usize) -> TenantClass {
        match &self.resident[slot] {
            Some(j) if j.classified => match j.class {
                WorkClass::Cache => TenantClass::CacheSensitive,
                WorkClass::Stream => TenantClass::Streaming,
                WorkClass::Compute => TenantClass::Unclassified,
            },
            _ => TenantClass::Unclassified,
        }
    }

    /// Appends a decision mirroring the current resident state to the live
    /// log, compacting when past the cap. Hit rates are `-1` (unmeasured):
    /// the fleet model tracks classes and shares, not cache counters.
    fn log_decision(&mut self, actions: Vec<DispatchAction>) {
        let shares = self.shares();
        let decision = DispatchDecision {
            cycle: self.now,
            l2_hit_rate: vec![-1.0; MAX_RESIDENT],
            l1_hit_rate: vec![-1.0; MAX_RESIDENT],
            classes: (0..MAX_RESIDENT).map(|s| self.slot_class(s)).collect(),
            allowed_sms: shares
                .iter()
                .map(|s| ((s * self.calib.sms as f64).round() as usize).min(self.calib.sms))
                .collect(),
            actions,
        };
        self.log.decisions.push(decision);
        if self.log.decisions.len() > LOG_COMPACT_AT {
            let cut = self.log.decisions.len() - LOG_KEEP;
            self.log.decisions.drain(..cut);
        }
    }

    /// Per-slot chip share: weight(latency) / Σ weights over residents.
    fn shares(&self) -> [f64; MAX_RESIDENT] {
        let total: f64 = self.resident.iter().flatten().map(|j| weight(j.latency)).sum();
        let mut shares = [0.0; MAX_RESIDENT];
        if total <= 0.0 {
            return shares;
        }
        for (slot, job) in self.resident.iter().enumerate() {
            if let Some(j) = job {
                shares[slot] = weight(j.latency) / total;
            }
        }
        shares
    }

    /// Per-slot drain rate (instructions per cycle) under the current
    /// resident set: share × solo rate / worst co-resident slowdown. The
    /// contained (aware) matrix applies to a pair only once *both* jobs are
    /// classified.
    fn rates(&self) -> [f64; MAX_RESIDENT] {
        let shares = self.shares();
        let mut rates = [0.0; MAX_RESIDENT];
        for (slot, job) in self.resident.iter().enumerate() {
            let Some(j) = job else { continue };
            let mut slow = 1.0f64;
            for (other, o) in self.resident.iter().enumerate() {
                let Some(k) = o else { continue };
                if other == slot {
                    continue;
                }
                let aware = j.classified && k.classified;
                slow = slow.max(self.calib.slowdown(j.class, k.class, aware));
            }
            rates[slot] = shares[slot] * self.calib.solo_rate(j.class) / slow;
        }
        rates
    }

    /// Moves due inbox jobs to the queue and fills free resident slots
    /// (interactive first, then FIFO), logging admissions.
    fn admit_due(&mut self) {
        while self.inbox.front().is_some_and(|j| j.arrival <= self.now) {
            self.queue.push_back(self.inbox.pop_front().expect("front checked"));
        }
        self.peak_queue = self.peak_queue.max(self.queue.len());
        while let Some(slot) = self.resident.iter().position(Option::is_none) {
            let pick =
                self.queue.iter().position(|j| j.latency == LatencyClass::Interactive).unwrap_or(0);
            let Some(mut job) = self.queue.remove(pick) else { break };
            let solo = self.calib.solo_cycles(job.class, job.work).round() as u64;
            self.pending_cycles[job.class.index()] =
                self.pending_cycles[job.class.index()].saturating_sub(solo);
            job.classify_at = self.now + self.calib.classify_delay;
            self.resident[slot] = Some(job);
            self.log_decision(vec![DispatchAction::Admit { tenant: slot as u32 }]);
        }
    }

    /// Advances the chip to `t_end` (fleet time), processing admissions,
    /// classifications, and completions in deterministic order. With
    /// `t_end == u64::MAX` the chip runs until it drains; its clock stops
    /// at the last event.
    pub fn advance_to(&mut self, t_end: u64) {
        loop {
            self.admit_due();
            let occupied = self.resident.iter().flatten().count();
            if occupied == 0 {
                // Nothing resident: jump to the next arrival or stop.
                match self.inbox.front() {
                    Some(j) if j.arrival <= t_end => {
                        self.now = j.arrival;
                        continue;
                    }
                    _ => {
                        if t_end != u64::MAX {
                            self.now = self.now.max(t_end);
                        }
                        return;
                    }
                }
            }

            // Next event: earliest completion / classification / arrival,
            // capped at the epoch end.
            let rates = self.rates();
            let mut t_next = t_end;
            for (slot, job) in self.resident.iter().enumerate() {
                let Some(j) = job else { continue };
                if rates[slot] > 0.0 {
                    let dt = (j.remaining / rates[slot]).ceil().max(1.0) as u64;
                    t_next = t_next.min(self.now.saturating_add(dt));
                }
                if !j.classified {
                    t_next = t_next.min(j.classify_at);
                }
            }
            if let Some(j) = self.inbox.front() {
                if j.arrival > self.now {
                    t_next = t_next.min(j.arrival);
                }
            }
            let dt = t_next.saturating_sub(self.now);

            // Integrate work over [now, t_next) at the current rates.
            if dt > 0 {
                for (slot, job) in self.resident.iter_mut().enumerate() {
                    if let Some(j) = job {
                        j.remaining -= rates[slot] * dt as f64;
                    }
                }
                self.busy_cycles += dt;
                self.slot_cycles += occupied as u64 * dt;
                self.now = t_next;
            }

            // Completions first (slot order), then classifications.
            let mut actions = Vec::new();
            for slot in 0..MAX_RESIDENT {
                let complete = self.resident[slot].as_ref().is_some_and(|j| j.remaining <= 1e-6);
                if complete {
                    let j = self.resident[slot].take().expect("checked occupied");
                    self.done.push(CompletedJob {
                        id: j.id,
                        class: j.class,
                        latency: j.latency,
                        work: j.work,
                        arrival: j.arrival,
                        finish: self.now,
                        chip: self.id,
                    });
                    actions.push(DispatchAction::Restore {
                        tenant: slot as u32,
                        allowed_sms: self.calib.sms,
                    });
                }
            }
            for slot in 0..MAX_RESIDENT {
                if let Some(j) = &mut self.resident[slot] {
                    if !j.classified && j.classify_at <= self.now {
                        j.classified = true;
                        self.classified[j.class.index()] += 1;
                        let allowed = self.log.decisions.last().map_or_else(
                            || vec![self.calib.sms; MAX_RESIDENT],
                            |d| d.allowed_sms.clone(),
                        );
                        actions.push(DispatchAction::Place { allowed_sms: allowed });
                    }
                }
            }
            if !actions.is_empty() {
                self.log_decision(actions);
            }

            if self.now >= t_end {
                return;
            }
            if t_end == u64::MAX && self.idle() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficSpec;

    fn arrival(id: u64, cycle: u64, class: WorkClass, latency: LatencyClass, work: u64) -> Arrival {
        Arrival { id, cycle, class, latency, work }
    }

    #[test]
    fn solo_job_finishes_at_solo_time() {
        let calib = Calibration::reference(8);
        let mut chip = ChipModel::new(0, calib.clone());
        let a = arrival(0, 100, WorkClass::Compute, LatencyClass::Batch, 48_000);
        chip.push(&a);
        chip.advance_to(u64::MAX);
        let done = chip.take_completed();
        assert_eq!(done.len(), 1);
        let expect = calib.solo_cycles(WorkClass::Compute, 48_000).ceil() as u64;
        let got = done[0].finish - done[0].arrival;
        assert!(
            got.abs_diff(expect) <= 2,
            "solo turnaround {got} should be ~{expect} (solo rate, full share)"
        );
    }

    #[test]
    fn co_residents_slow_each_other_down() {
        let calib = Calibration::reference(8);
        let solo = {
            let mut chip = ChipModel::new(0, calib.clone());
            chip.push(&arrival(0, 0, WorkClass::Cache, LatencyClass::Batch, 100_000));
            chip.advance_to(u64::MAX);
            chip.take_completed()[0].finish
        };
        let mut chip = ChipModel::new(0, calib);
        chip.push(&arrival(0, 0, WorkClass::Cache, LatencyClass::Batch, 100_000));
        chip.push(&arrival(1, 0, WorkClass::Stream, LatencyClass::Batch, 100_000));
        chip.advance_to(u64::MAX);
        let done = chip.take_completed();
        let cache_fin = done.iter().find(|j| j.class == WorkClass::Cache).unwrap().finish;
        assert!(
            cache_fin > solo * 2,
            "shared cache job ({cache_fin}) must run slower than half-share solo ({})",
            solo * 2
        );
    }

    #[test]
    fn classification_switches_to_the_contained_regime() {
        let mut fast = Calibration::reference(8);
        fast.classify_delay = 10;
        let mut slow_calib = Calibration::reference(8);
        slow_calib.classify_delay = u64::MAX / 2; // effectively never classifies
        let run = |calib: Calibration| {
            let mut chip = ChipModel::new(0, calib);
            chip.push(&arrival(0, 0, WorkClass::Cache, LatencyClass::Batch, 200_000));
            chip.push(&arrival(1, 0, WorkClass::Stream, LatencyClass::Batch, 200_000));
            chip.advance_to(u64::MAX);
            chip.take_completed().iter().find(|j| j.class == WorkClass::Cache).unwrap().finish
        };
        assert!(
            run(fast) < run(slow_calib),
            "early classification (aware matrix) must speed the cache victim up"
        );
    }

    #[test]
    fn interactive_jobs_jump_the_queue_and_get_a_double_share() {
        let calib = Calibration::reference(8);
        let mut chip = ChipModel::new(0, calib);
        // Fill all four slots, then queue one batch and one interactive job.
        for id in 0..4 {
            chip.push(&arrival(id, 0, WorkClass::Compute, LatencyClass::Batch, 50_000));
        }
        chip.push(&arrival(4, 10, WorkClass::Compute, LatencyClass::Batch, 50_000));
        chip.push(&arrival(5, 20, WorkClass::Compute, LatencyClass::Interactive, 50_000));
        chip.advance_to(u64::MAX);
        let done = chip.take_completed();
        let batch_queued = done.iter().find(|j| j.id == 4).unwrap();
        let interactive = done.iter().find(|j| j.id == 5).unwrap();
        assert!(
            interactive.finish < batch_queued.finish,
            "the later interactive job must be admitted first and finish earlier"
        );
    }

    #[test]
    fn view_reads_classifications_from_the_live_log() {
        let mut calib = Calibration::reference(8);
        calib.classify_delay = 100;
        let mut chip = ChipModel::new(0, calib);
        chip.push(&arrival(0, 0, WorkClass::Cache, LatencyClass::Batch, 1_000_000));
        chip.push(&arrival(1, 0, WorkClass::Stream, LatencyClass::Batch, 1_000_000));
        chip.advance_to(50);
        let early = chip.view();
        assert_eq!((early.classified_cache, early.classified_stream), (0, 0));
        assert_eq!(early.resident, 2);
        chip.advance_to(500);
        let later = chip.view();
        assert_eq!(
            (later.classified_cache, later.classified_stream),
            (1, 1),
            "after the classify delay the log must publish both classes"
        );
        assert!(!chip.log().decisions.is_empty());
    }

    #[test]
    fn next_event_time_tracks_the_chip_lifecycle() {
        let calib = Calibration::reference(8);
        let mut chip = ChipModel::new(0, calib);
        assert_eq!(chip.next_event_time(), u64::MAX, "a fresh chip sleeps forever");
        chip.push(&arrival(0, 5_000, WorkClass::Compute, LatencyClass::Batch, 10_000));
        assert_eq!(chip.next_event_time(), 5_000, "in-flight arrival bounds the next event");
        chip.advance_to(6_000);
        assert_eq!(chip.next_event_time(), chip.now(), "resident work is due immediately");
        chip.advance_to(u64::MAX);
        assert_eq!(chip.next_event_time(), u64::MAX, "drained chips sleep forever again");
        assert_eq!(chip.take_completed().len(), 1);
    }

    #[test]
    fn skipping_an_idle_chip_is_trajectory_invariant() {
        // Advancing an idle chip epoch-by-epoch and leaving it asleep until
        // its next arrival must produce bit-identical completions.
        let calib = Calibration::reference(8);
        let mut stepped = ChipModel::new(0, calib.clone());
        let mut slept = ChipModel::new(0, calib);
        let late = arrival(0, 100_000, WorkClass::Cache, LatencyClass::Batch, 40_000);
        stepped.push(&late);
        slept.push(&late);
        let mut t = 0;
        while t < 200_000 {
            t += 1_000;
            stepped.advance_to(t);
            if slept.next_event_time() <= t {
                slept.advance_to(t);
            }
        }
        stepped.advance_to(u64::MAX);
        slept.advance_to(u64::MAX);
        assert_eq!(stepped.take_completed(), slept.take_completed());
    }

    #[test]
    fn advancement_is_split_invariant() {
        // Advancing in many small epochs must equal one big advance.
        let calib = Calibration::reference(8);
        let arrivals = TrafficSpec::new(500, 17).with_mean_interarrival(150.0).generate();
        let mut a = ChipModel::new(0, calib.clone());
        let mut b = ChipModel::new(0, calib);
        for x in &arrivals {
            a.push(x);
            b.push(x);
        }
        a.advance_to(u64::MAX);
        let mut t = 0;
        while !b.idle() {
            t += 1_000;
            b.advance_to(t);
        }
        let (da, db) = (a.take_completed(), b.take_completed());
        assert_eq!(da, db, "epoch-split advancement must be bit-identical");
    }

    #[test]
    fn log_is_compacted_under_sustained_load() {
        let mut calib = Calibration::reference(8);
        calib.classify_delay = 1;
        let mut chip = ChipModel::new(0, calib);
        let arrivals =
            TrafficSpec::new(3_000, 5).with_mean_interarrival(50.0).with_work_range(1_000, 2_000);
        for x in &arrivals.generate() {
            chip.push(x);
        }
        chip.advance_to(u64::MAX);
        assert!(
            chip.log().decisions.len() <= LOG_COMPACT_AT,
            "decision log must stay within the compaction cap"
        );
        assert_eq!(chip.accounting().completed, 3_000);
    }
}
