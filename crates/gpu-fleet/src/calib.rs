//! Chip-behaviour calibration for the fleet tier.
//!
//! A fleet run processes up to millions of kernel arrivals — far past what
//! cycle-level chip simulation can cover. The fleet tier therefore models
//! each chip as a calibrated rate server (see [`crate::chip`]): every
//! resident job drains at a rate derived from its class's **solo chip IPC**
//! scaled down by its share of the chip and by the **pairwise slowdown**
//! its co-residents inflict. This module produces those constants,
//! measured from the real chip engine so the fleet model inherits the
//! paper's interference structure instead of inventing one.
//!
//! [`Calibration::measure`] runs the actual [`gpu_sim::Simulator`] (GTO
//! warp scheduling, Tiny workload scale) once per class solo and once per
//! class pair co-run, under two dispatch regimes:
//!
//! * [`DispatchPolicy::SharedRoundRobin`] — no interference management;
//!   yields the slowdown matrix that applies *before* a chip's dispatcher
//!   has classified its residents;
//! * [`DispatchPolicy::InterferenceAware`] — the CIAO-style adaptive
//!   dispatcher; yields the (smaller) slowdowns that apply *after*
//!   classification has kicked in and the interferer is being contained.
//!
//! The representative benchmark per [`WorkClass`] follows the paper's
//! class taxonomy: Syrk (Sws → `Cache`), Atax (Lws → `Stream`), Nn (Ci →
//! `Compute`). Because measuring takes a second or two of real chip
//! simulation, [`Calibration::reference`] provides a pinned table with the
//! same structure for tests and quick experiments.

use ciao_workloads::mix::TENANT_ADDRESS_STRIDE;
use ciao_workloads::{Benchmark, ScaleConfig};
use gpu_sim::{
    BackendKind, DispatchPolicy, GpuConfig, GtoScheduler, Kernel, OffsetKernel, SimRequest,
    Simulator, SmUnit,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

use crate::traffic::WorkClass;

/// Calibrated chip-behaviour constants consumed by the fleet's rate-server
/// chip model. All rates are whole-chip instructions per cycle at `sms`
/// SMs; slowdown entries are ≥ 1 multipliers on a job's solo service time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// SM count of the chip configuration this table was measured at.
    pub sms: usize,
    /// Solo whole-chip IPC per class, indexed by [`WorkClass::index`].
    pub solo_ipc: [f64; 3],
    /// `shared_slowdown[victim][interferer]`: service-time multiplier under
    /// unmanaged sharing (pre-classification regime).
    pub shared_slowdown: [[f64; 3]; 3],
    /// Same matrix under interference-aware dispatch (post-classification
    /// regime, interferer contained).
    pub aware_slowdown: [[f64; 3]; 3],
    /// Cycles from a job's admission until the chip dispatcher's
    /// classification verdict flips its slowdown regime.
    pub classify_delay: u64,
}

/// The representative benchmark standing in for each fleet work class.
pub fn class_benchmark(class: WorkClass) -> Benchmark {
    match class {
        WorkClass::Cache => Benchmark::Syrk,
        WorkClass::Stream => Benchmark::Atax,
        WorkClass::Compute => Benchmark::Nn,
    }
}

fn gto_unit(_sm: usize) -> SmUnit {
    (Box::new(GtoScheduler::new()), None)
}

impl Calibration {
    /// Measures a calibration table against the real chip engine at `sms`
    /// SMs: 3 solo runs plus 6 unordered pair co-runs under each of the two
    /// dispatch regimes, all at Tiny scale with GTO warp scheduling.
    /// Deterministic: same `sms`, same table.
    pub fn measure(sms: usize) -> Calibration {
        let scale = ScaleConfig::tiny();
        let config = GpuConfig::default().with_num_sms(sms.max(1));
        let sim = Simulator::new(config);

        let mut solo_ipc = [0.0f64; 3];
        for class in WorkClass::ALL {
            let kernel: Arc<dyn Kernel> = Arc::new(class_benchmark(class).kernel(&scale));
            let res = sim.execute(
                SimRequest::kernel(kernel).num_sms(sms).backend(BackendKind::Event),
                gto_unit,
            );
            solo_ipc[class.index()] = res.ipc();
        }

        let mut shared_slowdown = [[1.0f64; 3]; 3];
        let mut aware_slowdown = [[1.0f64; 3]; 3];
        let mut classify_delay = 0u64;
        for (ai, a) in WorkClass::ALL.into_iter().enumerate() {
            for b in WorkClass::ALL.into_iter().skip(ai) {
                for (policy, matrix) in [
                    (DispatchPolicy::SharedRoundRobin, &mut shared_slowdown),
                    (DispatchPolicy::InterferenceAware, &mut aware_slowdown),
                ] {
                    let ka: Arc<dyn Kernel> = Arc::new(class_benchmark(a).kernel(&scale));
                    let kb: Arc<dyn Kernel> = Arc::new(OffsetKernel::new(
                        Arc::new(class_benchmark(b).kernel(&scale)),
                        TENANT_ADDRESS_STRIDE,
                    ));
                    let res = sim.execute(
                        SimRequest::new()
                            .stream(ka)
                            .stream(kb)
                            .policy(policy)
                            .num_sms(sms)
                            .backend(BackendKind::Event),
                        gto_unit,
                    );
                    let ipcs = res.tenant_ipcs();
                    // A fair solo baseline for a co-run tenant is half the
                    // chip; the rate model applies the share factor
                    // separately, so slowdown here is the *excess* beyond
                    // fair sharing.
                    let fair = 0.5;
                    let slow_a = (fair * solo_ipc[a.index()] / ipcs[0].max(1e-9)).max(1.0);
                    let slow_b = (fair * solo_ipc[b.index()] / ipcs[1].max(1e-9)).max(1.0);
                    matrix[a.index()][b.index()] = slow_a;
                    matrix[b.index()][a.index()] = slow_b;
                    if policy == DispatchPolicy::InterferenceAware
                        && a == WorkClass::Cache
                        && b == WorkClass::Stream
                    {
                        classify_delay = res
                            .dispatch_log
                            .decisions
                            .iter()
                            .find(|d| {
                                d.classes.iter().any(|c| *c != gpu_sim::TenantClass::Unclassified)
                            })
                            .map(|d| d.cycle)
                            .unwrap_or(0);
                    }
                }
            }
        }
        if classify_delay == 0 {
            classify_delay = 4_096;
        }

        Calibration { sms, solo_ipc, shared_slowdown, aware_slowdown, classify_delay }
    }

    /// A pinned reference table with the measured structure (cache tenants
    /// suffer most from streaming co-residents; interference-aware dispatch
    /// recovers most of that loss) for tests and quick experiments that
    /// cannot afford real engine runs. Scaled linearly in `sms` from an
    /// 8-SM base.
    pub fn reference(sms: usize) -> Calibration {
        let s = sms.max(1) as f64 / 8.0;
        Calibration {
            sms: sms.max(1),
            solo_ipc: [4.8 * s, 3.2 * s, 6.4 * s],
            shared_slowdown: [
                [1.25, 2.10, 1.05], // cache victim: streams hurt it badly
                [1.10, 1.30, 1.05], // stream victim: mildly self-interfering
                [1.02, 1.08, 1.01], // compute victim: barely sensitive
            ],
            aware_slowdown: [
                [1.15, 1.35, 1.03], // containment recovers most cache loss
                [1.08, 1.25, 1.04],
                [1.02, 1.06, 1.01],
            ],
            classify_delay: 4_096,
        }
    }

    /// Solo whole-chip service rate for `class` (instructions per cycle).
    pub fn solo_rate(&self, class: WorkClass) -> f64 {
        self.solo_ipc[class.index()]
    }

    /// Solo service time in cycles for a kernel of `work` instructions of
    /// `class` owning the whole chip — the SLO and STP baseline.
    pub fn solo_cycles(&self, class: WorkClass, work: u64) -> f64 {
        work as f64 / self.solo_rate(class).max(1e-9)
    }

    /// The slowdown `victim` suffers from co-resident `interferer`, in the
    /// pre-classification (`aware == false`) or post-classification
    /// (`aware == true`) regime.
    pub fn slowdown(&self, victim: WorkClass, interferer: WorkClass, aware: bool) -> f64 {
        let m = if aware { &self.aware_slowdown } else { &self.shared_slowdown };
        m[victim.index()][interferer.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_table_is_sane() {
        let c = Calibration::reference(8);
        for class in WorkClass::ALL {
            assert!(c.solo_rate(class) > 0.0);
        }
        for v in WorkClass::ALL {
            for i in WorkClass::ALL {
                assert!(c.slowdown(v, i, false) >= 1.0);
                assert!(c.slowdown(v, i, true) >= 1.0);
                assert!(
                    c.slowdown(v, i, true) <= c.slowdown(v, i, false),
                    "awareness must never make interference worse"
                );
            }
        }
        assert!(
            c.slowdown(WorkClass::Cache, WorkClass::Stream, false)
                > c.slowdown(WorkClass::Compute, WorkClass::Stream, false),
            "cache tenants must be the more sensitive victims"
        );
    }

    #[test]
    fn measured_table_is_deterministic_and_structured() {
        let a = Calibration::measure(4);
        let b = Calibration::measure(4);
        assert_eq!(a, b, "measurement must be deterministic");
        for class in WorkClass::ALL {
            assert!(a.solo_rate(class) > 0.0, "{class:?} solo rate must be positive");
        }
        assert!(a.classify_delay > 0);
    }
}
