//! Cluster placement policies.
//!
//! At every fleet epoch boundary the placement tier assigns the epoch's
//! arrivals to chips, working from a [`ChipView`] snapshot per chip taken
//! at the epoch start (one epoch of telemetry latency — exactly what a
//! real cluster scheduler polling chip dispatchers would see) plus its own
//! running count of what it already planned this epoch.
//!
//! Two policies:
//!
//! * [`PlacementPolicy::BinPack`] — load-oblivious-to-interference
//!   consolidation: fill the busiest chip that still has a free resident
//!   slot, spilling to the least-loaded chip only when everything is full.
//!   Maximises chip-level co-residency, which is precisely what invites
//!   cache interference.
//! * [`PlacementPolicy::InterferenceSpread`] — interference-aware spread:
//!   scores every chip in **solo-equivalent cycles** as
//!   `load + Σ_class penalty[job][class] × backlog[class]`, where `load`
//!   is the chip's declared backlog plus its resident occupancy, and
//!   `backlog[class]` combines the per-class pending cycles with the
//!   residents the chip's live [`gpu_sim::DispatchLog`] has classified
//!   ([`ChipView::classified_cache`] / [`ChipView::classified_stream`]).
//!   The penalty matrix is **derived from the calibration table, not
//!   hard-coded**: `penalty[k][j]` is the excess service fraction a class-k
//!   job suffers from a class-j co-resident *plus* the excess it inflicts
//!   on it, so the policy avoids whatever pairings the engine actually
//!   measures as hostile (cache-vs-stream under the reference table;
//!   stream-on-compute pressure at the engine's Tiny scale) and a job
//!   crosses over to a hostile chip exactly when the load imbalance
//!   outweighs the measured interference cost. Counting backlog matters
//!   under load: today's queue is tomorrow's resident set, and counting
//!   *cycles* rather than jobs keeps segregated chips from draining at
//!   lopsided speeds. The cluster-level analogue of the paper's chip-level
//!   interference-aware dispatch.
//!
//! Placement is a pure function of (policy, views, context, planned
//! counts), runs single-threaded on the fleet coordinator, and is
//! therefore independent of the fleet's worker count — a load-bearing
//! property of the fleet's determinism guarantee.

use serde::{Deserialize, Serialize};

use crate::calib::Calibration;
use crate::chip::{ChipView, MAX_RESIDENT};
use crate::traffic::WorkClass;

/// Calibration-derived constants the spread policy scores with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementContext {
    /// `penalty[k][j]`: relative service-time cost of co-residency between
    /// a class-`k` job and class-`j` work — the excess slowdown `k`
    /// suffers from `j` plus the excess it inflicts on `j`, both from the
    /// calibration's pre-classification (unmanaged sharing) matrix.
    /// Multiplies the per-class backlog in the spread score.
    pub penalty: [[f64; 3]; 3],
    /// Solo-equivalent cycles of a typical job from the offered traffic;
    /// converts resident *counts* (all the dispatch log exposes) into the
    /// same cycle units as the declared backlog.
    pub typical_job_cycles: f64,
}

impl PlacementContext {
    /// Builds the context from a calibration table and the traffic's mean
    /// per-job solo cycles.
    pub fn new(calib: &Calibration, typical_job_cycles: f64) -> PlacementContext {
        let mut penalty = [[0.0f64; 3]; 3];
        for k in WorkClass::ALL {
            for j in WorkClass::ALL {
                let suffered = (calib.slowdown(k, j, false) - 1.0).max(0.0);
                let inflicted = (calib.slowdown(j, k, false) - 1.0).max(0.0);
                penalty[k.index()][j.index()] = suffered + inflicted;
            }
        }
        PlacementContext { penalty, typical_job_cycles: typical_job_cycles.max(1.0) }
    }
}

/// A cluster placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Consolidate: pack the busiest non-full chip first.
    BinPack,
    /// Interference-aware spread informed by live dispatch-log classes.
    #[default]
    InterferenceSpread,
}

impl PlacementPolicy {
    /// All policies, in report order.
    pub const ALL: [PlacementPolicy; 2] =
        [PlacementPolicy::BinPack, PlacementPolicy::InterferenceSpread];

    /// Stable label used in CLI flags, reports, and JSON.
    pub fn label(self) -> &'static str {
        match self {
            PlacementPolicy::BinPack => "bin-pack",
            PlacementPolicy::InterferenceSpread => "interference-spread",
        }
    }

    /// Parses a [`PlacementPolicy::label`].
    pub fn from_label(label: &str) -> Option<PlacementPolicy> {
        PlacementPolicy::ALL.into_iter().find(|p| p.label() == label)
    }

    /// Picks the chip for a job of `class`, given the epoch-start `views`
    /// (already adjusted for jobs planned earlier in this epoch). Returns
    /// the chip index. `views` must be non-empty.
    pub fn place(self, class: WorkClass, views: &[ChipView], ctx: &PlacementContext) -> usize {
        assert!(!views.is_empty(), "placement needs at least one chip");
        match self {
            PlacementPolicy::BinPack => {
                // Busiest chip with a free resident slot; else least loaded.
                views
                    .iter()
                    .filter(|v| v.resident + v.queued < MAX_RESIDENT)
                    .max_by_key(|v| (v.resident + v.queued, std::cmp::Reverse(v.chip)))
                    .or_else(|| views.iter().min_by_key(|v| (v.resident + v.queued, v.chip)))
                    .expect("non-empty views")
                    .chip
            }
            PlacementPolicy::InterferenceSpread => {
                let pen = &ctx.penalty[class.index()];
                views
                    .iter()
                    .map(|v| {
                        let load =
                            v.pending_cycles() as f64 + v.resident as f64 * ctx.typical_job_cycles;
                        // Per-class backlog: declared pending cycles plus the
                        // residents the dispatch log has classified (counts,
                        // converted through the typical job size — remaining
                        // work is not telemetry a cluster scheduler has).
                        let mut interference = 0.0;
                        for j in WorkClass::ALL {
                            let classified = match j {
                                WorkClass::Cache => v.classified_cache,
                                WorkClass::Stream => v.classified_stream,
                                WorkClass::Compute => 0,
                            };
                            let backlog = v.pending_class_cycles[j.index()] as f64
                                + classified as f64 * ctx.typical_job_cycles;
                            interference += pen[j.index()] * backlog;
                        }
                        (load + interference, v.chip)
                    })
                    .min_by(|a, b| {
                        a.0.partial_cmp(&b.0)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.1.cmp(&b.1))
                    })
                    .expect("non-empty views")
                    .1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> PlacementContext {
        PlacementContext::new(&Calibration::reference(8), 10_000.0)
    }

    fn view(chip: usize, load: usize, cache: usize, stream: usize) -> ChipView {
        ChipView {
            chip,
            resident: load.min(MAX_RESIDENT),
            queued: load.saturating_sub(MAX_RESIDENT),
            classified_cache: cache,
            classified_stream: stream,
            pending_class_cycles: [0; 3],
        }
    }

    #[test]
    fn labels_round_trip() {
        for p in PlacementPolicy::ALL {
            assert_eq!(PlacementPolicy::from_label(p.label()), Some(p));
        }
        assert_eq!(PlacementPolicy::from_label("random"), None);
        assert_eq!(PlacementPolicy::default(), PlacementPolicy::InterferenceSpread);
    }

    #[test]
    fn context_penalty_comes_from_the_calibration() {
        let c = ctx();
        let cache = WorkClass::Cache.index();
        let stream = WorkClass::Stream.index();
        assert!(
            c.penalty[cache][stream] > 0.0,
            "reference table must yield a positive cache-stream penalty"
        );
        assert_eq!(
            c.penalty[cache][stream], c.penalty[stream][cache],
            "suffered + inflicted is symmetric by construction"
        );
        let calm = Calibration { shared_slowdown: [[1.0; 3]; 3], ..Calibration::reference(8) };
        assert_eq!(
            PlacementContext::new(&calm, 10_000.0).penalty,
            [[0.0; 3]; 3],
            "no measured interference, no penalty"
        );
    }

    #[test]
    fn bin_pack_consolidates() {
        let views = [view(0, 2, 0, 0), view(1, 0, 0, 0), view(2, 3, 0, 0)];
        assert_eq!(
            PlacementPolicy::BinPack.place(WorkClass::Cache, &views, &ctx()),
            2,
            "bin-pack fills the busiest non-full chip"
        );
        let full = [view(0, 6, 0, 0), view(1, 4, 0, 0), view(2, 5, 0, 0)];
        assert_eq!(
            PlacementPolicy::BinPack.place(WorkClass::Cache, &full, &ctx()),
            1,
            "when everything is full, spill to the least loaded"
        );
    }

    #[test]
    fn spread_avoids_classified_interferers() {
        // Chip 0 is idle but hosts a classified streamer; chip 1 has one
        // more job but no streamers: a cache job must go to chip 1.
        let views = [view(0, 1, 0, 1), view(1, 2, 0, 0)];
        assert_eq!(PlacementPolicy::InterferenceSpread.place(WorkClass::Cache, &views, &ctx()), 1);
        // A compute job is indifferent to the streamer: lighter chip wins.
        assert_eq!(
            PlacementPolicy::InterferenceSpread.place(WorkClass::Compute, &views, &ctx()),
            0
        );
        // And a streamer avoids the chip with classified cache tenants.
        let views = [view(0, 1, 1, 0), view(1, 2, 0, 0)];
        assert_eq!(PlacementPolicy::InterferenceSpread.place(WorkClass::Stream, &views, &ctx()), 1);
    }

    #[test]
    fn spread_counts_queued_hostiles_too() {
        // Chip 0 runs nothing hostile right now, but its backlog is full of
        // streamer cycles; chip 1 is busier but stream-free.
        let mut hostile = view(0, 2, 0, 0);
        hostile.pending_class_cycles[WorkClass::Stream.index()] = 30_000;
        let mut clean = view(1, 4, 0, 0);
        clean.pending_class_cycles[WorkClass::Cache.index()] = 10_000;
        let views = [hostile, clean];
        assert_eq!(PlacementPolicy::InterferenceSpread.place(WorkClass::Cache, &views, &ctx()), 1);
    }

    #[test]
    fn spread_crosses_over_when_imbalance_outweighs_interference() {
        // Chip 0 hosts one classified streamer but is otherwise empty; chip 1
        // is stream-free but buried under backlog. The penalty is finite, so
        // past some imbalance a cache job must prefer the hostile chip.
        let mut buried = view(1, 4, 0, 0);
        buried.pending_class_cycles[WorkClass::Compute.index()] = 1_000_000;
        let views = [view(0, 1, 0, 1), buried];
        assert_eq!(PlacementPolicy::InterferenceSpread.place(WorkClass::Cache, &views, &ctx()), 0);
    }

    #[test]
    fn spread_balances_when_no_conflicts_exist() {
        let views = [view(0, 3, 0, 0), view(1, 1, 0, 0), view(2, 2, 0, 0)];
        assert_eq!(PlacementPolicy::InterferenceSpread.place(WorkClass::Cache, &views, &ctx()), 1);
    }

    #[test]
    fn ties_break_toward_the_lowest_chip_index() {
        let views = [view(0, 1, 0, 0), view(1, 1, 0, 0)];
        assert_eq!(PlacementPolicy::InterferenceSpread.place(WorkClass::Cache, &views, &ctx()), 0);
        assert_eq!(PlacementPolicy::BinPack.place(WorkClass::Cache, &views, &ctx()), 0);
    }
}
