//! Open-loop fleet traffic generation.
//!
//! A [`TrafficSpec`] describes a seeded, open-loop arrival process: kernels
//! arrive at the cluster front door whether or not the fleet is keeping up
//! (no admission feedback), which is what makes queueing delay and SLO
//! violations observable. [`TrafficSpec::generate`] expands the spec into a
//! concrete arrival stream — up to millions of [`Arrival`]s — as a pure
//! function of the spec, so the same `(spec, seed)` always produces the
//! byte-identical stream regardless of host, thread count, or repetition.
//!
//! Three per-arrival distributions compose the process:
//!
//! * **inter-arrival gaps** — exponential with mean
//!   [`TrafficSpec::mean_interarrival`] cycles, drawn by inverse-CDF
//!   (`-mean · ln(1-u)`), i.e. a Poisson arrival process;
//! * **tenant class** — a weighted draw over the three [`WorkClass`]es
//!   (cache-sensitive, streaming, compute), mirroring the benchmark classes
//!   of the chip tier (Sws / Lws / Ci);
//! * **kernel size** — log-uniform over
//!   [`TrafficSpec::work_range`] instructions, so the stream mixes short
//!   interactive-scale kernels with heavy batch kernels across two-plus
//!   orders of magnitude.
//!
//! Each arrival also carries a [`LatencyClass`]: with probability
//! [`TrafficSpec::interactive_fraction`] the kernel is `Interactive` (tight
//! SLO multiple, queue priority, guaranteed floor share on chip), otherwise
//! `Batch`.

use gpu_sim::LatencyClass;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The tenant-class axis of the fleet tier, mirroring the chip tier's
/// benchmark classes: `Cache` ≙ Sws (cache-sensitive victims, e.g. Syrk),
/// `Stream` ≙ Lws (streaming interferers, e.g. Atax), `Compute` ≙ Ci
/// (compute-intensive, e.g. Nn).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WorkClass {
    /// Small working set with reuse: profits from caches, suffers under
    /// streaming co-residents.
    Cache,
    /// Large working set streamed through the caches: the interferer the
    /// spread placement keeps away from `Cache` tenants.
    Stream,
    /// Compute-bound: largely insensitive to cache interference.
    Compute,
}

impl WorkClass {
    /// All classes, in report order.
    pub const ALL: [WorkClass; 3] = [WorkClass::Cache, WorkClass::Stream, WorkClass::Compute];

    /// Stable label used in reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            WorkClass::Cache => "cache",
            WorkClass::Stream => "stream",
            WorkClass::Compute => "compute",
        }
    }

    /// Index into per-class tables (`ALL` order).
    pub fn index(self) -> usize {
        match self {
            WorkClass::Cache => 0,
            WorkClass::Stream => 1,
            WorkClass::Compute => 2,
        }
    }
}

/// One kernel arrival at the cluster front door.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Arrival {
    /// Monotone arrival index (0-based submission order).
    pub id: u64,
    /// Arrival cycle (fleet-global sim time).
    pub cycle: u64,
    /// Tenant class of the submitting job.
    pub class: WorkClass,
    /// Latency class (SLO tier) of the job.
    pub latency: LatencyClass,
    /// Kernel size in instructions.
    pub work: u64,
}

/// A seeded open-loop traffic specification. See the module docs for the
/// distributions; construct with [`TrafficSpec::new`] or a named profile and
/// adjust with the builder methods.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficSpec {
    /// Number of arrivals to generate.
    pub arrivals: usize,
    /// RNG seed; the whole stream is a pure function of the spec.
    pub seed: u64,
    /// Mean inter-arrival gap in cycles (exponential distribution).
    pub mean_interarrival: f64,
    /// Relative class weights in [`WorkClass::ALL`] order (cache, stream,
    /// compute); need not be normalised.
    pub class_weights: [f64; 3],
    /// Probability that an arrival is [`LatencyClass::Interactive`].
    pub interactive_fraction: f64,
    /// Kernel size range in instructions, sampled log-uniformly.
    pub work_range: (u64, u64),
}

impl TrafficSpec {
    /// A balanced profile: equal class weights, 25% interactive, mean gap
    /// 2000 cycles, kernel sizes 5k–500k instructions.
    pub fn new(arrivals: usize, seed: u64) -> Self {
        TrafficSpec {
            arrivals,
            seed,
            mean_interarrival: 2_000.0,
            class_weights: [1.0, 1.0, 1.0],
            interactive_fraction: 0.25,
            work_range: (5_000, 500_000),
        }
    }

    /// Named profile: `balanced`, `cache-heavy`, or `stream-heavy`.
    /// `cache-heavy` is dominated by cache-sensitive and streaming tenants —
    /// the mix where interference-aware spread placement matters most.
    pub fn profile(name: &str, arrivals: usize, seed: u64) -> Option<Self> {
        let base = TrafficSpec::new(arrivals, seed);
        match name {
            "balanced" => Some(base),
            "cache-heavy" => Some(base.with_class_weights([5.0, 3.0, 1.0])),
            "stream-heavy" => Some(base.with_class_weights([1.0, 5.0, 1.0])),
            _ => None,
        }
    }

    /// The names accepted by [`TrafficSpec::profile`].
    pub const PROFILES: [&'static str; 3] = ["balanced", "cache-heavy", "stream-heavy"];

    /// Sets the mean inter-arrival gap (cycles).
    pub fn with_mean_interarrival(mut self, mean: f64) -> Self {
        assert!(mean > 0.0, "mean inter-arrival must be positive");
        self.mean_interarrival = mean;
        self
    }

    /// Sets the relative class weights (cache, stream, compute).
    pub fn with_class_weights(mut self, weights: [f64; 3]) -> Self {
        assert!(weights.iter().all(|w| *w >= 0.0), "class weights must be non-negative");
        assert!(weights.iter().sum::<f64>() > 0.0, "at least one class weight must be positive");
        self.class_weights = weights;
        self
    }

    /// Sets the interactive fraction.
    pub fn with_interactive_fraction(mut self, frac: f64) -> Self {
        assert!((0.0..=1.0).contains(&frac), "interactive fraction must be in [0, 1]");
        self.interactive_fraction = frac;
        self
    }

    /// Sets the kernel-size range in instructions (log-uniform).
    pub fn with_work_range(mut self, lo: u64, hi: u64) -> Self {
        assert!(lo >= 1 && hi >= lo, "work range must satisfy 1 <= lo <= hi");
        self.work_range = (lo, hi);
        self
    }

    /// Expands the spec into its arrival stream. Pure: the output is a
    /// function of `self` only (fixed draw order per arrival: gap, class,
    /// latency, size), so repeated calls are byte-identical.
    pub fn generate(&self) -> Vec<Arrival> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let total_weight: f64 = self.class_weights.iter().sum();
        let (lo, hi) = self.work_range;
        let (ln_lo, ln_hi) = ((lo as f64).ln(), (hi as f64).ln());
        let mut cycle = 0u64;
        let mut out = Vec::with_capacity(self.arrivals);
        for id in 0..self.arrivals as u64 {
            // Exponential gap by inverse CDF; u < 1 so ln(1-u) is finite.
            let u: f64 = rng.gen();
            let gap = -self.mean_interarrival * (1.0 - u).ln();
            cycle = cycle.saturating_add(gap.round() as u64);

            let mut pick = rng.gen::<f64>() * total_weight;
            let mut class = WorkClass::Compute;
            for c in WorkClass::ALL {
                let w = self.class_weights[c.index()];
                if pick < w {
                    class = c;
                    break;
                }
                pick -= w;
            }

            let latency = if rng.gen_bool(self.interactive_fraction) {
                LatencyClass::Interactive
            } else {
                LatencyClass::Batch
            };

            let v: f64 = rng.gen();
            let work = (ln_lo + v * (ln_hi - ln_lo)).exp().round().max(1.0) as u64;

            out.push(Arrival { id, cycle, class, latency, work });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_seed_pure() {
        let spec = TrafficSpec::new(5_000, 42);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a, b, "same spec must produce the identical stream");
        let c = TrafficSpec::new(5_000, 43).generate();
        assert_ne!(a, c, "a different seed must perturb the stream");
    }

    #[test]
    fn interarrival_mean_is_close() {
        let spec = TrafficSpec::new(50_000, 7).with_mean_interarrival(300.0);
        let arrivals = spec.generate();
        let horizon = arrivals.last().unwrap().cycle as f64;
        let mean = horizon / (arrivals.len() - 1) as f64;
        let err = (mean - 300.0).abs() / 300.0;
        assert!(err < 0.05, "empirical mean gap {mean:.1} strays >5% from 300");
    }

    #[test]
    fn class_weights_shape_the_mix() {
        let spec = TrafficSpec::profile("cache-heavy", 30_000, 11).unwrap();
        let arrivals = spec.generate();
        let mut counts = [0usize; 3];
        for a in &arrivals {
            counts[a.class.index()] += 1;
        }
        assert!(
            counts[0] > counts[1] && counts[1] > counts[2],
            "cache-heavy must rank cache > stream > compute, got {counts:?}"
        );
        let cache_frac = counts[0] as f64 / arrivals.len() as f64;
        assert!((cache_frac - 5.0 / 9.0).abs() < 0.03, "cache fraction {cache_frac:.3} off 5/9");
    }

    #[test]
    fn work_sizes_stay_in_range_and_cycles_are_monotone() {
        let spec = TrafficSpec::new(10_000, 3).with_work_range(1_000, 100_000);
        let arrivals = spec.generate();
        let mut prev = 0;
        for a in &arrivals {
            assert!((1_000..=100_001).contains(&a.work), "work {} out of range", a.work);
            assert!(a.cycle >= prev, "arrival cycles must be non-decreasing");
            prev = a.cycle;
        }
    }

    #[test]
    fn interactive_fraction_is_respected() {
        let spec = TrafficSpec::new(20_000, 9).with_interactive_fraction(0.4);
        let n = spec.generate().iter().filter(|a| a.latency == LatencyClass::Interactive).count();
        let frac = n as f64 / 20_000.0;
        assert!((frac - 0.4).abs() < 0.02, "interactive fraction {frac:.3} strays from 0.4");
    }

    #[test]
    fn unknown_profile_is_rejected() {
        assert!(TrafficSpec::profile("bursty", 10, 0).is_none());
        for name in TrafficSpec::PROFILES {
            assert!(TrafficSpec::profile(name, 10, 0).is_some());
        }
    }
}
