//! The fleet driver: [`FleetRequest`] → [`Fleet::execute`] → [`FleetResult`].
//!
//! This is the cluster-tier mirror of the chip tier's
//! [`gpu_sim::SimRequest`] / [`gpu_sim::Simulator::execute`] /
//! [`gpu_sim::SimResult`] triple: describe the whole run up front with a
//! builder (chip count and size, placement policy, traffic spec, SLO
//! policy, worker count, observability level), execute it in one call, get
//! a schema-versioned, deterministically serialisable result back.
//!
//! ## Execution model
//!
//! Time advances in fixed *placement epochs* (default
//! [`FleetRequest::DEFAULT_EPOCH_CYCLES`] cycles). Each epoch the
//! coordinator:
//!
//! 1. snapshots every chip's [`ChipView`] (telemetry read from the chip's
//!    live dispatch log — one epoch of staleness, like a real cluster
//!    scheduler polling its chips);
//! 2. places the epoch's arrivals sequentially with the configured
//!    [`PlacementPolicy`], updating planned-load counts as it goes;
//! 3. advances all *due* chips to the epoch end — in parallel across
//!    `workers` threads (`std::thread::scope` + a barrier per phase).
//!    Chips whose [`ChipModel::next_event_time`] sleep hint lies beyond
//!    the epoch end are skipped outright (no lock, no advance, no
//!    re-polled view), so mostly-idle chips cost ~nothing per epoch; the
//!    elided chip-epochs are surfaced as the engine-namespaced
//!    `engine/skipped-chip-epochs` metric.
//!
//! Chips never interact inside an epoch, placement is always sequential
//! on the coordinator, and the sleep-skip predicate is a pure function of
//! chip state, so the result is **bit-identical for any worker count** —
//! `workers` is a wall-clock knob, not a model knob, and deliberately
//! does not appear in [`FleetResult`].
//!
//! ## Reporting
//!
//! [`FleetResult`] carries fleet STP (accumulated solo-equivalent work
//! over makespan — the cluster analogue of the paper's STP metric),
//! per-(tenant class × latency class) p50/p99 turnaround and SLO-violation
//! counts (violation = turnaround exceeding the class's multiple of the
//! job's solo service time), and per-chip utilization, all built from
//! `Vec`s and fixed orders so the JSON is byte-stable.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sim_obs::{chip_metric, MetricsRegistry, ObsLevel, ObsReport};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;

use crate::calib::Calibration;
use crate::chip::{ChipModel, ChipView, CompletedJob, MAX_RESIDENT};
use crate::placement::{PlacementContext, PlacementPolicy};
use crate::traffic::{Arrival, TrafficSpec, WorkClass};
use gpu_sim::LatencyClass;

/// Version of the [`FleetResult`] JSON schema.
///
/// * **v1** — initial fleet surface: `fleet_stp`, per-(class × latency)
///   turnaround percentiles and SLO counts, per-chip utilization.
pub const FLEET_SCHEMA_VERSION: u32 = 1;

/// SLO policy: a completed job violates its SLO when its turnaround
/// (finish − arrival) exceeds `mult × solo service time`, with the
/// multiple chosen by latency class. Interactive jobs promise a tight
/// multiple; batch jobs a loose one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloPolicy {
    /// Turnaround multiple allowed for interactive jobs.
    pub interactive_mult: f64,
    /// Turnaround multiple allowed for batch jobs.
    pub batch_mult: f64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy { interactive_mult: 4.0, batch_mult: 20.0 }
    }
}

impl SloPolicy {
    /// The multiple for `latency`.
    pub fn mult(&self, latency: LatencyClass) -> f64 {
        match latency {
            LatencyClass::Interactive => self.interactive_mult,
            LatencyClass::Batch => self.batch_mult,
        }
    }
}

/// Builder describing one fleet run, mirroring [`gpu_sim::SimRequest`].
#[derive(Debug, Clone)]
pub struct FleetRequest {
    chips: usize,
    sms_per_chip: usize,
    placement: PlacementPolicy,
    traffic: TrafficSpec,
    workers: usize,
    slo: SloPolicy,
    obs: ObsLevel,
    calibration: Option<Calibration>,
    epoch_cycles: u64,
}

impl FleetRequest {
    /// Default placement-epoch length in cycles.
    pub const DEFAULT_EPOCH_CYCLES: u64 = 16_384;

    /// A fleet run over `traffic`: 4 chips of 8 SMs, interference-aware
    /// spread placement, one worker, default SLO policy, observability off.
    pub fn new(traffic: TrafficSpec) -> Self {
        FleetRequest {
            chips: 4,
            sms_per_chip: 8,
            placement: PlacementPolicy::default(),
            traffic,
            workers: 1,
            slo: SloPolicy::default(),
            obs: ObsLevel::Off,
            calibration: None,
            epoch_cycles: Self::DEFAULT_EPOCH_CYCLES,
        }
    }

    /// Sets the number of chips in the fleet.
    pub fn chips(mut self, chips: usize) -> Self {
        assert!(chips >= 1, "a fleet needs at least one chip");
        self.chips = chips;
        self
    }

    /// Sets the SM count of every chip.
    pub fn sms_per_chip(mut self, sms: usize) -> Self {
        assert!(sms >= 1, "chips need at least one SM");
        self.sms_per_chip = sms;
        self
    }

    /// Sets the placement policy.
    pub fn placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Sets the worker-thread count for the chip-advancement phases. Pure
    /// wall-clock knob: any value produces the bit-identical result.
    pub fn workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "at least one worker");
        self.workers = workers;
        self
    }

    /// Sets the SLO policy.
    pub fn slo(mut self, slo: SloPolicy) -> Self {
        self.slo = slo;
        self
    }

    /// Sets the observability level for [`Fleet::execute_observed`].
    pub fn obs(mut self, obs: ObsLevel) -> Self {
        self.obs = obs;
        self
    }

    /// Overrides the chip calibration table. Without an override,
    /// [`Fleet::execute`] measures one against the real chip engine at
    /// [`FleetRequest::sms_per_chip`] SMs ([`Calibration::measure`]).
    pub fn calibration(mut self, calib: Calibration) -> Self {
        self.calibration = Some(calib);
        self
    }

    /// Sets the placement-epoch length in cycles (telemetry staleness and
    /// placement granularity).
    pub fn epoch_cycles(mut self, cycles: u64) -> Self {
        assert!(cycles >= 1, "epochs need at least one cycle");
        self.epoch_cycles = cycles;
        self
    }
}

/// Per-(tenant class × latency class) turnaround and SLO report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassReport {
    /// Tenant class label ([`WorkClass::label`]).
    pub class: String,
    /// Latency class label ([`LatencyClass::label`]).
    pub latency: String,
    /// Completed jobs in this bucket.
    pub jobs: u64,
    /// Mean turnaround in cycles.
    pub mean_turnaround: f64,
    /// Median turnaround in cycles.
    pub p50_turnaround: u64,
    /// 99th-percentile turnaround in cycles.
    pub p99_turnaround: u64,
    /// Mean turnaround over solo service time (the per-job slowdown the
    /// paper's ANTT metric averages).
    pub mean_slowdown: f64,
    /// The SLO multiple this bucket was held to.
    pub slo_target_mult: f64,
    /// Jobs whose turnaround exceeded `slo_target_mult ×` solo time.
    pub slo_violations: u64,
}

/// Per-chip utilization report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipReport {
    /// Chip index.
    pub chip: usize,
    /// Jobs this chip completed.
    pub completed: u64,
    /// Cycles the chip had at least one resident job.
    pub busy_cycles: u64,
    /// Resident-slot occupancy over the fleet makespan: slot-cycles /
    /// (`MAX_RESIDENT` × makespan), in `[0, 1]`.
    pub utilization: f64,
    /// Cache-sensitive classification verdicts the chip's dispatcher
    /// issued.
    pub classified_cache: u64,
    /// Streaming classification verdicts.
    pub classified_stream: u64,
    /// Peak admission-queue depth.
    pub peak_queue: usize,
}

/// The schema-versioned result of one fleet run. Serialises to
/// byte-identical JSON for identical requests regardless of worker count;
/// no wall-clock data lives here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetResult {
    /// [`FLEET_SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Placement-policy label.
    pub placement: String,
    /// Number of chips.
    pub chips: usize,
    /// SMs per chip.
    pub sms_per_chip: usize,
    /// Traffic seed.
    pub seed: u64,
    /// Arrivals generated (all of them complete before the run ends).
    pub arrivals: u64,
    /// Cycle the last job finished at.
    pub makespan: u64,
    /// Fleet system throughput: Σ per-job solo service time over makespan
    /// — solo-chip-equivalents sustained; the fleet analogue of the
    /// paper's STP, upper-bounded by the chip count.
    pub fleet_stp: f64,
    /// Per-(tenant class × latency class) turnaround/SLO reports, in
    /// ([`WorkClass::ALL`] × [batch, interactive]) order, present only for
    /// non-empty buckets.
    pub per_class: Vec<ClassReport>,
    /// Per-chip reports, in chip order.
    pub per_chip: Vec<ChipReport>,
}

impl FleetResult {
    /// Total SLO violations across all buckets.
    pub fn total_slo_violations(&self) -> u64 {
        self.per_class.iter().map(|c| c.slo_violations).sum()
    }
}

/// The cluster-tier execution engine, mirroring [`gpu_sim::Simulator`].
#[derive(Debug, Default)]
pub struct Fleet;

impl Fleet {
    /// Creates a fleet engine.
    pub fn new() -> Self {
        Fleet
    }

    /// Executes `req` and returns the fleet result. See the module docs
    /// for the execution model and the determinism guarantee.
    pub fn execute(&self, req: FleetRequest) -> FleetResult {
        self.execute_observed(req).0
    }

    /// [`Fleet::execute`] plus the run's [`ObsReport`] (fleet-level
    /// metrics with per-chip [`chip_metric`] labels at
    /// [`ObsLevel::Metrics`] and above). The result is byte-identical to
    /// [`Fleet::execute`] — collection is passive.
    pub fn execute_observed(&self, req: FleetRequest) -> (FleetResult, ObsReport) {
        let arrivals = req.traffic.generate();
        let calib =
            req.calibration.clone().unwrap_or_else(|| Calibration::measure(req.sms_per_chip));
        let chips: Vec<Mutex<ChipModel>> =
            (0..req.chips).map(|c| Mutex::new(ChipModel::new(c, calib.clone()))).collect();

        // Typical per-job solo cycles of this traffic, for converting the
        // dispatch log's resident counts into backlog-cycle units.
        let typical = arrivals.iter().map(|a| calib.solo_cycles(a.class, a.work)).sum::<f64>()
            / (arrivals.len().max(1) as f64);
        let ctx = PlacementContext::new(&calib, typical);

        // Per-chip sleep hints ([`ChipModel::next_event_time`]): a chip
        // whose hint lies beyond the advance target is skipped entirely —
        // no lock, no advance, no re-polled view — so mostly-idle chips
        // cost nothing per epoch. Hints are lowered when placement pushes
        // an arrival and refreshed by whichever worker advances the chip.
        let hints: Vec<AtomicU64> = (0..req.chips).map(|_| AtomicU64::new(u64::MAX)).collect();
        let workers = req.workers.min(req.chips).max(1);
        let skipped_chip_epochs = if workers == 1 {
            run_epochs(
                &arrivals,
                &chips,
                req.placement,
                &ctx,
                &calib,
                req.epoch_cycles,
                &hints,
                &mut |t| {
                    for (c, chip) in chips.iter().enumerate() {
                        if hints[c].load(Ordering::SeqCst) > t {
                            continue;
                        }
                        let mut chip = chip.lock();
                        chip.advance_to(t);
                        hints[c].store(chip.next_event_time(), Ordering::SeqCst);
                    }
                },
            )
        } else {
            let barrier = Barrier::new(workers + 1);
            let target = AtomicU64::new(0);
            let done = AtomicBool::new(false);
            std::thread::scope(|s| {
                for w in 0..workers {
                    let (chips, barrier, target, done, hints) =
                        (&chips, &barrier, &target, &done, &hints);
                    s.spawn(move || loop {
                        barrier.wait();
                        if done.load(Ordering::SeqCst) {
                            break;
                        }
                        let t = target.load(Ordering::SeqCst);
                        for c in (w..chips.len()).step_by(workers) {
                            if hints[c].load(Ordering::SeqCst) > t {
                                continue;
                            }
                            let mut chip = chips[c].lock();
                            chip.advance_to(t);
                            hints[c].store(chip.next_event_time(), Ordering::SeqCst);
                        }
                        barrier.wait();
                    });
                }
                let skipped = run_epochs(
                    &arrivals,
                    &chips,
                    req.placement,
                    &ctx,
                    &calib,
                    req.epoch_cycles,
                    &hints,
                    &mut |t| {
                        target.store(t, Ordering::SeqCst);
                        barrier.wait();
                        barrier.wait();
                    },
                );
                done.store(true, Ordering::SeqCst);
                barrier.wait();
                skipped
            })
        };

        // Chip order is fixed and completion aggregation sorts explicitly,
        // so neither depends on worker scheduling.
        let mut completed: Vec<CompletedJob> = Vec::with_capacity(arrivals.len());
        let mut accounting = Vec::with_capacity(req.chips);
        let mut makespan = 0u64;
        for chip in &chips {
            let mut chip = chip.lock();
            accounting.push(chip.accounting());
            let jobs = chip.take_completed();
            makespan = makespan.max(jobs.iter().map(|j| j.finish).max().unwrap_or(0));
            completed.extend(jobs);
        }
        debug_assert_eq!(completed.len(), arrivals.len(), "every arrival must complete");
        let chip_reports = accounting
            .iter()
            .enumerate()
            .map(|(c, acct)| {
                let denom = (MAX_RESIDENT as u64 * makespan).max(1) as f64;
                ChipReport {
                    chip: c,
                    completed: acct.completed,
                    busy_cycles: acct.busy_cycles,
                    utilization: acct.slot_cycles as f64 / denom,
                    classified_cache: acct.classified[WorkClass::Cache.index()],
                    classified_stream: acct.classified[WorkClass::Stream.index()],
                    peak_queue: acct.peak_queue,
                }
            })
            .collect();

        let per_class = class_reports(&completed, &calib, &req.slo);
        let total_solo: f64 = completed.iter().map(|j| calib.solo_cycles(j.class, j.work)).sum();
        let fleet_stp = if makespan > 0 { total_solo / makespan as f64 } else { 0.0 };

        let result = FleetResult {
            schema_version: FLEET_SCHEMA_VERSION,
            placement: req.placement.label().to_string(),
            chips: req.chips,
            sms_per_chip: req.sms_per_chip,
            seed: req.traffic.seed,
            arrivals: arrivals.len() as u64,
            makespan,
            fleet_stp,
            per_class,
            per_chip: chip_reports,
        };

        let mut report = ObsReport::new(req.obs);
        if req.obs.metrics_enabled() {
            report.metrics = fleet_metrics(&result, &completed);
            // Engine-namespaced (excluded from the canonical JSON export):
            // how many chip-epochs the sleep hints elided. Deterministic —
            // the skip predicate is a pure function of chip state — but an
            // execution-cost statistic, not a model output.
            report.metrics.counter_add("engine/skipped-chip-epochs", None, skipped_chip_epochs);
        }
        (result, report)
    }
}

/// The coordinator epoch loop: snapshot views, place the epoch's arrivals
/// sequentially, then hand the epoch-advance target to `advance` (which
/// runs the chips — inline or across worker threads). `advance(u64::MAX)`
/// at the end drains every chip to completion.
/// Returns the number of skipped chip-epochs: chips left asleep (not
/// locked, advanced, or re-polled) because their sleep hint lay beyond the
/// epoch end.
#[allow(clippy::too_many_arguments)] // coordinator wiring: every param is a distinct shared resource
fn run_epochs(
    arrivals: &[Arrival],
    chips: &[Mutex<ChipModel>],
    placement: PlacementPolicy,
    ctx: &PlacementContext,
    calib: &Calibration,
    epoch_cycles: u64,
    hints: &[AtomicU64],
    advance: &mut dyn FnMut(u64),
) -> u64 {
    // Views are cached across epochs and refreshed only for chips that
    // actually advanced: a sleeping chip's state — and therefore its
    // placement-visible view — cannot change, and any chip placement
    // pushes to becomes due (its hint drops to the arrival cycle, inside
    // this epoch), so its view is refreshed before the next placement.
    let mut views: Vec<ChipView> = chips.iter().map(|c| c.lock().view()).collect();
    let mut skipped = 0u64;
    let mut idx = 0;
    let mut t = 0u64;
    while idx < arrivals.len() {
        // Fast-forward over arrival gaps: the epoch grid restarts at the
        // next arrival when the current epoch would be empty.
        t = t.max(arrivals[idx].cycle.saturating_sub(epoch_cycles - 1));
        let epoch_end = t.saturating_add(epoch_cycles);
        while idx < arrivals.len() && arrivals[idx].cycle < epoch_end {
            let a = &arrivals[idx];
            let pick = placement.place(a.class, &views, ctx);
            let solo = calib.solo_cycles(a.class, a.work).round() as u64;
            views[pick].queued += 1;
            views[pick].pending_class_cycles[a.class.index()] += solo;
            chips[pick].lock().push(a);
            hints[pick].fetch_min(a.cycle, Ordering::SeqCst);
            idx += 1;
        }
        let due: Vec<usize> =
            (0..chips.len()).filter(|&c| hints[c].load(Ordering::SeqCst) <= epoch_end).collect();
        skipped += (chips.len() - due.len()) as u64;
        advance(epoch_end);
        for &c in &due {
            views[c] = chips[c].lock().view();
        }
        t = epoch_end;
    }
    advance(u64::MAX);
    skipped
}

/// Builds the per-(class × latency) reports from the completed jobs.
fn class_reports(
    completed: &[CompletedJob],
    calib: &Calibration,
    slo: &SloPolicy,
) -> Vec<ClassReport> {
    let mut reports = Vec::new();
    for class in WorkClass::ALL {
        for latency in [LatencyClass::Batch, LatencyClass::Interactive] {
            let mut turnarounds: Vec<u64> = Vec::new();
            let mut slowdowns = 0.0f64;
            let mut violations = 0u64;
            let mult = slo.mult(latency);
            for j in completed {
                if j.class != class || j.latency != latency {
                    continue;
                }
                let turnaround = j.finish - j.arrival;
                let solo = calib.solo_cycles(class, j.work).max(1.0);
                slowdowns += turnaround as f64 / solo;
                if turnaround as f64 > mult * solo {
                    violations += 1;
                }
                turnarounds.push(turnaround);
            }
            if turnarounds.is_empty() {
                continue;
            }
            turnarounds.sort_unstable();
            let n = turnarounds.len();
            let sum: u64 = turnarounds.iter().sum();
            reports.push(ClassReport {
                class: class.label().to_string(),
                latency: latency.label().to_string(),
                jobs: n as u64,
                mean_turnaround: sum as f64 / n as f64,
                p50_turnaround: turnarounds[n / 2],
                p99_turnaround: turnarounds[(n * 99) / 100],
                mean_slowdown: slowdowns / n as f64,
                slo_target_mult: mult,
                slo_violations: violations,
            });
        }
    }
    reports
}

/// Fleet-level metrics: fleet counters plus per-chip series namespaced
/// with [`chip_metric`]. Per-class turnaround histograms use the class
/// index as the tenant label.
fn fleet_metrics(result: &FleetResult, completed: &[CompletedJob]) -> MetricsRegistry {
    let mut m = MetricsRegistry::new();
    m.counter_add("fleet/arrivals", None, result.arrivals);
    m.counter_add("fleet/slo_violations", None, result.total_slo_violations());
    for c in &result.per_chip {
        m.counter_add(&chip_metric(c.chip, "completed"), None, c.completed);
        m.counter_add(&chip_metric(c.chip, "busy_cycles"), None, c.busy_cycles);
        m.counter_add(&chip_metric(c.chip, "classified_cache"), None, c.classified_cache);
        m.counter_add(&chip_metric(c.chip, "classified_stream"), None, c.classified_stream);
    }
    for j in completed {
        m.histogram_record("fleet/turnaround", Some(j.class.index() as u32), j.finish - j.arrival);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_request(arrivals: usize, seed: u64) -> FleetRequest {
        FleetRequest::new(
            TrafficSpec::new(arrivals, seed)
                .with_mean_interarrival(400.0)
                .with_work_range(2_000, 100_000),
        )
        .chips(3)
        .calibration(Calibration::reference(8))
    }

    #[test]
    fn all_arrivals_complete_and_report_is_consistent() {
        let res = Fleet::new().execute(quick_request(2_000, 1));
        assert_eq!(res.schema_version, FLEET_SCHEMA_VERSION);
        assert_eq!(res.arrivals, 2_000);
        let per_class_jobs: u64 = res.per_class.iter().map(|c| c.jobs).sum();
        let per_chip_jobs: u64 = res.per_chip.iter().map(|c| c.completed).sum();
        assert_eq!(per_class_jobs, 2_000);
        assert_eq!(per_chip_jobs, 2_000);
        assert!(res.makespan > 0);
        assert!(res.fleet_stp > 0.0 && res.fleet_stp <= res.chips as f64 + 1e-9);
        for c in &res.per_class {
            assert!(c.p50_turnaround <= c.p99_turnaround);
            assert!(c.mean_slowdown >= 1.0 - 1e-9);
            assert!(c.slo_violations <= c.jobs);
        }
        for c in &res.per_chip {
            assert!((0.0..=1.0).contains(&c.utilization));
        }
    }

    #[test]
    fn worker_count_does_not_change_the_result() {
        let base = Fleet::new().execute(quick_request(1_500, 9));
        for workers in [2, 3, 8] {
            let res = Fleet::new().execute(quick_request(1_500, 9).workers(workers));
            assert_eq!(base, res, "{workers} workers must be bit-identical to 1");
        }
    }

    #[test]
    fn repeated_runs_are_byte_identical() {
        let a = serde_json::to_string(&Fleet::new().execute(quick_request(800, 4))).unwrap();
        let b = serde_json::to_string(&Fleet::new().execute(quick_request(800, 4))).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn interactive_jobs_see_lower_latency_than_batch() {
        let req = FleetRequest::new(
            TrafficSpec::new(4_000, 2)
                .with_mean_interarrival(150.0)
                .with_work_range(2_000, 50_000)
                .with_interactive_fraction(0.3),
        )
        .chips(2)
        .calibration(Calibration::reference(8));
        let res = Fleet::new().execute(req);
        let mean = |lat: &str| {
            let rows: Vec<_> = res.per_class.iter().filter(|c| c.latency == lat).collect();
            rows.iter().map(|c| c.mean_slowdown * c.jobs as f64).sum::<f64>()
                / rows.iter().map(|c| c.jobs as f64).sum::<f64>()
        };
        assert!(
            mean("interactive") < mean("batch"),
            "queue priority + double share must favour interactive jobs"
        );
    }

    #[test]
    fn spread_beats_bin_pack_on_a_cache_heavy_mix() {
        let traffic = TrafficSpec::profile("cache-heavy", 3_000, 0)
            .unwrap()
            .with_mean_interarrival(250.0)
            .with_work_range(5_000, 100_000);
        let run = |placement| {
            Fleet::new().execute(
                FleetRequest::new(traffic.clone())
                    .chips(4)
                    .placement(placement)
                    .calibration(Calibration::reference(8)),
            )
        };
        let spread = run(PlacementPolicy::InterferenceSpread);
        let pack = run(PlacementPolicy::BinPack);
        assert!(
            spread.fleet_stp > pack.fleet_stp,
            "spread ({:.3}) must beat bin-pack ({:.3}) on a cache-heavy mix",
            spread.fleet_stp,
            pack.fleet_stp
        );
    }

    #[test]
    fn observed_run_collects_fleet_metrics_passively() {
        let (plain, off_report) = Fleet::new().execute_observed(quick_request(500, 6));
        assert!(off_report.metrics.is_empty(), "obs off collects nothing");
        let (observed, report) =
            Fleet::new().execute_observed(quick_request(500, 6).obs(ObsLevel::Metrics));
        assert_eq!(plain, observed, "observation must be passive");
        assert_eq!(report.metrics.counter("fleet/arrivals", None), 500);
        let per_chip: u64 =
            (0..3).map(|c| report.metrics.counter(&chip_metric(c, "completed"), None)).sum();
        assert_eq!(per_chip, 500);
    }

    #[test]
    fn sparse_traffic_sleeps_idle_chips_without_changing_results() {
        // Sparse arrivals on a wide fleet leave most chips idle most
        // epochs: the sleep hints must elide chip-epochs, identically for
        // every worker count, without perturbing the simulation.
        let req = || {
            FleetRequest::new(
                TrafficSpec::new(200, 11)
                    .with_mean_interarrival(5_000.0)
                    .with_work_range(2_000, 20_000),
            )
            .chips(8)
            .calibration(Calibration::reference(8))
            .obs(ObsLevel::Metrics)
        };
        let (serial, serial_obs) = Fleet::new().execute_observed(req());
        let (parallel, parallel_obs) = Fleet::new().execute_observed(req().workers(4));
        assert_eq!(serial, parallel, "sleep skipping must stay worker-count invariant");
        let skipped = serial_obs.metrics.counter("engine/skipped-chip-epochs", None);
        assert!(skipped > 0, "sparse traffic on 8 chips must skip some chip-epochs");
        assert_eq!(
            skipped,
            parallel_obs.metrics.counter("engine/skipped-chip-epochs", None),
            "the skip count is a pure function of chip state, not worker count"
        );
        assert_eq!(serial.arrivals, 200);
    }

    #[test]
    fn result_json_round_trips() {
        let res = Fleet::new().execute(quick_request(300, 12));
        let json = serde_json::to_string(&res).unwrap();
        assert!(json.contains("\"schema_version\":1"));
        let back: FleetResult = serde_json::from_str(&json).unwrap();
        assert_eq!(res, back);
    }
}
