//! # gpu-fleet — the fleet traffic tier of the CIAO reproduction
//!
//! The chip tier ([`gpu_sim`]) answers "what happens on one GPU when these
//! tenants co-run?" at cycle granularity. This crate answers the cluster
//! question above it: "what happens to open-loop datacenter traffic —
//! millions of kernel arrivals — spread across a fleet of such chips under
//! a given placement policy and SLO regime?"
//!
//! Cycle-level simulation cannot cover a million arrivals, so the fleet
//! tier is a **calibrated two-level model**:
//!
//! 1. [`calib`] measures the real chip engine (solo IPC per tenant class,
//!    pairwise interference slowdowns under unmanaged vs
//!    interference-aware dispatch, classification latency) with a handful
//!    of genuine [`gpu_sim::Simulator`] runs;
//! 2. [`chip`] models each fleet chip as a discrete-event rate server
//!    driven by those constants, publishing its state through a live
//!    [`gpu_sim::DispatchLog`] — the same telemetry type the real chip
//!    emits;
//! 3. [`placement`] assigns arrivals to chips, either consolidating
//!    (bin-pack) or reading the dispatch-log classifications to keep
//!    streamers away from cache-sensitive tenants (interference-aware
//!    spread — the cluster analogue of the paper's chip-level policy);
//! 4. [`traffic`] generates the seeded open-loop arrival process
//!    (exponential inter-arrivals, weighted tenant classes, log-uniform
//!    kernel sizes, interactive/batch latency classes);
//! 5. [`fleet`] drives the whole thing behind a request/result API that
//!    mirrors the chip tier's [`gpu_sim::SimRequest`] →
//!    [`gpu_sim::SimResult`] surface: build a [`FleetRequest`], call
//!    [`Fleet::execute`], get a schema-versioned [`FleetResult`] with
//!    fleet STP, per-class turnaround percentiles, SLO-violation counts,
//!    and per-chip utilization.
//!
//! Chips advance in parallel (`std::thread::scope`); placement stays
//! sequential on the coordinator, so results are **bit-identical for any
//! worker count** and for repeated runs of the same seed.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod calib;
pub mod chip;
pub mod fleet;
pub mod placement;
pub mod traffic;

pub use calib::{class_benchmark, Calibration};
pub use chip::{ChipAccounting, ChipModel, ChipView, CompletedJob, MAX_RESIDENT};
pub use fleet::{
    ChipReport, ClassReport, Fleet, FleetRequest, FleetResult, SloPolicy, FLEET_SCHEMA_VERSION,
};
pub use placement::{PlacementContext, PlacementPolicy};
pub use traffic::{Arrival, TrafficSpec, WorkClass};

/// Re-export of the latency (SLO) class shared with the chip tier.
pub use gpu_sim::LatencyClass;
