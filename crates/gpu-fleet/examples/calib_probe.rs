//! Prints the fleet calibration table as JSON — the constants the fleet
//! tier's rate servers and the spread policy's penalty matrix are built
//! from.
//!
//! ```text
//! cargo run --release -p gpu-fleet --example calib_probe            # measured, 8 SMs
//! cargo run --release -p gpu-fleet --example calib_probe -- 15     # measured, 15 SMs
//! cargo run --release -p gpu-fleet --example calib_probe -- 8 ref  # pinned reference table
//! ```
//!
//! Useful for seeing what the engine *actually* measures at its current
//! scale before reasoning about placement behaviour: at Tiny scale the
//! dominant unmanaged interference is stream-on-compute, not the
//! cache-vs-stream pairing the reference table emphasises.

fn main() {
    let mut args = std::env::args().skip(1);
    let sms: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let reference = args.next().is_some_and(|a| a == "ref");
    let calib = if reference {
        gpu_fleet::Calibration::reference(sms)
    } else {
        gpu_fleet::Calibration::measure(sms)
    };
    println!("{}", serde_json::to_string_pretty(&calib).expect("calibration serialises"));
}
