//! Figure 12: IPC under different L1D cache and DRAM configurations.
//!
//! * **12a** — GTO on the baseline machine, GTO with a 48 KB L1D (`GTO-cap`),
//!   GTO with an 8-way L1D (`GTO-8way`), and CIAO-C on the baseline,
//!   normalised to baseline GTO;
//! * **12b** — statPCAL and CIAO-C with doubled DRAM bandwidth, normalised to
//!   their own baseline-bandwidth runs.

use crate::report::{capped_marker, capped_summary, geometric_mean, Table};
use crate::runner::Runner;
use crate::schedulers::SchedulerKind;
use ciao_workloads::Benchmark;
use gpu_sim::GpuConfig;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Combined Fig. 12 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig12Result {
    /// Fig. 12a: benchmark → (configuration label → IPC normalised to GTO).
    pub cache_configs: BTreeMap<String, BTreeMap<String, f64>>,
    /// Fig. 12b: benchmark → (scheduler label → IPC with 2× DRAM bandwidth,
    /// normalised to the same scheduler at 1× bandwidth).
    pub bandwidth: BTreeMap<String, BTreeMap<String, f64>>,
    /// Geometric means over the benchmarks for each Fig. 12a configuration.
    pub cache_config_geomeans: BTreeMap<String, f64>,
    /// Geometric means for the Fig. 12b series.
    pub bandwidth_geomeans: BTreeMap<String, f64>,
    /// Benchmarks with at least one capped run (their normalised IPCs are
    /// built from lower-bound measurements).
    pub capped_benchmarks: Vec<String>,
    /// Capped runs out of the total executed.
    pub capped_runs: usize,
    /// Total runs executed for the figure.
    pub total_runs: usize,
}

/// The configuration labels of Fig. 12a.
pub const CACHE_CONFIG_LABELS: [&str; 4] = ["GTO", "GTO-cap", "GTO-8way", "CIAO-C"];

/// Runs the Fig. 12 experiment over `benchmarks` (the paper uses the LWS and
/// SWS classes).
pub fn run(runner: &Runner, benchmarks: &[Benchmark]) -> Fig12Result {
    let mut cache_configs: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
    let mut bandwidth: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();

    let mut capped_benchmarks: Vec<String> = Vec::new();
    let mut capped_runs = 0usize;
    let mut total_runs = 0usize;
    for &b in benchmarks {
        let mut any_capped = false;
        let mut record = |r: crate::runner::RunRecord| {
            total_runs += 1;
            if r.capped {
                capped_runs += 1;
                any_capped = true;
            }
            r.ipc
        };

        // --- Fig. 12a ---
        let gto_base = record(runner.record(b, SchedulerKind::Gto)).max(1e-12);
        let gto_cap = record(
            runner.clone().with_config(GpuConfig::gtx480_cap()).record(b, SchedulerKind::Gto),
        );
        let gto_8way = record(
            runner.clone().with_config(GpuConfig::gtx480_8way()).record(b, SchedulerKind::Gto),
        );
        let ciao_c = record(runner.record(b, SchedulerKind::CiaoC));
        let mut per_config = BTreeMap::new();
        per_config.insert("GTO".to_string(), 1.0);
        per_config.insert("GTO-cap".to_string(), gto_cap / gto_base);
        per_config.insert("GTO-8way".to_string(), gto_8way / gto_base);
        per_config.insert("CIAO-C".to_string(), ciao_c / gto_base);
        cache_configs.insert(b.name().to_string(), per_config);

        // --- Fig. 12b ---
        let mut per_sched = BTreeMap::new();
        for s in [SchedulerKind::StatPcal, SchedulerKind::CiaoC] {
            let base = record(runner.record(b, s)).max(1e-12);
            let doubled =
                record(runner.clone().with_config(GpuConfig::gtx480_2x_bandwidth()).record(b, s));
            per_sched.insert(format!("{}-2X", s.label()), doubled / base);
        }
        bandwidth.insert(b.name().to_string(), per_sched);
        if any_capped {
            capped_benchmarks.push(b.name().to_string());
        }
    }

    let geomean_of = |map: &BTreeMap<String, BTreeMap<String, f64>>, key: &str| {
        geometric_mean(&map.values().filter_map(|m| m.get(key).copied()).collect::<Vec<_>>())
    };
    let cache_config_geomeans = CACHE_CONFIG_LABELS
        .iter()
        .map(|&l| (l.to_string(), geomean_of(&cache_configs, l)))
        .collect();
    let bandwidth_geomeans = ["statPCAL-2X", "CIAO-C-2X"]
        .iter()
        .map(|&l| (l.to_string(), geomean_of(&bandwidth, l)))
        .collect();

    Fig12Result {
        cache_configs,
        bandwidth,
        cache_config_geomeans,
        bandwidth_geomeans,
        capped_benchmarks,
        capped_runs,
        total_runs,
    }
}

/// Renders both panels.
pub fn render(result: &Fig12Result) -> String {
    let mut out = String::new();
    let mut a = Table::new("Fig. 12a: IPC vs L1D configuration (normalised to GTO)", &[]);
    let mut header = vec!["Benchmark".to_string()];
    header.extend(CACHE_CONFIG_LABELS.iter().map(|s| s.to_string()));
    a.row(header);
    for (bench, per_config) in &result.cache_configs {
        let capped = result.capped_benchmarks.contains(bench);
        let mut row = vec![format!("{bench}{}", capped_marker(capped))];
        for label in CACHE_CONFIG_LABELS {
            row.push(format!("{:.2}", per_config.get(label).copied().unwrap_or(0.0)));
        }
        a.row(row);
    }
    let mut row = vec!["geomean".to_string()];
    for label in CACHE_CONFIG_LABELS {
        row.push(format!("{:.2}", result.cache_config_geomeans.get(label).copied().unwrap_or(0.0)));
    }
    a.row(row);
    out.push_str(&a.render());
    out.push('\n');

    let mut b = Table::new(
        "Fig. 12b: IPC with 2x DRAM bandwidth (normalised to 1x of the same scheduler)",
        &["Benchmark", "statPCAL-2X", "CIAO-C-2X"],
    );
    for (bench, per_sched) in &result.bandwidth {
        b.row(vec![
            bench.clone(),
            format!("{:.2}", per_sched.get("statPCAL-2X").copied().unwrap_or(0.0)),
            format!("{:.2}", per_sched.get("CIAO-C-2X").copied().unwrap_or(0.0)),
        ]);
    }
    b.row(vec![
        "geomean".to_string(),
        format!("{:.2}", result.bandwidth_geomeans.get("statPCAL-2X").copied().unwrap_or(0.0)),
        format!("{:.2}", result.bandwidth_geomeans.get("CIAO-C-2X").copied().unwrap_or(0.0)),
    ]);
    out.push_str(&b.render());
    out.push_str(&capped_summary(result.capped_runs, result.total_runs));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunScale;

    #[test]
    fn produces_all_configurations() {
        let runner = Runner::new(RunScale::Tiny);
        let result = run(&runner, &[Benchmark::Syrk]);
        let syrk = &result.cache_configs["SYRK"];
        assert!((syrk["GTO"] - 1.0).abs() < 1e-12);
        for label in CACHE_CONFIG_LABELS {
            assert!(syrk[label] > 0.0, "{label} must have a positive normalised IPC");
        }
        let bw = &result.bandwidth["SYRK"];
        assert!(bw["statPCAL-2X"] > 0.0);
        assert!(bw["CIAO-C-2X"] > 0.0);
        let text = render(&result);
        assert!(text.contains("Fig. 12a"));
        assert!(text.contains("Fig. 12b"));
        assert!(text.contains("geomean"));
    }
}
