//! Figure 9: behaviour over time of ATAX and Backprop under Best-SWL, CCWS
//! and CIAO-T — dynamic IPC, number of active warps and cache interference as
//! a function of executed instructions.

use crate::report::Table;
use crate::runner::Runner;
use crate::schedulers::SchedulerKind;
use ciao_workloads::Benchmark;
use gpu_sim::stats::TimeSeriesPoint;
use serde::{Deserialize, Serialize};

/// One (benchmark, scheduler) time series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeriesEntry {
    /// Benchmark name.
    pub benchmark: String,
    /// Scheduler label.
    pub scheduler: String,
    /// Sampled points (instruction-indexed).
    pub points: Vec<TimeSeriesPoint>,
    /// Overall IPC of the run.
    pub ipc: f64,
}

/// The Fig. 9 (or Fig. 10, which shares the structure) result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeriesResult {
    /// One entry per (benchmark, scheduler) pair.
    pub series: Vec<SeriesEntry>,
}

/// Runs the time-series comparison for the given benchmarks and schedulers.
pub fn run(
    runner: &Runner,
    benchmarks: &[Benchmark],
    schedulers: &[SchedulerKind],
) -> TimeSeriesResult {
    let mut series = Vec::new();
    for &b in benchmarks {
        for &s in schedulers {
            let res = runner.run_one(b, s);
            series.push(SeriesEntry {
                benchmark: b.name().to_string(),
                scheduler: s.label().to_string(),
                points: res.time_series.points().to_vec(),
                ipc: res.ipc(),
            });
        }
    }
    TimeSeriesResult { series }
}

/// The schedulers compared in Fig. 9 (Best-SWL, CCWS, CIAO-T).
pub fn fig9_schedulers() -> Vec<SchedulerKind> {
    vec![SchedulerKind::BestSwl, SchedulerKind::Ccws, SchedulerKind::CiaoT]
}

/// The benchmarks of Fig. 9 (ATAX and Backprop).
pub fn fig9_benchmarks() -> Vec<Benchmark> {
    vec![Benchmark::Atax, Benchmark::Backprop]
}

/// Renders the time series as one table per benchmark.
pub fn render(title: &str, result: &TimeSeriesResult) -> String {
    let mut out = String::new();
    let mut benchmarks: Vec<String> = Vec::new();
    for s in &result.series {
        if !benchmarks.contains(&s.benchmark) {
            benchmarks.push(s.benchmark.clone());
        }
    }
    for b in &benchmarks {
        let entries: Vec<&SeriesEntry> =
            result.series.iter().filter(|s| &s.benchmark == b).collect();
        let mut header = vec!["Instructions".to_string()];
        for e in &entries {
            header.push(format!("{} IPC", e.scheduler));
            header.push(format!("{} warps", e.scheduler));
            header.push(format!("{} intf", e.scheduler));
        }
        let mut t = Table::new(format!("{title}: {b} over time"), &[]);
        t.row(header);
        let rows = entries.iter().map(|e| e.points.len()).max().unwrap_or(0);
        for i in 0..rows {
            let insts = entries
                .iter()
                .filter_map(|e| e.points.get(i))
                .map(|p| p.instructions)
                .next()
                .unwrap_or(0);
            let mut row = vec![insts.to_string()];
            for e in &entries {
                match e.points.get(i) {
                    Some(p) => {
                        row.push(format!("{:.2}", p.ipc));
                        row.push(p.active_warps.to_string());
                        row.push(p.interference.to_string());
                    }
                    None => {
                        row.push("-".into());
                        row.push("-".into());
                        row.push("-".into());
                    }
                }
            }
            t.row(row);
        }
        out.push_str(&t.render());
        out.push('\n');
        let mut summary = Table::new(format!("{title}: {b} overall IPC"), &["Scheduler", "IPC"]);
        for e in &entries {
            summary.row(vec![e.scheduler.clone(), format!("{:.3}", e.ipc)]);
        }
        out.push_str(&summary.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunScale;

    #[test]
    fn produces_time_series_per_pair() {
        let runner = Runner::new(RunScale::Tiny);
        let result =
            run(&runner, &[Benchmark::Atax], &[SchedulerKind::BestSwl, SchedulerKind::CiaoT]);
        assert_eq!(result.series.len(), 2);
        for s in &result.series {
            assert!(!s.points.is_empty(), "{} should produce samples", s.scheduler);
            assert!(s.ipc > 0.0);
        }
        let text = render("Fig. 9", &result);
        assert!(text.contains("ATAX over time"));
        assert!(text.contains("overall IPC"));
    }

    #[test]
    fn default_selection_matches_paper() {
        assert_eq!(fig9_benchmarks(), vec![Benchmark::Atax, Benchmark::Backprop]);
        assert_eq!(fig9_schedulers().len(), 3);
    }
}
