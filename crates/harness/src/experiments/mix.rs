//! Multi-tenant mix experiment: co-run named benchmark mixes across SM
//! partitioning policies × schedulers and report which policy best contains
//! inter-tenant cache interference.
//!
//! For every mix the experiment first measures each member benchmark running
//! alone on the same chip (the `alone` IPC baseline), then co-runs the mix
//! under every policy, and condenses each co-run into the multi-tenant
//! throughput metrics: STP (system throughput / weighted speedup, higher is
//! better, `n` = perfect isolation), ANTT (average normalized turnaround
//! time, lower is better, `1` = no slowdown), per-tenant slowdowns and
//! L2-contention shares, and the per-SM IPC imbalance that makes spatial
//! partitioning skew visible. The report closes with the best (highest-STP)
//! policy per (mix, scheduler) — an experiment family the paper's
//! single-kernel figures cannot express.

use crate::report::{capped_marker, capped_summary, dispatch_verdict, Table};
use crate::runner::Runner;
use crate::schedulers::SchedulerKind;
use ciao_workloads::Mix;
use gpu_sim::{
    avg_normalized_turnaround, system_throughput, DispatchLog, DispatchPolicy, DispatchSummary,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One tenant's outcome inside one co-run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantOutcome {
    /// Tenant id (mix order).
    pub tenant: u32,
    /// Benchmark name.
    pub benchmark: String,
    /// IPC when running alone on the same chip.
    pub alone_ipc: f64,
    /// IPC inside the co-run (instructions over turnaround cycles).
    pub shared_ipc: f64,
    /// `alone / shared` (1.0 = unharmed; larger = slowed by co-runners;
    /// 0.0 with `starved` set = unbounded — the tenant made no progress).
    pub slowdown: f64,
    /// The tenant retired zero instructions inside the co-run despite having
    /// a positive alone-IPC: its slowdown is unbounded, not zero.
    pub starved: bool,
    /// Tenant's share of the chip's L2 misses (who floods the shared cache).
    pub l2_miss_share: f64,
    /// Tenant's own L1D hit rate inside the co-run.
    pub l1d_hit_rate: f64,
    /// Mean of the per-window L2 hit rates the dispatcher observed for the
    /// tenant; `-1.0` when the policy logged no measured windows (static
    /// policies, or a tenant with no memory traffic) — the decision log's
    /// own unmeasured-window convention.
    pub dispatch_l2_hit_rate: f64,
    /// Bytes the tenant pushed through the shared request-direction crossbar
    /// fabric.
    pub fabric_request_bytes: u64,
    /// Bytes returned to the tenant through the shared reply-direction
    /// fabric.
    pub fabric_reply_bytes: u64,
    /// Whether the tenant was cut short by the simulation cap.
    pub capped: bool,
}

/// One (mix, policy, scheduler) co-run condensed to its headline metrics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MixRow {
    /// Mix name.
    pub mix: String,
    /// Dispatch policy label.
    pub policy: String,
    /// Scheduler label.
    pub scheduler: String,
    /// System throughput (weighted speedup), `Σ shared/alone`.
    pub stp: f64,
    /// Average normalized turnaround time, `mean(alone/shared)` over the
    /// non-starved tenants (a starved tenant's slowdown is unbounded and
    /// cannot enter a finite mean; see `starved_tenants`).
    pub antt: f64,
    /// Number of tenants starved outright by this policy. Non-zero rows are
    /// excluded from the best-policy verdicts — whatever their STP, a policy
    /// that stops a tenant dead did not "contain" interference.
    pub starved_tenants: usize,
    /// Chip-level IPC of the co-run.
    pub chip_ipc: f64,
    /// Lowest per-SM IPC (partitioning skew, low end).
    pub sm_ipc_min: f64,
    /// Highest per-SM IPC (partitioning skew, high end).
    pub sm_ipc_max: f64,
    /// Standard deviation of per-SM IPC (partitioning skew).
    pub sm_ipc_stddev: f64,
    /// Per-tenant outcomes, in mix order.
    pub tenants: Vec<TenantOutcome>,
    /// Cycles requests queued against the chip-wide request-direction
    /// crossbar budget.
    pub fabric_request_queueing: u64,
    /// Cycles read replies queued against the chip-wide reply-direction
    /// crossbar budget — the reply-path contention signal.
    pub fabric_reply_queueing: u64,
    /// Whether any SM hit the simulation cap.
    pub capped: bool,
    /// Throttle decisions the `interference-aware` dispatcher took (0 for
    /// static policies).
    pub throttles: usize,
    /// Restore decisions the `interference-aware` dispatcher took.
    pub restores: usize,
    /// Per-tenant digest of the decision log (throttles, restores, final
    /// class), computed once per co-run; `throttles`/`restores` above are its
    /// totals.
    pub dispatch: DispatchSummary,
    /// The full per-epoch decision log of the co-run (per-tenant hit-rate
    /// windows, classifications, actions); empty for static policies. Written
    /// into the JSON artefact so CI can archive *why* work moved.
    pub decision_log: DispatchLog,
}

/// The winning policy for one (mix, scheduler) pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BestPolicy {
    /// Mix name.
    pub mix: String,
    /// Scheduler label.
    pub scheduler: String,
    /// Policy with the highest STP.
    pub policy: String,
    /// Its STP.
    pub stp: f64,
}

/// Full result of the mix experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MixResult {
    /// Number of SMs per co-run.
    pub num_sms: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Arrival stagger between consecutive tenants, in cycles (0 = all
    /// tenants launch at cycle 0).
    pub arrival_stride: u64,
    /// Run scale label.
    pub scale: String,
    /// Every (mix, policy, scheduler) co-run.
    pub rows: Vec<MixRow>,
    /// Highest-STP policy per (mix, scheduler).
    pub best: Vec<BestPolicy>,
}

/// The schedulers the mix experiment runs by default: the GTO baseline and
/// the paper's headline CIAO-C.
pub fn default_schedulers() -> Vec<SchedulerKind> {
    vec![SchedulerKind::Gto, SchedulerKind::CiaoC]
}

/// Runs `mixes × policies × schedulers` co-runs (plus the per-benchmark solo
/// baselines each mix needs) and assembles the [`MixResult`].
pub fn run(
    runner: &Runner,
    mixes: &[Mix],
    policies: &[DispatchPolicy],
    schedulers: &[SchedulerKind],
) -> MixResult {
    // Solo baselines, deduplicated across mixes: (benchmark, scheduler) → IPC
    // alone on the same chip.
    let mut alone: BTreeMap<(String, String), f64> = BTreeMap::new();
    for mix in mixes {
        for benchmark in mix.benchmarks() {
            for &scheduler in schedulers {
                let key = (benchmark.name().to_string(), scheduler.label().to_string());
                alone
                    .entry(key)
                    .or_insert_with(|| runner.run_one(benchmark, scheduler).per_tenant[0].ipc());
            }
        }
    }

    let mut rows = Vec::new();
    for &mix in mixes {
        for &scheduler in schedulers {
            for &policy in policies {
                let res = runner.run_mix(mix, policy, scheduler);
                let total_l2_misses = res.stats.l2.misses();
                // Digest the decision log once per co-run: the per-tenant
                // series accessor re-walks the whole log on every call.
                let dispatch = res.dispatch_log.summary();
                let hit_series = res.dispatch_log.all_l2_hit_rate_series();
                let alone_ipcs: Vec<f64> = mix
                    .benchmarks()
                    .iter()
                    .map(|b| alone[&(b.name().to_string(), scheduler.label().to_string())])
                    .collect();
                let shared_ipcs = res.tenant_ipcs();
                let tenants: Vec<TenantOutcome> = res
                    .per_tenant
                    .iter()
                    .zip(&alone_ipcs)
                    .map(|(t, &alone_ipc)| TenantOutcome {
                        tenant: t.tenant,
                        benchmark: t.kernel.clone(),
                        alone_ipc,
                        shared_ipc: t.ipc(),
                        slowdown: if t.ipc() > 0.0 { alone_ipc / t.ipc() } else { 0.0 },
                        starved: alone_ipc > 0.0 && t.ipc() <= 0.0,
                        l2_miss_share: t.l2_miss_share(total_l2_misses),
                        l1d_hit_rate: t.l1d_hit_rate(),
                        dispatch_l2_hit_rate: hit_series
                            .get(t.tenant as usize)
                            .filter(|s| !s.is_empty())
                            .map_or(-1.0, |s| {
                                s.iter().map(|&(_, r)| r).sum::<f64>() / s.len() as f64
                            }),
                        fabric_request_bytes: t.fabric_request_bytes,
                        fabric_reply_bytes: t.fabric_reply_bytes,
                        capped: t.capped,
                    })
                    .collect();
                let starved_tenants = tenants.iter().filter(|t| t.starved).count();
                // A starved tenant makes the true ANTT infinite (the stats
                // function says so); store the finite mean over the surviving
                // tenants so the row stays JSON-representable, and carry the
                // starvation count alongside.
                let antt = avg_normalized_turnaround(&alone_ipcs, &shared_ipcs);
                let antt = if antt.is_finite() {
                    antt
                } else {
                    let (a2, s2): (Vec<f64>, Vec<f64>) = alone_ipcs
                        .iter()
                        .zip(&shared_ipcs)
                        .filter(|(_, &s)| s > 0.0)
                        .map(|(&a, &s)| (a, s))
                        .unzip();
                    avg_normalized_turnaround(&a2, &s2)
                };
                let imbalance = res.sm_imbalance();
                rows.push(MixRow {
                    mix: mix.name().to_string(),
                    policy: policy.label().to_string(),
                    scheduler: scheduler.label().to_string(),
                    stp: system_throughput(&alone_ipcs, &shared_ipcs),
                    antt,
                    starved_tenants,
                    chip_ipc: res.ipc(),
                    sm_ipc_min: imbalance.min_ipc,
                    sm_ipc_max: imbalance.max_ipc,
                    sm_ipc_stddev: imbalance.stddev_ipc,
                    tenants,
                    fabric_request_queueing: res.fabric.request.queueing_cycles,
                    fabric_reply_queueing: res.fabric.reply.queueing_cycles,
                    capped: res.capped,
                    throttles: dispatch.tenants.iter().map(|t| t.throttles).sum(),
                    restores: dispatch.tenants.iter().map(|t| t.restores).sum(),
                    dispatch,
                    decision_log: res.dispatch_log,
                });
            }
        }
    }

    let mut best: Vec<BestPolicy> = Vec::new();
    for &mix in mixes {
        for &scheduler in schedulers {
            // A policy that starved a tenant outright cannot "win", whatever
            // its STP — unless every candidate starved someone.
            let candidates: Vec<&MixRow> = rows
                .iter()
                .filter(|r| r.mix == mix.name() && r.scheduler == scheduler.label())
                .collect();
            let healthy: Vec<&MixRow> =
                candidates.iter().copied().filter(|r| r.starved_tenants == 0).collect();
            let pool = if healthy.is_empty() { &candidates } else { &healthy };
            let winner = pool
                .iter()
                .copied()
                .max_by(|a, b| a.stp.partial_cmp(&b.stp).expect("STP is finite"));
            if let Some(w) = winner {
                best.push(BestPolicy {
                    mix: w.mix.clone(),
                    scheduler: w.scheduler.clone(),
                    policy: w.policy.clone(),
                    stp: w.stp,
                });
            }
        }
    }

    MixResult {
        num_sms: runner.sms,
        seed: runner.seed,
        arrival_stride: runner.arrival_stride,
        scale: format!("{:?}", runner.scale),
        rows,
        best,
    }
}

/// Plain-text report: the policy comparison, the per-tenant breakdown and
/// the best-policy verdicts.
pub fn render(result: &MixResult) -> String {
    let arrivals = if result.arrival_stride > 0 {
        format!(", arrivals +{}", result.arrival_stride)
    } else {
        String::new()
    };
    let mut summary = Table::new(
        format!(
            "Multi-tenant mixes — STP / ANTT per policy ({} SMs, {} scale, seed {}{arrivals})",
            result.num_sms, result.scale, result.seed
        ),
        &[
            "mix",
            "scheduler",
            "policy",
            "STP",
            "ANTT",
            "chip IPC",
            "per-SM IPC",
            "xbar queue rq/rp",
            "decisions",
        ],
    );
    for r in &result.rows {
        let imbalance = gpu_sim::SmImbalance {
            min_ipc: r.sm_ipc_min,
            max_ipc: r.sm_ipc_max,
            stddev_ipc: r.sm_ipc_stddev,
        };
        summary.row(vec![
            r.mix.clone(),
            r.scheduler.clone(),
            format!("{}{}", r.policy, capped_marker(r.capped)),
            format!("{:.3}", r.stp),
            if r.starved_tenants > 0 {
                format!("{:.3} ({} starved)", r.antt, r.starved_tenants)
            } else {
                format!("{:.3}", r.antt)
            },
            format!("{:.4}", r.chip_ipc),
            crate::report::imbalance_cell(&imbalance),
            format!("{}/{}", r.fabric_request_queueing, r.fabric_reply_queueing),
            if r.decision_log.is_empty() {
                "-".to_string()
            } else {
                format!("{}T/{}R", r.throttles, r.restores)
            },
        ]);
    }

    let mut detail = Table::new(
        "Per-tenant breakdown (slowdown = alone IPC / shared IPC; xbar = shared-fabric KB rq/rp)",
        &[
            "mix",
            "scheduler",
            "policy",
            "tenant",
            "alone",
            "shared",
            "slowdown",
            "L2-miss %",
            "disp L2-hit",
            "xbar KB rq/rp",
        ],
    );
    for r in &result.rows {
        for t in &r.tenants {
            detail.row(vec![
                r.mix.clone(),
                r.scheduler.clone(),
                r.policy.clone(),
                format!("{}:{}{}", t.tenant, t.benchmark, capped_marker(t.capped)),
                format!("{:.4}", t.alone_ipc),
                format!("{:.4}", t.shared_ipc),
                if t.starved { "starved".to_string() } else { format!("{:.2}x", t.slowdown) },
                format!("{:.1}%", t.l2_miss_share * 100.0),
                if t.dispatch_l2_hit_rate < 0.0 {
                    "-".to_string()
                } else {
                    format!("{:.1}%", t.dispatch_l2_hit_rate * 100.0)
                },
                format!("{}/{}", t.fabric_request_bytes / 1024, t.fabric_reply_bytes / 1024),
            ]);
        }
    }

    let capped_runs = result.rows.iter().filter(|r| r.capped).count();
    let mut out = summary.render();
    out.push('\n');
    out.push_str(&detail.render());
    out.push('\n');
    for b in &result.best {
        out.push_str(&format!(
            "best policy for {:<14} under {:<8}: {} (STP {:.3})\n",
            b.mix, b.scheduler, b.policy, b.stp
        ));
    }
    // Dispatcher verdicts from the pre-computed digests — only policies that
    // actually logged decisions have one to report.
    for r in result.rows.iter().filter(|r| !r.dispatch.tenants.is_empty()) {
        out.push_str(&format!(
            "dispatcher for {:<14} under {:<8} ({}): {}\n",
            r.mix,
            r.scheduler,
            r.policy,
            dispatch_verdict(&r.dispatch)
        ));
    }
    out.push_str(&capped_summary(capped_runs, result.rows.len()));
    out
}

/// One (mix, policy, scheduler) cell of a seed sweep: mean ± σ figures over
/// the swept seeds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MixSweepRow {
    /// Mix name.
    pub mix: String,
    /// Dispatch policy label.
    pub policy: String,
    /// Scheduler label.
    pub scheduler: String,
    /// Per-seed STP samples, in seed order.
    pub stp_samples: Vec<f64>,
    /// Mean STP across seeds.
    pub mean_stp: f64,
    /// Population standard deviation of STP across seeds.
    pub std_stp: f64,
    /// Per-seed (finite) ANTT samples, in seed order.
    pub antt_samples: Vec<f64>,
    /// Mean ANTT across seeds.
    pub mean_antt: f64,
    /// Population standard deviation of ANTT across seeds.
    pub std_antt: f64,
    /// Seeds in which at least one tenant was starved.
    pub starved_runs: usize,
    /// Seeds in which the run hit the simulation cap.
    pub capped_runs: usize,
}

/// Result of a seed-swept mix experiment (`--seed a..b`): the per-seed
/// results plus mean ± σ summary rows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MixSweepResult {
    /// Number of SMs per co-run.
    pub num_sms: usize,
    /// The seeds swept, in order.
    pub seeds: Vec<u64>,
    /// Arrival stagger between consecutive tenants, in cycles.
    pub arrival_stride: u64,
    /// Run scale label.
    pub scale: String,
    /// Mean ± σ summary per (mix, policy, scheduler).
    pub rows: Vec<MixSweepRow>,
    /// The full single-seed results, in seed order.
    pub per_seed: Vec<MixResult>,
}

fn mean_std(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Runs the mix experiment once per seed and aggregates mean ± σ STP/ANTT
/// per (mix, policy, scheduler) — the ROADMAP's "seed-averaged mix figures".
pub fn run_seeds(
    runner: &Runner,
    seeds: &[u64],
    mixes: &[Mix],
    policies: &[DispatchPolicy],
    schedulers: &[SchedulerKind],
) -> MixSweepResult {
    assert!(!seeds.is_empty(), "a seed sweep needs at least one seed");
    let per_seed: Vec<MixResult> = seeds
        .iter()
        .map(|&seed| run(&runner.clone().with_seed(seed), mixes, policies, schedulers))
        .collect();
    let mut rows = Vec::new();
    for &mix in mixes {
        for &scheduler in schedulers {
            for &policy in policies {
                let cells: Vec<&MixRow> = per_seed
                    .iter()
                    .map(|r| {
                        r.rows
                            .iter()
                            .find(|row| {
                                row.mix == mix.name()
                                    && row.policy == policy.label()
                                    && row.scheduler == scheduler.label()
                            })
                            .expect("every seed ran every cell")
                    })
                    .collect();
                let stp_samples: Vec<f64> = cells.iter().map(|c| c.stp).collect();
                let antt_samples: Vec<f64> = cells.iter().map(|c| c.antt).collect();
                let (mean_stp, std_stp) = mean_std(&stp_samples);
                let (mean_antt, std_antt) = mean_std(&antt_samples);
                rows.push(MixSweepRow {
                    mix: mix.name().to_string(),
                    policy: policy.label().to_string(),
                    scheduler: scheduler.label().to_string(),
                    stp_samples,
                    mean_stp,
                    std_stp,
                    antt_samples,
                    mean_antt,
                    std_antt,
                    starved_runs: cells.iter().filter(|c| c.starved_tenants > 0).count(),
                    capped_runs: cells.iter().filter(|c| c.capped).count(),
                });
            }
        }
    }
    MixSweepResult {
        num_sms: runner.sms,
        seeds: seeds.to_vec(),
        arrival_stride: runner.arrival_stride,
        scale: format!("{:?}", runner.scale),
        rows,
        per_seed,
    }
}

/// Plain-text report of a seed sweep: mean ± σ STP/ANTT per cell.
pub fn render_sweep(result: &MixSweepResult) -> String {
    let arrivals = if result.arrival_stride > 0 {
        format!(", arrivals +{}", result.arrival_stride)
    } else {
        String::new()
    };
    let mut table = Table::new(
        format!(
            "Multi-tenant mixes — seed-averaged STP / ANTT ({} SMs, {} scale, seeds {:?}{arrivals})",
            result.num_sms, result.scale, result.seeds
        ),
        &["mix", "scheduler", "policy", "STP mean±σ", "ANTT mean±σ", "starved", "capped"],
    );
    for r in &result.rows {
        table.row(vec![
            r.mix.clone(),
            r.scheduler.clone(),
            r.policy.clone(),
            format!("{:.3} ±{:.3}", r.mean_stp, r.std_stp),
            format!("{:.3} ±{:.3}", r.mean_antt, r.std_antt),
            format!("{}/{}", r.starved_runs, result.seeds.len()),
            format!("{}/{}", r.capped_runs, result.seeds.len()),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunScale;

    #[test]
    fn mix_experiment_end_to_end_tiny() {
        let runner = Runner::new(RunScale::Tiny).with_sms(2);
        let result =
            run(&runner, &[Mix::CacheStream], &DispatchPolicy::all(), &[SchedulerKind::Gto]);
        assert_eq!(result.rows.len(), DispatchPolicy::all().len());
        assert_eq!(result.best.len(), 1);
        for r in &result.rows {
            assert_eq!(r.tenants.len(), 2);
            assert!(r.stp > 0.0, "{}: STP must be positive", r.policy);
            assert!(r.antt > 0.0);
            // L2 miss shares sum to ~1 when there are misses at all.
            let share: f64 = r.tenants.iter().map(|t| t.l2_miss_share).sum();
            assert!(share == 0.0 || (share - 1.0).abs() < 1e-9, "shares sum to {share}");
        }
        let text = render(&result);
        assert!(text.contains("STP"));
        assert!(text.contains("best policy for cache-stream"));
        assert!(text.contains("exclusive"));
        assert!(text.contains("spatial"));
        assert!(text.contains("shared-rr"));
        assert!(text.contains("interference-aware"));
    }

    #[test]
    fn seed_sweep_aggregates_mean_and_sigma() {
        let runner = Runner::new(RunScale::Tiny).with_sms(2);
        let seeds = [0u64, 1];
        let result = run_seeds(
            &runner,
            &seeds,
            &[Mix::CacheCompute],
            &[DispatchPolicy::SharedRoundRobin],
            &[SchedulerKind::Gto],
        );
        assert_eq!(result.per_seed.len(), 2);
        assert_eq!(result.rows.len(), 1);
        let row = &result.rows[0];
        assert_eq!(row.stp_samples.len(), 2);
        let expect_mean = (row.stp_samples[0] + row.stp_samples[1]) / 2.0;
        assert!((row.mean_stp - expect_mean).abs() < 1e-12);
        // Population σ of two samples is half their absolute difference.
        let expect_std = (row.stp_samples[0] - row.stp_samples[1]).abs() / 2.0;
        assert!((row.std_stp - expect_std).abs() < 1e-12);
        // The per-seed results match the samples, in seed order.
        for (i, per_seed) in result.per_seed.iter().enumerate() {
            assert_eq!(per_seed.seed, seeds[i]);
            assert_eq!(per_seed.rows[0].stp, row.stp_samples[i]);
        }
        let text = render_sweep(&result);
        assert!(text.contains("seed-averaged"));
        assert!(text.contains("±"));
    }

    #[test]
    fn exclusive_single_mix_metrics_are_consistent() {
        // Under the serial exclusive policy each tenant runs undisturbed, so
        // its *work* IPC matches the solo run and the slowdown comes purely
        // from queueing (tenant k waits for k earlier kernels).
        let runner = Runner::new(RunScale::Tiny).with_sms(2);
        let result =
            run(&runner, &[Mix::CacheCompute], &[DispatchPolicy::Exclusive], &[SchedulerKind::Gto]);
        let row = &result.rows[0];
        // Tenant 0 runs first: no queueing, no interference → unharmed.
        assert!((row.tenants[0].slowdown - 1.0).abs() < 1e-9);
        // Tenant 1 queued behind tenant 0 → strictly slowed.
        assert!(row.tenants[1].slowdown > 1.0);
    }
}
