//! Figure 11: sensitivity of CIAO-C to its two tuning knobs.
//!
//! * **11a** — the high-cutoff epoch length (1K / 5K / 10K / 50K instructions);
//! * **11b** — the high-cutoff threshold (4% / 2% / 1% / 0.5%), with the low
//!   cutoff fixed at half the high cutoff.
//!
//! IPC is reported normalised to the default setting (5K instructions, 1%),
//! which is how the paper argues the scheme is robust (within ~15% across
//! epochs, ~5% across thresholds).

use crate::report::Table;
use crate::runner::Runner;
use crate::schedulers::SchedulerKind;
use ciao_core::CiaoParams;
use ciao_workloads::Benchmark;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The epoch values swept in Fig. 11a.
pub const EPOCHS: [u64; 4] = [1_000, 5_000, 10_000, 50_000];
/// The high-cutoff thresholds swept in Fig. 11b.
pub const CUTOFFS: [f64; 4] = [0.04, 0.02, 0.01, 0.005];

/// Sensitivity results for one knob.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    /// Knob values, rendered as strings ("1000", "0.04", ...).
    pub settings: Vec<String>,
    /// benchmark → (setting → IPC normalised to the default setting).
    pub normalized_ipc: BTreeMap<String, BTreeMap<String, f64>>,
}

/// Combined Fig. 11 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Result {
    /// Fig. 11a: epoch sweep.
    pub epochs: SweepResult,
    /// Fig. 11b: threshold sweep.
    pub cutoffs: SweepResult,
}

fn sweep<F>(
    runner: &Runner,
    benchmarks: &[Benchmark],
    settings: &[String],
    make_params: F,
) -> SweepResult
where
    F: Fn(&str) -> CiaoParams,
{
    let default_params = CiaoParams::default();
    let mut normalized_ipc: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
    for &b in benchmarks {
        // Baseline: the default parameters.
        let base_runner = runner.clone().with_params(default_params);
        let base_ipc = base_runner.record(b, SchedulerKind::CiaoC).ipc.max(1e-12);
        let mut per_setting = BTreeMap::new();
        for setting in settings {
            let params = make_params(setting);
            let r = runner.clone().with_params(params);
            let ipc = r.record(b, SchedulerKind::CiaoC).ipc;
            per_setting.insert(setting.clone(), ipc / base_ipc);
        }
        normalized_ipc.insert(b.name().to_string(), per_setting);
    }
    SweepResult { settings: settings.to_vec(), normalized_ipc }
}

/// Runs both sweeps over `benchmarks` (the paper uses the seven
/// memory-intensive benchmarks of `ciao_workloads::characteristics::sensitivity_set`).
pub fn run(runner: &Runner, benchmarks: &[Benchmark]) -> Fig11Result {
    let epoch_settings: Vec<String> = EPOCHS.iter().map(|e| e.to_string()).collect();
    let epochs = sweep(runner, benchmarks, &epoch_settings, |s| {
        CiaoParams::default().with_high_epoch(s.parse().expect("numeric epoch"))
    });
    let cutoff_settings: Vec<String> = CUTOFFS.iter().map(|c| format!("{c}")).collect();
    let cutoffs = sweep(runner, benchmarks, &cutoff_settings, |s| {
        CiaoParams::default().with_high_cutoff(s.parse().expect("numeric cutoff"))
    });
    Fig11Result { epochs, cutoffs }
}

/// The benchmarks used in the paper's sensitivity study.
pub fn sensitivity_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark::Atax,
        Benchmark::Gesummv,
        Benchmark::Syr2k,
        Benchmark::Syrk,
        Benchmark::Bicg,
        Benchmark::Mvt,
        Benchmark::Kmeans,
    ]
}

fn render_sweep(title: &str, sweep: &SweepResult) -> String {
    let mut header = vec!["Benchmark".to_string()];
    header.extend(sweep.settings.iter().cloned());
    let mut t = Table::new(title, &[]);
    t.row(header);
    for (bench, per_setting) in &sweep.normalized_ipc {
        let mut row = vec![bench.clone()];
        for s in &sweep.settings {
            row.push(format!("{:.3}", per_setting.get(s).copied().unwrap_or(0.0)));
        }
        t.row(row);
    }
    t.render()
}

/// Renders both panels.
pub fn render(result: &Fig11Result) -> String {
    let mut out = String::new();
    out.push_str(&render_sweep(
        "Fig. 11a: IPC vs high-cutoff epoch (normalised to 5000)",
        &result.epochs,
    ));
    out.push('\n');
    out.push_str(&render_sweep(
        "Fig. 11b: IPC vs high-cutoff threshold (normalised to 1%)",
        &result.cutoffs,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunScale;

    #[test]
    fn sweeps_produce_normalised_values_near_one() {
        let runner = Runner::new(RunScale::Tiny);
        let result = run(&runner, &[Benchmark::Syrk]);
        assert_eq!(result.epochs.settings.len(), 4);
        assert_eq!(result.cutoffs.settings.len(), 4);
        let syrk_epochs = &result.epochs.normalized_ipc["SYRK"];
        // The default setting (5000) must normalise to exactly 1.0.
        assert!((syrk_epochs["5000"] - 1.0).abs() < 1e-9);
        // All settings should stay within a broad robustness band.
        for v in syrk_epochs.values() {
            assert!(*v > 0.3 && *v < 3.0, "epoch sensitivity out of range: {v}");
        }
        let syrk_cutoffs = &result.cutoffs.normalized_ipc["SYRK"];
        assert!((syrk_cutoffs["0.01"] - 1.0).abs() < 1e-9);
        let text = render(&result);
        assert!(text.contains("Fig. 11a"));
        assert!(text.contains("Fig. 11b"));
    }

    #[test]
    fn paper_sensitivity_set_has_seven_benchmarks() {
        assert_eq!(sensitivity_benchmarks().len(), 7);
    }
}
