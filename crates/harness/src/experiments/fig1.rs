//! Figure 1 (motivation, Backprop):
//!
//! * **1a** — which warps interfere with which: the normalised inter-warp
//!   interference matrix restricted to the most-affected warps;
//! * **1b** — IPC, L1D hit rate and mean active warps of Best-SWL and CCWS,
//!   normalised to Best-SWL, showing that similar hit rates do not imply
//!   similar performance once TLP is sacrificed.

use crate::report::Table;
use crate::runner::Runner;
use crate::schedulers::SchedulerKind;
use ciao_workloads::Benchmark;
use serde::{Deserialize, Serialize};

/// Result of the Fig. 1a interference characterisation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1aResult {
    /// Warp IDs of the most-interfered warps (matrix row/column labels).
    pub warps: Vec<u32>,
    /// Interference matrix normalised to its maximum entry, restricted to
    /// `warps` (rows = victims, columns = evictors).
    pub normalized: Vec<Vec<f64>>,
    /// Total cross-warp evictions observed.
    pub total_events: u64,
}

/// One scheduler's entry of Fig. 1b.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1bEntry {
    /// Scheduler label.
    pub scheduler: String,
    /// IPC (absolute).
    pub ipc: f64,
    /// L1D hit rate.
    pub hit_rate: f64,
    /// Mean active warps.
    pub active_warps: f64,
}

/// Combined Fig. 1 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Result {
    /// The benchmark used (Backprop in the paper).
    pub benchmark: String,
    /// Fig. 1a data.
    pub interference: Fig1aResult,
    /// Fig. 1b data (Best-SWL and CCWS).
    pub comparison: Vec<Fig1bEntry>,
}

/// Number of warps shown in the Fig. 1a heat map.
const HEATMAP_WARPS: usize = 13;

/// Runs the Fig. 1 experiment on `benchmark` (Backprop in the paper).
pub fn run(runner: &Runner, benchmark: Benchmark) -> Fig1Result {
    // Fig. 1a: interference under the baseline GTO scheduler.
    let base = runner.run_one(benchmark, SchedulerKind::Gto);
    let matrix = &base.interference;
    // Pick the warps that suffered the most interference, mirroring the
    // paper's selection of the hottest warps.
    let mut by_suffering: Vec<(u32, u64)> =
        (0..matrix.num_warps() as u32).map(|w| (w, matrix.suffered_by(w))).collect();
    by_suffering.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
    let warps: Vec<u32> = by_suffering.iter().take(HEATMAP_WARPS).map(|&(w, _)| w).collect();
    let full = matrix.normalized();
    let normalized: Vec<Vec<f64>> = warps
        .iter()
        .map(|&v| warps.iter().map(|&e| full[v as usize][e as usize]).collect())
        .collect();
    let interference = Fig1aResult { warps, normalized, total_events: matrix.total() };

    // Fig. 1b: Best-SWL vs CCWS.
    let comparison = [SchedulerKind::BestSwl, SchedulerKind::Ccws]
        .iter()
        .map(|&s| {
            let res = runner.run_one(benchmark, s);
            Fig1bEntry {
                scheduler: s.label().to_string(),
                ipc: res.ipc(),
                hit_rate: res.l1d_hit_rate(),
                active_warps: res.time_series.mean_active_warps(),
            }
        })
        .collect();

    Fig1Result { benchmark: benchmark.name().to_string(), interference, comparison }
}

/// Renders both panels.
pub fn render(result: &Fig1Result) -> String {
    let mut out = String::new();
    let mut heat = Table::new(
        format!("Fig. 1a: {} inter-warp interference (normalised)", result.benchmark),
        &[""],
    );
    // Header row of evictor warp ids.
    let mut header = vec!["victim\\evictor".to_string()];
    header.extend(result.interference.warps.iter().map(|w| format!("W{w}")));
    heat.row(header);
    for (i, &v) in result.interference.warps.iter().enumerate() {
        let mut row = vec![format!("W{v}")];
        row.extend(result.interference.normalized[i].iter().map(|x| format!("{x:.2}")));
        heat.row(row);
    }
    out.push_str(&heat.render());
    out.push('\n');

    let mut cmp = Table::new(
        format!("Fig. 1b: {} under Best-SWL and CCWS", result.benchmark),
        &["Scheduler", "IPC", "L1D hit rate", "Active warps"],
    );
    for e in &result.comparison {
        cmp.row(vec![
            e.scheduler.clone(),
            format!("{:.3}", e.ipc),
            format!("{:.3}", e.hit_rate),
            format!("{:.1}", e.active_warps),
        ]);
    }
    out.push_str(&cmp.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunScale;

    #[test]
    fn produces_heatmap_and_comparison() {
        let runner = Runner::new(RunScale::Tiny);
        let result = run(&runner, Benchmark::Backprop);
        assert_eq!(result.benchmark, "Backprop");
        assert_eq!(result.interference.warps.len(), HEATMAP_WARPS);
        assert_eq!(result.interference.normalized.len(), HEATMAP_WARPS);
        assert!(result.interference.normalized.iter().flatten().all(|&x| (0.0..=1.0).contains(&x)));
        assert_eq!(result.comparison.len(), 2);
        assert!(result.comparison.iter().all(|e| e.ipc > 0.0));
        let text = render(&result);
        assert!(text.contains("Fig. 1a"));
        assert!(text.contains("Best-SWL"));
        assert!(text.contains("CCWS"));
    }
}
