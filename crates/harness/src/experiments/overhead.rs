//! §V-F: hardware-overhead analysis.

use ciao_core::{OverheadModel, OverheadReport};
use serde::{Deserialize, Serialize};

/// The overhead experiment result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverheadResult {
    /// The model inputs used.
    pub model: OverheadModel,
    /// The computed report.
    pub report: OverheadReport,
}

/// Computes the overhead report with the default GTX 480 constants.
pub fn run() -> OverheadResult {
    let model = OverheadModel::default();
    OverheadResult { report: model.report(), model }
}

/// Renders the report.
pub fn render(result: &OverheadResult) -> String {
    let mut out = String::from("== Overhead analysis (Section V-F) ==\n");
    for line in result.report.lines() {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_stays_within_paper_bounds() {
        let result = run();
        assert!(result.report.area_fraction < 0.02);
        assert!(result.report.power_fraction < 0.005);
        let text = render(&result);
        assert!(text.contains("Overhead analysis"));
        assert!(text.contains("mm2"));
    }
}
