//! One module per table/figure of the paper's evaluation.
//!
//! Every module follows the same shape: a serialisable result struct, a
//! `run(...)` function taking a [`crate::Runner`] (plus, where sensible, the
//! benchmark subset so tests can run reduced versions), and a `render(...)`
//! function producing the plain-text report. The `ciao-harness` binary and
//! the criterion benches both call these functions, so the recorded results
//! in EXPERIMENTS.md come from exactly the code a user runs.

pub mod capacity;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig4;
pub mod fig8;
pub mod fig9;
pub mod fleet;
pub mod mix;
pub mod overhead;
pub mod table1;
pub mod table2;
