//! Figure 4: non-uniform cache interference.
//!
//! * **4a** — for one heavily interfered warp of KMEANS, how often each other
//!   warp interfered with it (a long-tailed distribution: one warp dominates,
//!   many never interfere), which justifies tracking only the most recently
//!   and frequently interfering warp per warp;
//! * **4b** — the minimum and maximum pairwise interference frequency per
//!   workload, showing the same skew across every evaluated benchmark.

use crate::report::Table;
use crate::runner::Runner;
use crate::schedulers::SchedulerKind;
use ciao_workloads::Benchmark;
use serde::{Deserialize, Serialize};

/// Fig. 4a data: interference suffered by one victim warp.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4aResult {
    /// The benchmark used (KMN / KMEANS in the paper).
    pub benchmark: String,
    /// The victim warp examined (the most interfered warp of the run).
    pub victim: u32,
    /// (interfering warp, eviction count) pairs, sorted by count descending,
    /// zero-count warps excluded.
    pub interferers: Vec<(u32, u64)>,
    /// Number of warps that never interfered with the victim.
    pub non_interfering_warps: usize,
}

/// One benchmark's row of Fig. 4b.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4bRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Minimum non-zero pairwise interference count.
    pub min: u64,
    /// Maximum pairwise interference count.
    pub max: u64,
}

/// Combined Fig. 4 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Result {
    /// Fig. 4a data.
    pub single_warp: Fig4aResult,
    /// Fig. 4b rows.
    pub min_max: Vec<Fig4bRow>,
}

/// Runs Fig. 4a on `focus` (KMN in the paper) and Fig. 4b on `benchmarks`.
pub fn run(runner: &Runner, focus: Benchmark, benchmarks: &[Benchmark]) -> Fig4Result {
    let res = runner.run_one(focus, SchedulerKind::Gto);
    let matrix = &res.interference;
    let victim = (0..matrix.num_warps() as u32).max_by_key(|&w| matrix.suffered_by(w)).unwrap_or(0);
    let mut interferers: Vec<(u32, u64)> = (0..matrix.num_warps() as u32)
        .map(|e| (e, matrix.count(victim, e)))
        .filter(|&(_, c)| c > 0)
        .collect();
    interferers.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    let non_interfering_warps = matrix.num_warps() - interferers.len();
    let single_warp = Fig4aResult {
        benchmark: focus.name().to_string(),
        victim,
        interferers,
        non_interfering_warps,
    };

    let min_max = benchmarks
        .iter()
        .map(|&b| {
            let r = runner.run_one(b, SchedulerKind::Gto);
            let (min, max) = r.interference.min_max_nonzero().unwrap_or((0, 0));
            Fig4bRow { benchmark: b.name().to_string(), min, max }
        })
        .collect();

    Fig4Result { single_warp, min_max }
}

/// Renders both panels.
pub fn render(result: &Fig4Result) -> String {
    let mut out = String::new();
    let mut a = Table::new(
        format!(
            "Fig. 4a: warps interfering with W{} of {} ({} warps never interfere)",
            result.single_warp.victim,
            result.single_warp.benchmark,
            result.single_warp.non_interfering_warps
        ),
        &["Interfering warp", "Evictions"],
    );
    for (w, c) in result.single_warp.interferers.iter().take(16) {
        a.row(vec![format!("W{w}"), c.to_string()]);
    }
    out.push_str(&a.render());
    out.push('\n');
    let mut b = Table::new(
        "Fig. 4b: min/max pairwise interference per workload",
        &["Benchmark", "Min", "Max"],
    );
    for row in &result.min_max {
        b.row(vec![row.benchmark.clone(), row.min.to_string(), row.max.to_string()]);
    }
    out.push_str(&b.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunScale;

    #[test]
    fn interference_is_skewed() {
        let runner = Runner::new(RunScale::Tiny);
        let result = run(&runner, Benchmark::Kmn, &[Benchmark::Kmn, Benchmark::Syrk]);
        // The victim warp must have at least one interferer and the
        // distribution must be non-uniform (the paper's key observation).
        assert!(!result.single_warp.interferers.is_empty());
        let counts: Vec<u64> = result.single_warp.interferers.iter().map(|&(_, c)| c).collect();
        assert!(counts[0] >= *counts.last().unwrap());
        assert_eq!(result.min_max.len(), 2);
        for row in &result.min_max {
            assert!(row.max >= row.min);
        }
        let text = render(&result);
        assert!(text.contains("Fig. 4a"));
        assert!(text.contains("Fig. 4b"));
    }
}
