//! Figure 10: behaviour over time of SYRK (small working set) and KMN (large
//! working set) under the three CIAO variants — the working-set-size
//! sensitivity of §V-D. Shares the time-series machinery of [`super::fig9`].

use crate::experiments::fig9::{self, TimeSeriesResult};
use crate::runner::Runner;
use crate::schedulers::SchedulerKind;
use ciao_workloads::Benchmark;

/// The benchmarks of Fig. 10 (SYRK and KMN).
pub fn fig10_benchmarks() -> Vec<Benchmark> {
    vec![Benchmark::Syrk, Benchmark::Kmn]
}

/// The schedulers of Fig. 10 (CIAO-T, CIAO-P, CIAO-C).
pub fn fig10_schedulers() -> Vec<SchedulerKind> {
    SchedulerKind::ciao_family()
}

/// Runs the Fig. 10 experiment.
pub fn run(
    runner: &Runner,
    benchmarks: &[Benchmark],
    schedulers: &[SchedulerKind],
) -> TimeSeriesResult {
    fig9::run(runner, benchmarks, schedulers)
}

/// Renders the Fig. 10 report.
pub fn render(result: &TimeSeriesResult) -> String {
    fig9::render("Fig. 10", result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunScale;

    #[test]
    fn ciao_variants_compared_on_both_classes() {
        let runner = Runner::new(RunScale::Tiny);
        let result = run(&runner, &[Benchmark::Syrk], &fig10_schedulers());
        assert_eq!(result.series.len(), 3);
        let labels: Vec<&str> = result.series.iter().map(|s| s.scheduler.as_str()).collect();
        assert!(labels.contains(&"CIAO-T"));
        assert!(labels.contains(&"CIAO-P"));
        assert!(labels.contains(&"CIAO-C"));
        assert!(render(&result).contains("Fig. 10"));
    }

    #[test]
    fn default_selection_matches_paper() {
        assert_eq!(fig10_benchmarks(), vec![Benchmark::Syrk, Benchmark::Kmn]);
        assert_eq!(fig10_schedulers().len(), 3);
    }
}
