//! Table II: benchmark characteristics — paper values alongside the values
//! measured on the synthetic workloads (APKI, barriers, class, Fsmem).

use crate::report::{capped_marker, capped_summary, Table};
use crate::runner::{RunRecord, Runner};
use crate::schedulers::SchedulerKind;
use ciao_workloads::Benchmark;
use serde::{Deserialize, Serialize};

/// One row of the reproduced Table II.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Class label from the paper.
    pub class: String,
    /// APKI reported in the paper.
    pub paper_apki: f64,
    /// APKI measured on the synthetic workload (under GTO).
    pub measured_apki: f64,
    /// Best-SWL warp count from the paper.
    pub nwrp: usize,
    /// Shared-memory usage fraction from the paper.
    pub paper_fsmem: f64,
    /// Peak programmer shared-memory bytes observed in simulation.
    pub measured_cta_shared_mem: u32,
    /// Whether the paper lists the benchmark as using barriers.
    pub barriers: bool,
    /// Whether the measuring run hit the instruction/cycle cap (the measured
    /// columns then reflect a truncated execution).
    pub capped: bool,
}

/// The reproduced Table II.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Result {
    /// One row per benchmark, in Table II order.
    pub rows: Vec<Table2Row>,
}

/// Measures the characteristics of the given benchmarks under GTO.
pub fn run(runner: &Runner, benchmarks: &[Benchmark]) -> Table2Result {
    let rows = benchmarks
        .iter()
        .map(|&b| {
            let res = runner.run_one(b, SchedulerKind::Gto);
            let record = RunRecord::from_result(b, SchedulerKind::Gto, &res);
            let info = b.info();
            Table2Row {
                benchmark: b.name().to_string(),
                class: info.class.label().to_string(),
                paper_apki: info.apki,
                measured_apki: record.apki,
                nwrp: info.nwrp,
                paper_fsmem: info.fsmem,
                measured_cta_shared_mem: res.stats.peak_cta_shared_mem,
                barriers: info.barriers,
                capped: res.capped,
            }
        })
        .collect();
    Table2Result { rows }
}

/// Renders the table.
pub fn render(result: &Table2Result) -> String {
    let mut t = Table::new(
        "Table II: benchmark characteristics (paper vs. synthetic workload)",
        &[
            "Benchmark",
            "Class",
            "APKI(paper)",
            "APKI(meas)",
            "Nwrp",
            "Fsmem(paper)",
            "CTA shmem(meas)",
            "Bar.",
        ],
    );
    for r in &result.rows {
        t.row(vec![
            format!("{}{}", r.benchmark, capped_marker(r.capped)),
            r.class.clone(),
            format!("{:.0}", r.paper_apki),
            format!("{:.1}", r.measured_apki),
            r.nwrp.to_string(),
            format!("{:.0}%", r.paper_fsmem * 100.0),
            format!("{}B", r.measured_cta_shared_mem),
            if r.barriers { "Y" } else { "N" }.to_string(),
        ]);
    }
    let mut out = t.render();
    let capped = result.rows.iter().filter(|r| r.capped).count();
    out.push_str(&capped_summary(capped, result.rows.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunScale;

    #[test]
    fn measures_characteristics_for_a_subset() {
        let runner = Runner::new(RunScale::Tiny);
        let result = run(&runner, &[Benchmark::Gesummv, Benchmark::Hotspot]);
        assert_eq!(result.rows.len(), 2);
        let gesummv = &result.rows[0];
        let hotspot = &result.rows[1];
        // The memory-intensive benchmark must measure far higher APKI than the
        // compute-intensive one, mirroring the paper's ordering.
        assert!(
            gesummv.measured_apki > 5.0 * hotspot.measured_apki.max(0.1),
            "GESUMMV {} vs Hotspot {}",
            gesummv.measured_apki,
            hotspot.measured_apki
        );
        // Hotspot reserves programmer shared memory, GESUMMV does not.
        assert!(hotspot.measured_cta_shared_mem > 0);
        assert_eq!(gesummv.measured_cta_shared_mem, 0);
        let text = render(&result);
        assert!(text.contains("GESUMMV"));
        assert!(text.contains("Hotspot"));
    }
}
