//! `fleet` — the cluster-tier experiment: open-loop traffic over a
//! multi-chip fleet under one or both placement policies.
//!
//! One calibration table is measured against the real chip engine (unless a
//! reference table is requested) and shared across every policy run, so a
//! bin-pack vs interference-spread comparison differs only in placement.
//! When both policies run, the report closes with a verdict comparing fleet
//! STP — the acceptance check that interference-aware spread pays off on
//! cache-heavy traffic.

use gpu_fleet::{
    Calibration, Fleet, FleetRequest, FleetResult, PlacementPolicy, SloPolicy, TrafficSpec,
};
use gpu_sim::ObsLevel;
use serde::Serialize;

use crate::report::Table;
use crate::runner::log;

/// Everything one `fleet` invocation needs.
#[derive(Debug, Clone)]
pub struct FleetPlan {
    /// Number of chips in the fleet.
    pub chips: usize,
    /// SMs per chip (calibration configuration).
    pub sms: usize,
    /// Arrivals to generate.
    pub arrivals: usize,
    /// Traffic seed.
    pub seed: u64,
    /// Traffic profile name ([`TrafficSpec::PROFILES`]).
    pub profile: String,
    /// Mean inter-arrival gap override in cycles (None = profile default).
    pub mean_interarrival: Option<f64>,
    /// Policies to run (one, or both for the comparison verdict).
    pub policies: Vec<PlacementPolicy>,
    /// Worker threads for the chip-advancement phases (wall-clock only).
    pub workers: usize,
    /// `true` skips engine calibration and uses the pinned reference table
    /// (tests and smoke runs).
    pub reference_calibration: bool,
    /// Observability level for the fleet run.
    pub obs: ObsLevel,
}

impl Default for FleetPlan {
    fn default() -> Self {
        FleetPlan {
            chips: 4,
            sms: 8,
            arrivals: 100_000,
            seed: 0,
            profile: "balanced".to_string(),
            mean_interarrival: None,
            policies: PlacementPolicy::ALL.to_vec(),
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            reference_calibration: false,
            obs: ObsLevel::Off,
        }
    }
}

/// The serialisable result of one `fleet` invocation: one [`FleetResult`]
/// per policy (in run order) plus the STP verdict when both policies ran.
#[derive(Debug, Clone, Serialize)]
pub struct FleetExperiment {
    /// Per-policy fleet results.
    pub results: Vec<FleetResult>,
    /// Spread-vs-pack STP verdict (present when ≥ 2 policies ran).
    pub verdict: Option<String>,
}

/// Builds the traffic spec for a plan, exiting on an unknown profile name.
pub fn traffic_for(plan: &FleetPlan) -> Option<TrafficSpec> {
    let mut traffic = TrafficSpec::profile(&plan.profile, plan.arrivals, plan.seed)?;
    if let Some(mean) = plan.mean_interarrival {
        traffic = traffic.with_mean_interarrival(mean);
    }
    Some(traffic)
}

/// Runs the plan: calibrate once, execute every requested policy on the
/// identical traffic and calibration, compare.
pub fn run(plan: &FleetPlan) -> FleetExperiment {
    let traffic = traffic_for(plan).expect("profile validated by the caller");
    let calib = if plan.reference_calibration {
        Calibration::reference(plan.sms)
    } else {
        log(format_args!("calibrating the chip model against the engine ({} SMs) ...", plan.sms));
        Calibration::measure(plan.sms)
    };
    let fleet = Fleet::new();
    let mut results = Vec::new();
    for policy in &plan.policies {
        log(format_args!(
            "fleet: {} chips × {} SMs, {} arrivals ({}), placement {} ...",
            plan.chips,
            plan.sms,
            plan.arrivals,
            plan.profile,
            policy.label()
        ));
        let req = FleetRequest::new(traffic.clone())
            .chips(plan.chips)
            .sms_per_chip(plan.sms)
            .placement(*policy)
            .workers(plan.workers)
            .slo(SloPolicy::default())
            .obs(plan.obs)
            .calibration(calib.clone());
        results.push(fleet.execute(req));
    }
    let verdict = stp_verdict(&results);
    FleetExperiment { results, verdict }
}

/// The spread-vs-pack STP verdict line, when both results are present.
fn stp_verdict(results: &[FleetResult]) -> Option<String> {
    let spread =
        results.iter().find(|r| r.placement == PlacementPolicy::InterferenceSpread.label())?;
    let pack = results.iter().find(|r| r.placement == PlacementPolicy::BinPack.label())?;
    let gain = (spread.fleet_stp / pack.fleet_stp.max(1e-12) - 1.0) * 100.0;
    Some(format!(
        "interference-spread STP {:.3} vs bin-pack {:.3} ({:+.1}%) — \
         SLO violations {} vs {}",
        spread.fleet_stp,
        pack.fleet_stp,
        gain,
        spread.total_slo_violations(),
        pack.total_slo_violations(),
    ))
}

/// Renders the plain-text report: a fleet-summary table, per-class SLO
/// tables per policy, a per-chip utilization table per policy, and the
/// verdict.
pub fn render(r: &FleetExperiment) -> String {
    let mut out = String::new();
    let mut summary = Table::new(
        "Fleet summary",
        &["placement", "chips", "arrivals", "makespan", "fleet STP", "SLO violations"],
    );
    for res in &r.results {
        summary.row(vec![
            res.placement.clone(),
            res.chips.to_string(),
            res.arrivals.to_string(),
            res.makespan.to_string(),
            format!("{:.3}", res.fleet_stp),
            res.total_slo_violations().to_string(),
        ]);
    }
    out.push_str(&summary.render());

    for res in &r.results {
        let mut classes = Table::new(
            format!("Per-class turnaround / SLO — {}", res.placement),
            &[
                "class",
                "latency",
                "jobs",
                "mean",
                "p50",
                "p99",
                "slowdown",
                "SLO mult",
                "violations",
            ],
        );
        for c in &res.per_class {
            classes.row(vec![
                c.class.clone(),
                c.latency.clone(),
                c.jobs.to_string(),
                format!("{:.0}", c.mean_turnaround),
                c.p50_turnaround.to_string(),
                c.p99_turnaround.to_string(),
                format!("{:.2}x", c.mean_slowdown),
                format!("{:.0}x", c.slo_target_mult),
                c.slo_violations.to_string(),
            ]);
        }
        out.push_str(&classes.render());

        let mut chips = Table::new(
            format!("Per-chip utilization — {}", res.placement),
            &["chip", "completed", "busy cycles", "util", "cls cache", "cls stream", "peak queue"],
        );
        for c in &res.per_chip {
            chips.row(vec![
                c.chip.to_string(),
                c.completed.to_string(),
                c.busy_cycles.to_string(),
                format!("{:.1}%", c.utilization * 100.0),
                c.classified_cache.to_string(),
                c.classified_stream.to_string(),
                c.peak_queue.to_string(),
            ]);
        }
        out.push_str(&chips.render());
    }

    if let Some(v) = &r.verdict {
        out.push_str(v);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_plan() -> FleetPlan {
        FleetPlan {
            chips: 2,
            arrivals: 1_000,
            policies: PlacementPolicy::ALL.to_vec(),
            reference_calibration: true,
            workers: 2,
            ..FleetPlan::default()
        }
    }

    #[test]
    fn run_produces_one_result_per_policy_and_a_verdict() {
        let r = run(&quick_plan());
        assert_eq!(r.results.len(), 2);
        assert!(r.verdict.is_some());
        for res in &r.results {
            assert_eq!(res.arrivals, 1_000);
        }
        let text = render(&r);
        assert!(text.contains("Fleet summary"));
        assert!(text.contains("interference-spread"));
        assert!(text.contains("Per-chip utilization"));
    }

    #[test]
    fn single_policy_run_has_no_verdict() {
        let mut plan = quick_plan();
        plan.policies = vec![PlacementPolicy::BinPack];
        let r = run(&plan);
        assert_eq!(r.results.len(), 1);
        assert!(r.verdict.is_none());
    }

    #[test]
    fn unknown_profile_is_rejected() {
        let plan = FleetPlan { profile: "bursty".into(), ..quick_plan() };
        assert!(traffic_for(&plan).is_none());
    }
}
