//! Capacity curves: multi-tenant STP (and ANTT) as a function of chip size,
//! per dispatch policy — the ROADMAP's "capacity curves (STP vs SM count per
//! policy)" item.
//!
//! For every requested SM count the experiment re-runs the mix experiment
//! (solo baselines are re-measured at that SM count — a tenant's `alone` IPC
//! is itself a function of chip size) and extracts one `(SM count, mix,
//! policy)` point per co-run. The rendered report prints one table per mix
//! with SM counts as rows and policies as columns, which is the shape the
//! curves are plotted from.

use crate::experiments::mix as mix_experiment;
use crate::report::Table;
use crate::runner::Runner;
use crate::schedulers::SchedulerKind;
use ciao_workloads::Mix;
use gpu_sim::DispatchPolicy;
use serde::{Deserialize, Serialize};

/// One `(SM count, mix, policy)` measurement of the sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CapacityPoint {
    /// Number of SMs of the simulated chip.
    pub sms: usize,
    /// Mix name.
    pub mix: String,
    /// Dispatch policy label.
    pub policy: String,
    /// System throughput of the co-run at this chip size.
    pub stp: f64,
    /// Average normalized turnaround time at this chip size.
    pub antt: f64,
    /// Tenants starved outright at this chip size.
    pub starved_tenants: usize,
    /// Whether the co-run hit the simulation cap.
    pub capped: bool,
}

/// Full result of the capacity sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CapacityResult {
    /// Run scale label.
    pub scale: String,
    /// Experiment seed.
    pub seed: u64,
    /// The SM counts swept, in order.
    pub sm_counts: Vec<usize>,
    /// Scheduler the sweep ran under.
    pub scheduler: String,
    /// Every measured point, in (SM count, mix, policy) order.
    pub points: Vec<CapacityPoint>,
}

/// The default chip sizes swept: small chips up to the paper's 15-SM machine.
pub fn default_sm_counts() -> Vec<usize> {
    vec![2, 4, 8, 15]
}

/// Runs `mixes × policies` co-runs at every SM count of the sweep under
/// `scheduler`, re-measuring solo baselines per chip size.
pub fn run(
    runner: &Runner,
    sm_counts: &[usize],
    mixes: &[Mix],
    policies: &[DispatchPolicy],
    scheduler: SchedulerKind,
) -> CapacityResult {
    let mut points = Vec::new();
    for &sms in sm_counts {
        let sized = runner.clone().with_sms(sms);
        let result = mix_experiment::run(&sized, mixes, policies, &[scheduler]);
        for row in result.rows {
            points.push(CapacityPoint {
                sms,
                mix: row.mix,
                policy: row.policy,
                stp: row.stp,
                antt: row.antt,
                starved_tenants: row.starved_tenants,
                capped: row.capped,
            });
        }
    }
    CapacityResult {
        scale: format!("{:?}", runner.scale),
        seed: runner.seed,
        sm_counts: sm_counts.to_vec(),
        scheduler: scheduler.label().to_string(),
        points,
    }
}

/// Plain-text report: one STP table per mix (rows = SM counts, columns =
/// policies), with starved/capped markers inline.
pub fn render(result: &CapacityResult) -> String {
    let mut out = String::new();
    let mixes: Vec<String> = {
        let mut seen = Vec::new();
        for p in &result.points {
            if !seen.contains(&p.mix) {
                seen.push(p.mix.clone());
            }
        }
        seen
    };
    let policies: Vec<String> = {
        let mut seen = Vec::new();
        for p in &result.points {
            if !seen.contains(&p.policy) {
                seen.push(p.policy.clone());
            }
        }
        seen
    };
    for mix in &mixes {
        let mut header: Vec<&str> = vec!["SMs"];
        header.extend(policies.iter().map(String::as_str));
        let mut table = Table::new(
            format!(
                "Capacity curve — {mix} STP vs SM count ({} scale, seed {}, {})",
                result.scale, result.seed, result.scheduler
            ),
            &header,
        );
        for &sms in &result.sm_counts {
            let mut cells = vec![sms.to_string()];
            for policy in &policies {
                let cell = result
                    .points
                    .iter()
                    .find(|p| p.sms == sms && &p.mix == mix && &p.policy == policy)
                    .map(|p| {
                        let mark = if p.starved_tenants > 0 {
                            "!"
                        } else if p.capped {
                            "*"
                        } else {
                            ""
                        };
                        format!("{:.3}{mark}", p.stp)
                    })
                    .unwrap_or_else(|| "-".to_string());
                cells.push(cell);
            }
            table.row(cells);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out.push_str("(! = a tenant starved, * = run hit the simulation cap)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunScale;

    #[test]
    fn capacity_sweep_measures_every_point_and_renders() {
        let runner = Runner::new(RunScale::Tiny);
        let result = run(
            &runner,
            &[2, 4],
            &[Mix::CacheCompute],
            &[DispatchPolicy::SharedRoundRobin, DispatchPolicy::InterferenceAware],
            SchedulerKind::Gto,
        );
        assert_eq!(result.sm_counts, vec![2, 4]);
        assert_eq!(result.points.len(), 4, "2 SM counts × 1 mix × 2 policies");
        for p in &result.points {
            assert!(p.stp > 0.0, "{}/{}@{}: STP must be positive", p.mix, p.policy, p.sms);
            assert!(p.antt >= 1.0 - 1e-9);
        }
        // More SMs must not *reduce* shared-rr STP on this light mix.
        let stp_at = |sms: usize| {
            result.points.iter().find(|p| p.sms == sms && p.policy == "shared-rr").unwrap().stp
        };
        assert!(stp_at(4) >= 0.8 * stp_at(2), "capacity curve collapsed between 2 and 4 SMs");
        let text = render(&result);
        assert!(text.contains("Capacity curve"));
        assert!(text.contains("shared-rr"));
        assert!(text.contains("interference-aware"));
        // JSON round-trip (the harness archives the sweep).
        let json = serde_json::to_string(&result).expect("serialise");
        let back: CapacityResult = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.points.len(), result.points.len());
    }
}
