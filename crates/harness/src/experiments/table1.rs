//! Table I: the simulated machine configuration.

use crate::report::Table;
use gpu_sim::config::{table1_rows, GpuConfig};
use serde::{Deserialize, Serialize};

/// The reproduced Table I.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Result {
    /// (parameter, value) rows.
    pub rows: Vec<(String, String)>,
}

/// Builds Table I for a machine configuration.
pub fn run(config: &GpuConfig) -> Table1Result {
    Table1Result { rows: table1_rows(config) }
}

/// Renders the table.
pub fn render(result: &Table1Result) -> String {
    let mut t = Table::new("Table I: GPGPU-Sim-equivalent configuration", &["Parameter", "Value"]);
    for (k, v) in &result.rows {
        t.row(vec![k.clone(), v.clone()]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table1_values() {
        let r = run(&GpuConfig::gtx480());
        let text = render(&r);
        assert!(text.contains("15, max 1536 per SM"));
        assert!(text.contains("16KB"));
        assert!(text.contains("48KB"));
        assert!(text.contains("768KB"));
        assert!(text.contains("tCL=12"));
    }
}
