//! Figure 8: overall performance of the seven schedulers.
//!
//! * **8a** — per-benchmark IPC normalised to GTO, plus the geometric mean of
//!   each benchmark class (LWS, SWS, CI) and overall;
//! * **8b** — shared-memory utilisation ratio of the CIAO-P redirect cache,
//!   aggregated per class.

use crate::report::{capped_marker, capped_summary, geometric_mean, Table};
use crate::runner::{normalize_to, RunRecord, Runner};
use crate::schedulers::SchedulerKind;
use ciao_workloads::{Benchmark, BenchmarkClass};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Combined Fig. 8 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Result {
    /// Raw per-run records.
    pub records: Vec<RunRecord>,
    /// (benchmark, scheduler) → IPC normalised to GTO.
    pub normalized: Vec<(String, String, f64)>,
    /// Per-class geometric means: class label → (scheduler → geomean).
    pub class_geomeans: BTreeMap<String, BTreeMap<String, f64>>,
    /// Overall geometric mean per scheduler.
    pub overall_geomeans: BTreeMap<String, f64>,
    /// Shared-memory cache utilisation per class under CIAO-P (Fig. 8b).
    pub shmem_utilization: BTreeMap<String, f64>,
}

/// Runs the Fig. 8 experiment over `benchmarks` and `schedulers`.
pub fn run(runner: &Runner, benchmarks: &[Benchmark], schedulers: &[SchedulerKind]) -> Fig8Result {
    let records = runner.run_matrix(benchmarks, schedulers);
    summarize(records, benchmarks)
}

/// Aggregates pre-computed records into the Fig. 8 summary (kept separate so
/// other experiments and tests can reuse it).
pub fn summarize(records: Vec<RunRecord>, benchmarks: &[Benchmark]) -> Fig8Result {
    let normalized = normalize_to(&records, SchedulerKind::Gto.label());

    let mut class_geomeans: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
    let mut overall_geomeans: BTreeMap<String, f64> = BTreeMap::new();
    let schedulers: Vec<String> = {
        let mut seen = Vec::new();
        for r in &records {
            if !seen.contains(&r.scheduler) {
                seen.push(r.scheduler.clone());
            }
        }
        seen
    };
    for sched in &schedulers {
        let all: Vec<f64> =
            normalized.iter().filter(|(_, s, _)| s == sched).map(|&(_, _, v)| v).collect();
        overall_geomeans.insert(sched.clone(), geometric_mean(&all));
        for class in [BenchmarkClass::Lws, BenchmarkClass::Sws, BenchmarkClass::Ci] {
            let members: Vec<&str> =
                benchmarks.iter().filter(|b| b.class() == class).map(|b| b.name()).collect();
            if members.is_empty() {
                continue;
            }
            let values: Vec<f64> = normalized
                .iter()
                .filter(|(b, s, _)| s == sched && members.contains(&b.as_str()))
                .map(|&(_, _, v)| v)
                .collect();
            class_geomeans
                .entry(class.label().to_string())
                .or_default()
                .insert(sched.clone(), geometric_mean(&values));
        }
    }

    // Fig. 8b: shared-memory utilisation of the redirect cache under CIAO-P.
    let mut shmem_utilization = BTreeMap::new();
    for class in [BenchmarkClass::Lws, BenchmarkClass::Sws, BenchmarkClass::Ci] {
        let members: Vec<&str> =
            benchmarks.iter().filter(|b| b.class() == class).map(|b| b.name()).collect();
        let values: Vec<f64> = records
            .iter()
            .filter(|r| {
                r.scheduler == SchedulerKind::CiaoP.label()
                    && members.contains(&r.benchmark.as_str())
            })
            .map(|r| r.redirect_utilization)
            .collect();
        if !values.is_empty() {
            shmem_utilization.insert(
                class.label().to_string(),
                values.iter().sum::<f64>() / values.len() as f64,
            );
        }
    }

    Fig8Result { records, normalized, class_geomeans, overall_geomeans, shmem_utilization }
}

/// Renders both panels.
pub fn render(result: &Fig8Result) -> String {
    let mut out = String::new();
    let schedulers: Vec<String> = result.overall_geomeans.keys().cloned().collect();

    let mut header = vec!["Benchmark".to_string()];
    header.extend(schedulers.iter().cloned());
    let mut t = Table::new("Fig. 8a: IPC normalised to GTO", &[]);
    t.row(header);
    let mut benchmarks: Vec<String> = Vec::new();
    for (b, _, _) in &result.normalized {
        if !benchmarks.contains(b) {
            benchmarks.push(b.clone());
        }
    }
    for b in &benchmarks {
        let any_capped = result.records.iter().any(|r| &r.benchmark == b && r.capped);
        let mut row = vec![format!("{b}{}", capped_marker(any_capped))];
        for s in &schedulers {
            let v = result
                .normalized
                .iter()
                .find(|(bb, ss, _)| bb == b && ss == s)
                .map(|&(_, _, v)| v)
                .unwrap_or(0.0);
            row.push(format!("{v:.2}"));
        }
        t.row(row);
    }
    for (class, per_sched) in &result.class_geomeans {
        let mut row = vec![format!("geomean {class}")];
        for s in &schedulers {
            row.push(format!("{:.2}", per_sched.get(s).copied().unwrap_or(0.0)));
        }
        t.row(row);
    }
    let mut row = vec!["geomean ALL".to_string()];
    for s in &schedulers {
        row.push(format!("{:.2}", result.overall_geomeans.get(s).copied().unwrap_or(0.0)));
    }
    t.row(row);
    out.push_str(&t.render());
    let capped_runs = result.records.iter().filter(|r| r.capped).count();
    out.push_str(&capped_summary(capped_runs, result.records.len()));
    out.push('\n');

    let mut u =
        Table::new("Fig. 8b: shared-memory utilisation under CIAO-P", &["Class", "Utilisation"]);
    for (class, util) in &result.shmem_utilization {
        u.row(vec![class.clone(), format!("{util:.2}")]);
    }
    out.push_str(&u.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunScale;

    #[test]
    fn summarises_subset() {
        let runner = Runner::new(RunScale::Tiny);
        let benchmarks = [Benchmark::Syrk, Benchmark::Nn];
        let schedulers = [SchedulerKind::Gto, SchedulerKind::CiaoC, SchedulerKind::CiaoP];
        let result = run(&runner, &benchmarks, &schedulers);
        assert_eq!(result.records.len(), 6);
        // GTO normalises to exactly 1.0 on every benchmark.
        for (_, s, v) in &result.normalized {
            if s == "GTO" {
                assert!((v - 1.0).abs() < 1e-9);
            }
        }
        assert!(result.overall_geomeans.contains_key("CIAO-C"));
        assert!(result.shmem_utilization.contains_key("SWS"));
        let text = render(&result);
        assert!(text.contains("Fig. 8a"));
        assert!(text.contains("geomean ALL"));
        assert!(text.contains("Fig. 8b"));
    }
}
