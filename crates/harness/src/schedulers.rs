//! The seven warp schedulers of §V-A, built behind one enum so every
//! experiment iterates over the same list.

use ciao_core::{CiaoParams, CiaoVariant};
use ciao_schedulers::{CcwsConfig, CcwsScheduler, PcalConfig, PcalScheduler, SwlScheduler};
use ciao_workloads::Benchmark;
use gpu_sim::redirect::RedirectCache;
use gpu_sim::scheduler::{GtoScheduler, WarpScheduler};
use gpu_sim::GpuConfig;
use serde::{Deserialize, Serialize};

/// The warp schedulers evaluated in the paper (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// GTO with XOR set-index hashing (the baseline all IPCs are normalised to).
    Gto,
    /// Cache-Conscious Wavefront Scheduling.
    Ccws,
    /// Best static wavefront limiting (per-benchmark profiled warp count).
    BestSwl,
    /// statPCAL-style bypass scheme.
    StatPcal,
    /// CIAO with only selective throttling.
    CiaoT,
    /// CIAO with only shared-memory redirection.
    CiaoP,
    /// CIAO with both mechanisms.
    CiaoC,
}

impl SchedulerKind {
    /// All seven schedulers in the order of Fig. 8a's legend.
    pub fn all() -> Vec<SchedulerKind> {
        vec![
            SchedulerKind::Gto,
            SchedulerKind::Ccws,
            SchedulerKind::BestSwl,
            SchedulerKind::StatPcal,
            SchedulerKind::CiaoT,
            SchedulerKind::CiaoP,
            SchedulerKind::CiaoC,
        ]
    }

    /// The CIAO family only.
    pub fn ciao_family() -> Vec<SchedulerKind> {
        vec![SchedulerKind::CiaoT, SchedulerKind::CiaoP, SchedulerKind::CiaoC]
    }

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::Gto => "GTO",
            SchedulerKind::Ccws => "CCWS",
            SchedulerKind::BestSwl => "Best-SWL",
            SchedulerKind::StatPcal => "statPCAL",
            SchedulerKind::CiaoT => "CIAO-T",
            SchedulerKind::CiaoP => "CIAO-P",
            SchedulerKind::CiaoC => "CIAO-C",
        }
    }

    /// Parses a label (case-insensitive).
    pub fn from_label(label: &str) -> Option<SchedulerKind> {
        Self::all().into_iter().find(|s| s.label().eq_ignore_ascii_case(label))
    }

    /// Builds the scheduler (and the redirect cache for the CIAO variants
    /// that need one) for a particular benchmark and machine configuration.
    ///
    /// `params` only affects the CIAO variants; Best-SWL and statPCAL take
    /// their warp/token budget from the benchmark's profiled `Nwrp`.
    pub fn build(
        self,
        benchmark: Benchmark,
        config: &GpuConfig,
        params: &CiaoParams,
    ) -> (Box<dyn WarpScheduler>, Option<Box<dyn RedirectCache>>) {
        match self {
            SchedulerKind::Gto => (Box::new(GtoScheduler::new()), None),
            SchedulerKind::Ccws => {
                let ccws = CcwsScheduler::new(CcwsConfig {
                    num_warps: config.max_warps_per_sm,
                    ..CcwsConfig::default()
                });
                (Box::new(ccws), None)
            }
            SchedulerKind::BestSwl => (
                Box::new(SwlScheduler::new(benchmark.best_swl_warps(), config.max_warps_per_sm)),
                None,
            ),
            SchedulerKind::StatPcal => {
                let tokens = benchmark.best_swl_warps();
                let pcal = PcalScheduler::new(PcalConfig {
                    num_warps: config.max_warps_per_sm,
                    ..PcalConfig::with_tokens(tokens)
                });
                (Box::new(pcal), None)
            }
            SchedulerKind::CiaoT => CiaoVariant::ThrottleOnly.build(params, config),
            SchedulerKind::CiaoP => CiaoVariant::PartitionOnly.build(params, config),
            SchedulerKind::CiaoC => CiaoVariant::Combined.build(params, config),
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_schedulers() {
        assert_eq!(SchedulerKind::all().len(), 7);
        assert_eq!(SchedulerKind::ciao_family().len(), 3);
    }

    #[test]
    fn labels_round_trip() {
        for s in SchedulerKind::all() {
            assert_eq!(SchedulerKind::from_label(s.label()), Some(s));
            assert_eq!(format!("{s}"), s.label());
        }
        assert_eq!(SchedulerKind::from_label("nope"), None);
    }

    #[test]
    fn build_produces_matching_names_and_redirects() {
        let cfg = GpuConfig::gtx480();
        let params = CiaoParams::default();
        for kind in SchedulerKind::all() {
            let (sched, redirect) = kind.build(Benchmark::Atax, &cfg, &params);
            assert_eq!(sched.name(), kind.label());
            let should_have_redirect = matches!(kind, SchedulerKind::CiaoP | SchedulerKind::CiaoC);
            assert_eq!(redirect.is_some(), should_have_redirect, "{kind}");
        }
    }

    #[test]
    fn best_swl_uses_profiled_nwrp() {
        let cfg = GpuConfig::gtx480();
        let params = CiaoParams::default();
        // ATAX's profiled limit is 2: warps 0 and 1 run, warp 2 is throttled.
        let (sched, _) = SchedulerKind::BestSwl.build(Benchmark::Atax, &cfg, &params);
        assert!(sched.is_throttled(2));
        assert!(!sched.is_throttled(1));
        // PVC's limit is 48: nothing throttled.
        let (sched, _) = SchedulerKind::BestSwl.build(Benchmark::Pvc, &cfg, &params);
        assert!(!sched.is_throttled(47));
    }
}
