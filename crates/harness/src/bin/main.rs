//! `ciao-harness` — command-line front end reproducing every table and figure
//! of the CIAO paper.
//!
//! ```text
//! ciao-harness <experiment> [--quick|--tiny] [--out DIR]
//!
//! experiments: table1 table2 fig1 fig4 fig8 fig9 fig10 fig11 fig12 overhead all
//! ```
//!
//! Text reports go to stdout; when `--out DIR` is given, each experiment also
//! writes `<experiment>.txt` and `<experiment>.json` into the directory.

use ciao_harness::experiments::{
    fig1, fig10, fig11, fig12, fig4, fig8, fig9, overhead, table1, table2,
};
use ciao_harness::report::write_json;
use ciao_harness::runner::{RunScale, Runner};
use ciao_harness::schedulers::SchedulerKind;
use ciao_workloads::Benchmark;
use serde::Serialize;
use std::path::PathBuf;

struct Options {
    experiment: String,
    scale: RunScale,
    out_dir: Option<PathBuf>,
}

fn parse_args() -> Options {
    let mut experiment = String::from("all");
    let mut scale = RunScale::Full;
    let mut out_dir = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = RunScale::Quick,
            "--tiny" => scale = RunScale::Tiny,
            "--full" => scale = RunScale::Full,
            "--out" => out_dir = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!(
                    "usage: ciao-harness <table1|table2|fig1|fig4|fig8|fig9|fig10|fig11|fig12|overhead|all> [--quick|--tiny|--full] [--out DIR]"
                );
                std::process::exit(0);
            }
            other if !other.starts_with('-') => experiment = other.to_string(),
            other => {
                eprintln!("unknown option: {other}");
                std::process::exit(2);
            }
        }
    }
    Options { experiment, scale, out_dir }
}

fn emit<T: Serialize>(opts: &Options, name: &str, text: &str, value: &T) {
    println!("{text}");
    if let Some(dir) = &opts.out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {dir:?}: {e}");
            return;
        }
        if let Err(e) = std::fs::write(dir.join(format!("{name}.txt")), text) {
            eprintln!("warning: cannot write {name}.txt: {e}");
        }
        if let Err(e) = write_json(&dir.join(format!("{name}.json")), value) {
            eprintln!("warning: cannot write {name}.json: {e}");
        }
    }
}

fn run_experiment(opts: &Options, name: &str, runner: &Runner) {
    match name {
        "table1" => {
            let r = table1::run(&runner.effective_config());
            emit(opts, "table1", &table1::render(&r), &r);
        }
        "table2" => {
            let r = table2::run(runner, &Benchmark::all());
            emit(opts, "table2", &table2::render(&r), &r);
        }
        "fig1" | "fig1a" | "fig1b" => {
            let r = fig1::run(runner, Benchmark::Backprop);
            emit(opts, "fig1", &fig1::render(&r), &r);
        }
        "fig4" | "fig4a" | "fig4b" => {
            let r = fig4::run(runner, Benchmark::Kmn, &Benchmark::memory_intensive());
            emit(opts, "fig4", &fig4::render(&r), &r);
        }
        "fig8" | "fig8a" | "fig8b" => {
            let r = fig8::run(runner, &Benchmark::all(), &SchedulerKind::all());
            emit(opts, "fig8", &fig8::render(&r), &r);
        }
        "fig9" => {
            let r = fig9::run(runner, &fig9::fig9_benchmarks(), &fig9::fig9_schedulers());
            emit(opts, "fig9", &fig9::render("Fig. 9", &r), &r);
        }
        "fig10" => {
            let r = fig10::run(runner, &fig10::fig10_benchmarks(), &fig10::fig10_schedulers());
            emit(opts, "fig10", &fig10::render(&r), &r);
        }
        "fig11" | "fig11a" | "fig11b" => {
            let r = fig11::run(runner, &fig11::sensitivity_benchmarks());
            emit(opts, "fig11", &fig11::render(&r), &r);
        }
        "fig12" | "fig12a" | "fig12b" => {
            let r = fig12::run(runner, &Benchmark::memory_intensive());
            emit(opts, "fig12", &fig12::render(&r), &r);
        }
        "overhead" => {
            let r = overhead::run();
            emit(opts, "overhead", &overhead::render(&r), &r);
        }
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let opts = parse_args();
    let runner = Runner::new(opts.scale);
    eprintln!(
        "[ciao-harness] scale: {:?} ({} instructions/run cap), {} worker threads",
        opts.scale,
        opts.scale.max_instructions(),
        runner.threads
    );
    if opts.experiment == "all" {
        for name in [
            "table1", "table2", "fig1", "fig4", "fig8", "fig9", "fig10", "fig11", "fig12",
            "overhead",
        ] {
            eprintln!("[ciao-harness] running {name} ...");
            run_experiment(&opts, name, &runner);
        }
    } else {
        run_experiment(&opts, &opts.experiment, &runner);
    }
}
