//! `ciao-harness` — command-line front end reproducing every table and figure
//! of the CIAO paper.
//!
//! ```text
//! ciao-harness <experiment> [--quick|--tiny] [--sms N] [--seed N] [--out DIR]
//!
//! experiments: table1 table2 fig1 fig4 fig8 fig9 fig10 fig11 fig12 overhead mix perf all
//! ```
//!
//! `--sms N` simulates every run on an N-SM chip (parallel per-SM execution
//! against a shared banked L2/DRAM); the default of 1 is the legacy
//! single-SM model all recorded baselines use. `--seed N` replicates every
//! synthetic trace under a different seed (0 = the historical traces).
//!
//! `mix` co-runs the named multi-tenant benchmark mixes across the three SM
//! partitioning policies (exclusive, spatial, shared-rr) × schedulers and
//! reports per-tenant IPC, STP, ANTT and L2-contention shares. `--mix NAME`
//! and `--policy LABEL` narrow the sweep.
//!
//! `capacity` (alias `--capacity-curve`) sweeps STP vs chip size: every mix ×
//! policy co-run is repeated at each `--sm-counts A,B,..` chip size (default
//! 2,4,8,15), with solo baselines re-measured per size.
//!
//! `trace` runs one fully observed co-run (default: cache-vs-stream under
//! interference-aware dispatch with CIAO-T) and writes a Perfetto-loadable
//! Chrome trace (`--trace-out`, default `run.trace.json`) plus the metrics
//! registry (`--metrics-out`, default `metrics.json`). `profile` runs the
//! same co-run under **both** timing backends and prints each wall-clock
//! phase table. `--obs {off,metrics,full}` arms observability on any other
//! experiment; `-v`/`--quiet` adjust diagnostic verbosity.
//!
//! `fleet` runs the cluster tier: `--chips N` chips of `--sms N` SMs fed by
//! `--arrivals N` open-loop kernel arrivals (`--traffic` picks the profile,
//! `--mean-interarrival` the load) placed by `--placement` (default `both`:
//! bin-pack and interference-spread on identical traffic, closing with the
//! STP verdict). The chip model is calibrated against the real engine once
//! per invocation (`--reference-calibration` uses the pinned table
//! instead); `--workers N` parallelises chip advancement without changing a
//! single output bit.
//!
//! `perf` is the CI performance gate: it measures the benchmark suite under
//! GTO and CIAO-C, writes `BENCH_PR.json` (override with `--bench-out`), and
//! exits non-zero if the gated geomean IPCs drift more than ±10% from the
//! snapshot recorded for the same (scale, SM-count) configuration in
//! `bench/baseline.json` (override with `--baseline`). `--with-mixes` also
//! measures every mix's STP; `--merge-baseline` records the measured snapshot
//! into the baseline file (regeneration mode) instead of gating against it.
//!
//! Text reports go to stdout; when `--out DIR` is given, each experiment also
//! writes `<experiment>.txt` and `<experiment>.json` into the directory.

use ciao_harness::experiments::{
    capacity, fig1, fig10, fig11, fig12, fig4, fig8, fig9, fleet, mix, overhead, table1, table2,
};
use ciao_harness::perf;
use ciao_harness::report::write_json;
use ciao_harness::runner::{log, set_verbosity, RunPlan, RunScale, Runner};
use ciao_harness::schedulers::SchedulerKind;
use ciao_workloads::{Benchmark, Mix};
use gpu_sim::{BackendKind, DispatchPolicy, ObsLevel};
use serde::Serialize;
use std::path::{Path, PathBuf};

struct Options {
    experiment: String,
    scale: RunScale,
    out_dir: Option<PathBuf>,
    sms: usize,
    seeds: Vec<u64>,
    arrivals: u64,
    backend: BackendKind,
    baseline: PathBuf,
    bench_out: PathBuf,
    allow_missing_baseline: bool,
    with_mixes: bool,
    merge_baseline: bool,
    mix_filter: Option<String>,
    policy_filter: Option<String>,
    sm_counts: Option<Vec<usize>>,
    obs: ObsLevel,
    trace_out: PathBuf,
    metrics_out: PathBuf,
    chips: usize,
    placement_filter: Option<String>,
    traffic_profile: String,
    workers: Option<usize>,
    mean_interarrival: Option<f64>,
    reference_calibration: bool,
}

impl Options {
    fn seed(&self) -> u64 {
        self.seeds.first().copied().unwrap_or(0)
    }
}

/// Parses a `--seed` value: a single seed (`3`) or an inclusive-exclusive
/// range (`0..3` = seeds 0, 1, 2) for seed-averaged sweeps.
fn parse_seeds(value: &str) -> Option<Vec<u64>> {
    if let Some((a, b)) = value.split_once("..") {
        let (a, b): (u64, u64) = (a.trim().parse().ok()?, b.trim().parse().ok()?);
        if a >= b {
            return None;
        }
        Some((a..b).collect())
    } else {
        Some(vec![value.trim().parse().ok()?])
    }
}

fn parse_args() -> Options {
    let mut experiment = String::from("all");
    let mut scale = RunScale::Full;
    let mut out_dir = None;
    let mut sms = 1usize;
    let mut seeds = vec![0u64];
    let mut arrivals = 0u64;
    let mut backend = BackendKind::default();
    let mut baseline = PathBuf::from("bench/baseline.json");
    let mut bench_out = PathBuf::from("BENCH_PR.json");
    let mut allow_missing_baseline = false;
    let mut with_mixes = false;
    let mut merge_baseline = false;
    let mut mix_filter = None;
    let mut policy_filter = None;
    let mut sm_counts = None;
    let mut obs = ObsLevel::Off;
    let mut trace_out = PathBuf::from("run.trace.json");
    let mut metrics_out = PathBuf::from("metrics.json");
    let mut chips = 4usize;
    let mut placement_filter = None;
    let mut traffic_profile = String::from("balanced");
    let mut workers = None;
    let mut mean_interarrival = None;
    let mut reference_calibration = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--capacity-curve" => experiment = "capacity".to_string(),
            "--sm-counts" => {
                let parsed: Option<Vec<usize>> = args.next().map(|v| {
                    v.split(',')
                        .map(|s| s.trim().parse::<usize>().ok().filter(|&n| n >= 2))
                        .collect::<Option<Vec<usize>>>()
                        .unwrap_or_default()
                });
                sm_counts = match parsed {
                    Some(list) if !list.is_empty() => Some(list),
                    _ => {
                        eprintln!(
                            "--sm-counts expects a comma list of integers >= 2 (e.g. 2,4,8,15)"
                        );
                        std::process::exit(2);
                    }
                };
            }
            "--quick" => scale = RunScale::Quick,
            "--tiny" => scale = RunScale::Tiny,
            "--full" => scale = RunScale::Full,
            "--out" => out_dir = args.next().map(PathBuf::from),
            "--sms" => {
                sms = args.next().and_then(|v| v.parse().ok()).filter(|&n| n >= 1).unwrap_or_else(
                    || {
                        eprintln!("--sms expects a positive integer");
                        std::process::exit(2);
                    },
                );
            }
            "--seed" => {
                seeds = args.next().and_then(|v| parse_seeds(&v)).unwrap_or_else(|| {
                    eprintln!("--seed expects a non-negative integer or a range a..b (a < b)");
                    std::process::exit(2);
                });
            }
            "--arrivals" => {
                arrivals = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--arrivals expects a non-negative cycle stride");
                    std::process::exit(2);
                });
            }
            "--backend" => {
                backend =
                    args.next().as_deref().and_then(BackendKind::from_label).unwrap_or_else(|| {
                        eprintln!("--backend expects epoch or event");
                        std::process::exit(2);
                    });
            }
            "--baseline" => {
                baseline = args.next().map(PathBuf::from).unwrap_or_else(|| {
                    eprintln!("--baseline expects a path");
                    std::process::exit(2);
                });
            }
            "--bench-out" => {
                bench_out = args.next().map(PathBuf::from).unwrap_or_else(|| {
                    eprintln!("--bench-out expects a path");
                    std::process::exit(2);
                });
            }
            "--obs" => {
                obs = args.next().as_deref().and_then(ObsLevel::from_label).unwrap_or_else(|| {
                    eprintln!("--obs expects off, metrics or full");
                    std::process::exit(2);
                });
            }
            "--trace-out" => {
                trace_out = args.next().map(PathBuf::from).unwrap_or_else(|| {
                    eprintln!("--trace-out expects a path");
                    std::process::exit(2);
                });
            }
            "--metrics-out" => {
                metrics_out = args.next().map(PathBuf::from).unwrap_or_else(|| {
                    eprintln!("--metrics-out expects a path");
                    std::process::exit(2);
                });
            }
            "--chips" => {
                chips =
                    args.next().and_then(|v| v.parse().ok()).filter(|&n| n >= 1).unwrap_or_else(
                        || {
                            eprintln!("--chips expects a positive integer");
                            std::process::exit(2);
                        },
                    );
            }
            "--placement" => {
                placement_filter = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--placement expects bin-pack|interference-spread|both");
                    std::process::exit(2);
                }));
            }
            "--traffic" => {
                traffic_profile = args.next().unwrap_or_else(|| {
                    eprintln!("--traffic expects {}", gpu_fleet::TrafficSpec::PROFILES.join("|"));
                    std::process::exit(2);
                });
            }
            "--workers" => {
                workers = Some(
                    args.next().and_then(|v| v.parse().ok()).filter(|&n| n >= 1).unwrap_or_else(
                        || {
                            eprintln!("--workers expects a positive integer");
                            std::process::exit(2);
                        },
                    ),
                );
            }
            "--mean-interarrival" => {
                mean_interarrival = Some(
                    args.next()
                        .and_then(|v| v.parse::<f64>().ok())
                        .filter(|&m| m > 0.0)
                        .unwrap_or_else(|| {
                            eprintln!("--mean-interarrival expects a positive cycle count");
                            std::process::exit(2);
                        }),
                );
            }
            "--reference-calibration" => reference_calibration = true,
            "-v" | "--verbose" => set_verbosity(1),
            "-q" | "--quiet" => set_verbosity(-1),
            "--allow-missing-baseline" => allow_missing_baseline = true,
            "--with-mixes" => with_mixes = true,
            "--merge-baseline" => merge_baseline = true,
            "--mix" => {
                mix_filter = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--mix expects a mix name");
                    std::process::exit(2);
                }));
            }
            "--policy" => {
                policy_filter = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--policy expects exclusive|spatial|shared-rr");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                println!(
                    "usage: ciao-harness <table1|table2|fig1|fig4|fig8|fig9|fig10|fig11|fig12|overhead|mix|capacity|fleet|trace|profile|perf|all> \
                     [--quick|--tiny|--full] [--sms N] [--seed N|A..B] [--arrivals N] \
                     [--backend epoch|event] [--out DIR] [--mix NAME] \
                     [--policy exclusive|spatial|shared-rr|interference-aware] \
                     [--capacity-curve] [--sm-counts A,B,..] \
                     [--chips N] [--placement bin-pack|interference-spread|both] \
                     [--traffic balanced|cache-heavy|stream-heavy] [--workers N] \
                     [--mean-interarrival CYCLES] [--reference-calibration] \
                     [--obs off|metrics|full] [--trace-out FILE] [--metrics-out FILE] \
                     [--baseline FILE] [--bench-out FILE] \
                     [--allow-missing-baseline] [--with-mixes] [--merge-baseline] \
                     [-v|--verbose] [-q|--quiet]"
                );
                std::process::exit(0);
            }
            other if !other.starts_with('-') => experiment = other.to_string(),
            other => {
                eprintln!("unknown option: {other}");
                std::process::exit(2);
            }
        }
    }
    Options {
        experiment,
        scale,
        out_dir,
        sms,
        seeds,
        arrivals,
        backend,
        baseline,
        bench_out,
        allow_missing_baseline,
        with_mixes,
        merge_baseline,
        mix_filter,
        policy_filter,
        sm_counts,
        obs,
        trace_out,
        metrics_out,
        chips,
        placement_filter,
        traffic_profile,
        workers,
        mean_interarrival,
        reference_calibration,
    }
}

/// Resolves the `--mix` filter (or all named mixes), exiting on a bad name.
fn resolve_mixes(filter: &Option<String>) -> Vec<Mix> {
    match filter {
        Some(name) => match Mix::from_name(name) {
            Some(m) => vec![m],
            None => {
                eprintln!(
                    "unknown mix: {name} (known: {})",
                    Mix::all().iter().map(|m| m.name()).collect::<Vec<_>>().join(", ")
                );
                std::process::exit(2);
            }
        },
        None => Mix::all(),
    }
}

/// Resolves the `--policy` filter (or all policies), exiting on a bad label.
fn resolve_policies(filter: &Option<String>) -> Vec<DispatchPolicy> {
    match filter {
        Some(label) => match DispatchPolicy::from_label(label) {
            Some(p) => vec![p],
            None => {
                eprintln!(
                    "unknown policy: {label} (known: {})",
                    DispatchPolicy::all().iter().map(|p| p.label()).collect::<Vec<_>>().join(", ")
                );
                std::process::exit(2);
            }
        },
        None => DispatchPolicy::all(),
    }
}

/// Runs the perf gate: measure, persist, compare against the snapshot
/// recorded for the same configuration, exit non-zero on drift. With
/// `--merge-baseline` the measured snapshot is recorded into the baseline
/// file instead of being gated (regeneration mode).
fn run_perf_gate(opts: &Options, runner: &Runner) {
    let mut report = perf::measure(runner, &Benchmark::all(), &perf::gate_schedulers());
    if opts.with_mixes {
        log(format_args!("measuring mix STPs ..."));
        let (mix_stp, mix_secs) = perf::measure_mixes(runner);
        report.mix_stp = mix_stp;
        report.mix_wall_clock_secs = mix_secs;
        // Cross-check the other timing backend on the same sweep: the STPs
        // must match bit-for-bit (both backends are exact), and the wall
        // clocks give the PR-over-PR epoch-vs-event speedup figure. Printed,
        // never gated or persisted — wall clocks are machine-dependent.
        let other = match runner.backend {
            BackendKind::Epoch => BackendKind::Event,
            BackendKind::Event => BackendKind::Epoch,
        };
        log(format_args!("re-measuring mix STPs on the {other} backend ..."));
        let (other_stp, other_secs) = perf::measure_mixes(&runner.clone().with_backend(other));
        if other_stp != report.mix_stp {
            eprintln!("perf gate FAILED: {other} backend STPs diverge from {}", runner.backend);
            std::process::exit(1);
        }
        let (epoch_secs, event_secs) = match runner.backend {
            BackendKind::Epoch => (mix_secs, other_secs),
            BackendKind::Event => (other_secs, mix_secs),
        };
        println!(
            "mix sweep backends agree; wall clock epoch {epoch_secs:.2}s vs event \
             {event_secs:.2}s ({:.1}x)",
            epoch_secs / event_secs.max(1e-9)
        );
        report.wall_clock.mix_epoch_secs = epoch_secs;
        report.wall_clock.mix_event_secs = event_secs;
        // Time the large-chip capacity point under both backends — the
        // headline epoch-vs-event speedup, recorded machine-readably in the
        // BENCH JSON's `wall_clock` section. STP divergence between the
        // backends is a correctness bug and fails the gate.
        log(format_args!(
            "timing the {}-SM capacity point on both backends ...",
            perf::CAPACITY_PROBE_SMS
        ));
        match perf::measure_capacity_point(runner, perf::CAPACITY_PROBE_SMS) {
            Ok((cap_epoch, cap_event)) => {
                report.wall_clock.capacity_sms = perf::CAPACITY_PROBE_SMS;
                report.wall_clock.capacity_epoch_secs = cap_epoch;
                report.wall_clock.capacity_event_secs = cap_event;
            }
            Err(e) => {
                eprintln!("perf gate FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
    print!("{}", perf::render(&report));
    if let Err(e) = write_json(&opts.bench_out, &report) {
        eprintln!("error: cannot write {:?}: {e}", opts.bench_out);
        std::process::exit(1);
    }
    log(format_args!("wrote {:?}", opts.bench_out));

    if opts.merge_baseline {
        let mut file = if Path::new(&opts.baseline).exists() {
            load_baseline_file(&opts.baseline)
        } else {
            perf::BaselineFile::default()
        };
        file.upsert(report);
        if let Err(e) = write_json(&opts.baseline, &file) {
            eprintln!("error: cannot write baseline {:?}: {e}", opts.baseline);
            std::process::exit(1);
        }
        log(format_args!(
            "recorded snapshot into {:?} ({} snapshot{})",
            opts.baseline,
            file.snapshots.len(),
            if file.snapshots.len() == 1 { "" } else { "s" }
        ));
        return;
    }

    if !Path::new(&opts.baseline).exists() {
        // Fail closed: a gate that silently skips is no gate. Bootstrapping a
        // brand-new configuration is the explicit opt-out.
        log(format_args!(
            "no baseline at {:?} (run `perf --merge-baseline` to record one)",
            opts.baseline
        ));
        if opts.allow_missing_baseline {
            log(format_args!("--allow-missing-baseline given; exiting 0"));
            return;
        }
        eprintln!(
            "perf gate FAILED: baseline missing (pass --allow-missing-baseline to bootstrap)"
        );
        std::process::exit(1);
    }
    let file = load_baseline_file(&opts.baseline);
    let Some(baseline) = file.find(&report.scale, report.num_sms, report.seed) else {
        // Also fail closed: comparing across configurations is meaningless,
        // and exiting 0 here would let a mis-invoked CI job disarm the gate.
        eprintln!(
            "perf gate FAILED: no snapshot for ({}, {} SMs, seed {}) in {:?} — record one \
             with `ciao-harness perf --merge-baseline` at this configuration",
            report.scale, report.num_sms, report.seed, opts.baseline
        );
        std::process::exit(1);
    };
    let gated: Vec<&str> = perf::gate_schedulers().iter().map(|s| s.label()).collect::<Vec<_>>();
    let drifts = perf::compare(&report, baseline, perf::DEFAULT_TOLERANCE, &gated);
    // Per-mix STP gating: enforced whenever either side carries mix figures
    // (run with `--with-mixes` against a mix-bearing snapshot). Fails closed
    // on missing keys — see `perf::compare_mixes`.
    let mix_drifts = if opts.with_mixes || !baseline.mix_stp.is_empty() {
        perf::compare_mixes(&report, baseline, perf::DEFAULT_TOLERANCE)
    } else {
        Vec::new()
    };
    if drifts.is_empty() && mix_drifts.is_empty() {
        let mixes = if opts.with_mixes || !baseline.mix_stp.is_empty() {
            " and all gated mix STPs"
        } else {
            ""
        };
        println!(
            "perf gate PASSED (all gated schedulers{mixes} within ±{:.0}% of baseline)",
            perf::DEFAULT_TOLERANCE * 100.0
        );
    } else {
        print!("{}", perf::render_drifts(&drifts, perf::DEFAULT_TOLERANCE));
        print!("{}", perf::render_mix_drifts(&mix_drifts, perf::DEFAULT_TOLERANCE));
        eprintln!(
            "perf gate FAILED; if the drift is an intended modelling change, regenerate \
             the snapshot with `ciao-harness perf --merge-baseline` at this configuration \
             (add --with-mixes for mix-bearing snapshots)"
        );
        std::process::exit(1);
    }
}

/// Loads and parses the multi-snapshot baseline file, exiting on error.
fn load_baseline_file(path: &Path) -> perf::BaselineFile {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read baseline {path:?}: {e}");
            std::process::exit(1);
        }
    };
    match serde_json::from_str(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!(
                "error: cannot parse baseline {path:?}: {e} (expected the multi-snapshot \
                 {{\"snapshots\": [...]}} schema)"
            );
            std::process::exit(1);
        }
    }
}

/// The `(mix, policy, scheduler)` co-run the `trace` and `profile` commands
/// observe: `--mix` / `--policy` narrow it; the defaults are the
/// cache-vs-stream mix under interference-aware dispatch with CIAO-T — the
/// configuration whose throttle/restore instants the trace is for.
fn observed_corun(opts: &Options) -> (Mix, DispatchPolicy, SchedulerKind) {
    let mix = match &opts.mix_filter {
        Some(_) => resolve_mixes(&opts.mix_filter)[0],
        None => Mix::CacheStream,
    };
    let policy = match &opts.policy_filter {
        Some(_) => resolve_policies(&opts.policy_filter)[0],
        None => DispatchPolicy::InterferenceAware,
    };
    (mix, policy, SchedulerKind::CiaoT)
}

/// `fleet`: the cluster-tier experiment. `--placement both` (the default)
/// runs bin-pack and interference-spread on the identical traffic and
/// calibration and prints the STP verdict.
fn run_fleet(opts: &Options) {
    let policies = match opts.placement_filter.as_deref() {
        None | Some("both") => gpu_fleet::PlacementPolicy::ALL.to_vec(),
        Some(label) => match gpu_fleet::PlacementPolicy::from_label(label) {
            Some(p) => vec![p],
            None => {
                eprintln!(
                    "unknown placement: {label} (known: both, {})",
                    gpu_fleet::PlacementPolicy::ALL
                        .iter()
                        .map(|p| p.label())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                std::process::exit(2);
            }
        },
    };
    let plan = fleet::FleetPlan {
        chips: opts.chips,
        sms: if opts.sms > 1 { opts.sms } else { 8 },
        arrivals: if opts.arrivals > 0 { opts.arrivals as usize } else { 100_000 },
        seed: opts.seed(),
        profile: opts.traffic_profile.clone(),
        mean_interarrival: opts.mean_interarrival,
        policies,
        workers: opts
            .workers
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get())),
        reference_calibration: opts.reference_calibration,
        obs: opts.obs,
    };
    if fleet::traffic_for(&plan).is_none() {
        eprintln!(
            "unknown traffic profile: {} (known: {})",
            plan.profile,
            gpu_fleet::TrafficSpec::PROFILES.join(", ")
        );
        std::process::exit(2);
    }
    let r = fleet::run(&plan);
    emit(opts, "fleet", &fleet::render(&r), &r);
}

/// `trace`: one fully observed co-run; writes the Perfetto-loadable Chrome
/// trace and the metrics-registry JSON, prints a one-line summary.
fn run_trace(opts: &Options, runner: &Runner) {
    let (mix, policy, scheduler) = observed_corun(opts);
    let runner = runner.clone().with_obs(ObsLevel::Full);
    log(format_args!(
        "tracing {} under {} / {} at --obs full ...",
        mix.name(),
        policy.label(),
        scheduler.label()
    ));
    let (res, report) = runner.run_mix_observed(mix, policy, scheduler);
    if let Err(e) = std::fs::write(&opts.trace_out, report.chrome_trace_json()) {
        eprintln!("error: cannot write trace {:?}: {e}", opts.trace_out);
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&opts.metrics_out, report.metrics_json_full()) {
        eprintln!("error: cannot write metrics {:?}: {e}", opts.metrics_out);
        std::process::exit(1);
    }
    println!(
        "traced {} under {} / {}: {} cycles, {} events ({} dropped), {} tenants; \
         wrote {} and {}",
        mix.name(),
        policy.label(),
        scheduler.label(),
        res.cycles,
        report.events.len(),
        report.dropped_events,
        report.tenants.len(),
        opts.trace_out.display(),
        opts.metrics_out.display()
    );
}

/// `profile`: the same co-run at metrics level under **both** timing
/// backends, printing each wall-clock phase table so epoch-vs-event hotspots
/// can be compared directly.
fn run_profile(opts: &Options, runner: &Runner) {
    let (mix, policy, scheduler) = observed_corun(opts);
    let obs = opts.obs.max(ObsLevel::Metrics);
    for backend in [BackendKind::Epoch, BackendKind::Event] {
        let r = runner.clone().with_backend(backend).with_obs(obs);
        log(format_args!(
            "profiling {} under {} / {} on the {backend} backend ...",
            mix.name(),
            policy.label(),
            scheduler.label()
        ));
        let (res, report) = r.run_mix_observed(mix, policy, scheduler);
        println!(
            "== {backend} backend — {} under {} / {} ({} cycles) ==",
            mix.name(),
            policy.label(),
            scheduler.label(),
            res.cycles
        );
        print!("{}", report.profile_table());
    }
}

fn emit<T: Serialize>(opts: &Options, name: &str, text: &str, value: &T) {
    println!("{text}");
    if let Some(dir) = &opts.out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {dir:?}: {e}");
            return;
        }
        if let Err(e) = std::fs::write(dir.join(format!("{name}.txt")), text) {
            eprintln!("warning: cannot write {name}.txt: {e}");
        }
        if let Err(e) = write_json(&dir.join(format!("{name}.json")), value) {
            eprintln!("warning: cannot write {name}.json: {e}");
        }
    }
}

fn run_experiment(opts: &Options, name: &str, runner: &Runner) {
    match name {
        "table1" => {
            let r = table1::run(&runner.effective_config());
            emit(opts, "table1", &table1::render(&r), &r);
        }
        "table2" => {
            let r = table2::run(runner, &Benchmark::all());
            emit(opts, "table2", &table2::render(&r), &r);
        }
        "fig1" | "fig1a" | "fig1b" => {
            let r = fig1::run(runner, Benchmark::Backprop);
            emit(opts, "fig1", &fig1::render(&r), &r);
        }
        "fig4" | "fig4a" | "fig4b" => {
            let r = fig4::run(runner, Benchmark::Kmn, &Benchmark::memory_intensive());
            emit(opts, "fig4", &fig4::render(&r), &r);
        }
        "fig8" | "fig8a" | "fig8b" => {
            let r = fig8::run(runner, &Benchmark::all(), &SchedulerKind::all());
            emit(opts, "fig8", &fig8::render(&r), &r);
        }
        "fig9" => {
            let r = fig9::run(runner, &fig9::fig9_benchmarks(), &fig9::fig9_schedulers());
            emit(opts, "fig9", &fig9::render("Fig. 9", &r), &r);
        }
        "fig10" => {
            let r = fig10::run(runner, &fig10::fig10_benchmarks(), &fig10::fig10_schedulers());
            emit(opts, "fig10", &fig10::render(&r), &r);
        }
        "fig11" | "fig11a" | "fig11b" => {
            let r = fig11::run(runner, &fig11::sensitivity_benchmarks());
            emit(opts, "fig11", &fig11::render(&r), &r);
        }
        "fig12" | "fig12a" | "fig12b" => {
            let r = fig12::run(runner, &Benchmark::memory_intensive());
            emit(opts, "fig12", &fig12::render(&r), &r);
        }
        "overhead" => {
            let r = overhead::run();
            emit(opts, "overhead", &overhead::render(&r), &r);
        }
        "capacity" => {
            let mixes = resolve_mixes(&opts.mix_filter);
            let policies = resolve_policies(&opts.policy_filter);
            let sm_counts = opts.sm_counts.clone().unwrap_or_else(capacity::default_sm_counts);
            let r = capacity::run(
                runner,
                &sm_counts,
                &mixes,
                &policies,
                ciao_harness::schedulers::SchedulerKind::Gto,
            );
            emit(opts, "capacity", &capacity::render(&r), &r);
        }
        "mix" => {
            let mixes = resolve_mixes(&opts.mix_filter);
            let policies = resolve_policies(&opts.policy_filter);
            if opts.seeds.len() > 1 {
                // Seed sweep: mean ± σ figures per (mix, policy, scheduler).
                let r = mix::run_seeds(
                    runner,
                    &opts.seeds,
                    &mixes,
                    &policies,
                    &mix::default_schedulers(),
                );
                emit(opts, "mix", &mix::render_sweep(&r), &r);
            } else {
                let r = mix::run(runner, &mixes, &policies, &mix::default_schedulers());
                emit(opts, "mix", &mix::render(&r), &r);
            }
        }
        "fleet" => run_fleet(opts),
        "trace" => run_trace(opts, runner),
        "profile" => run_profile(opts, runner),
        "perf" => run_perf_gate(opts, runner),
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let opts = parse_args();
    if opts.seeds.len() > 1 && opts.experiment != "mix" {
        log(format_args!(
            "seed ranges are only swept by the `mix` experiment; using seed {} for `{}`",
            opts.seed(),
            opts.experiment
        ));
    }
    let plan = RunPlan {
        scale: opts.scale,
        sms: opts.sms,
        seed: opts.seed(),
        arrival_stride: opts.arrivals,
        backend: opts.backend,
        threads: None,
        obs: opts.obs,
    };
    let runner = Runner::from_plan(&plan);
    log(format_args!(
        "scale: {:?} ({} instructions/run cap), {} SM{} per run, seed{} {}, \
         arrivals +{}, {} backend, {} worker threads, obs {}",
        opts.scale,
        opts.scale.max_instructions(),
        runner.sms,
        if runner.sms == 1 { "" } else { "s" },
        if opts.seeds.len() == 1 { "" } else { "s" },
        opts.seeds.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(","),
        opts.arrivals,
        runner.backend,
        runner.threads,
        runner.obs
    ));
    if opts.experiment == "all" {
        for name in [
            "table1", "table2", "fig1", "fig4", "fig8", "fig9", "fig10", "fig11", "fig12",
            "overhead", "mix",
        ] {
            log(format_args!("running {name} ..."));
            run_experiment(&opts, name, &runner);
        }
    } else {
        run_experiment(&opts, &opts.experiment, &runner);
    }
}
