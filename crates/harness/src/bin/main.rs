//! `ciao-harness` — command-line front end reproducing every table and figure
//! of the CIAO paper.
//!
//! ```text
//! ciao-harness <experiment> [--quick|--tiny] [--sms N] [--out DIR]
//!
//! experiments: table1 table2 fig1 fig4 fig8 fig9 fig10 fig11 fig12 overhead perf all
//! ```
//!
//! `--sms N` simulates every run on an N-SM chip (parallel per-SM execution
//! against a shared banked L2/DRAM); the default of 1 is the legacy
//! single-SM model all recorded baselines use.
//!
//! `perf` is the CI performance gate: it measures the benchmark suite under
//! GTO and CIAO-C, writes `BENCH_PR.json` (override with `--bench-out`), and
//! exits non-zero if any gated geomean IPC drifts more than ±10% from the
//! checked-in baseline (`bench/baseline.json`, override with `--baseline`).
//!
//! Text reports go to stdout; when `--out DIR` is given, each experiment also
//! writes `<experiment>.txt` and `<experiment>.json` into the directory.

use ciao_harness::experiments::{
    fig1, fig10, fig11, fig12, fig4, fig8, fig9, overhead, table1, table2,
};
use ciao_harness::perf;
use ciao_harness::report::write_json;
use ciao_harness::runner::{RunScale, Runner};
use ciao_harness::schedulers::SchedulerKind;
use ciao_workloads::Benchmark;
use serde::Serialize;
use std::path::{Path, PathBuf};

struct Options {
    experiment: String,
    scale: RunScale,
    out_dir: Option<PathBuf>,
    sms: usize,
    baseline: PathBuf,
    bench_out: PathBuf,
    allow_missing_baseline: bool,
}

fn parse_args() -> Options {
    let mut experiment = String::from("all");
    let mut scale = RunScale::Full;
    let mut out_dir = None;
    let mut sms = 1usize;
    let mut baseline = PathBuf::from("bench/baseline.json");
    let mut bench_out = PathBuf::from("BENCH_PR.json");
    let mut allow_missing_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = RunScale::Quick,
            "--tiny" => scale = RunScale::Tiny,
            "--full" => scale = RunScale::Full,
            "--out" => out_dir = args.next().map(PathBuf::from),
            "--sms" => {
                sms = args.next().and_then(|v| v.parse().ok()).filter(|&n| n >= 1).unwrap_or_else(
                    || {
                        eprintln!("--sms expects a positive integer");
                        std::process::exit(2);
                    },
                );
            }
            "--baseline" => {
                baseline = args.next().map(PathBuf::from).unwrap_or_else(|| {
                    eprintln!("--baseline expects a path");
                    std::process::exit(2);
                });
            }
            "--bench-out" => {
                bench_out = args.next().map(PathBuf::from).unwrap_or_else(|| {
                    eprintln!("--bench-out expects a path");
                    std::process::exit(2);
                });
            }
            "--allow-missing-baseline" => allow_missing_baseline = true,
            "--help" | "-h" => {
                println!(
                    "usage: ciao-harness <table1|table2|fig1|fig4|fig8|fig9|fig10|fig11|fig12|overhead|perf|all> \
                     [--quick|--tiny|--full] [--sms N] [--out DIR] [--baseline FILE] [--bench-out FILE] \
                     [--allow-missing-baseline]"
                );
                std::process::exit(0);
            }
            other if !other.starts_with('-') => experiment = other.to_string(),
            other => {
                eprintln!("unknown option: {other}");
                std::process::exit(2);
            }
        }
    }
    Options { experiment, scale, out_dir, sms, baseline, bench_out, allow_missing_baseline }
}

/// Runs the perf gate: measure, persist, compare, exit non-zero on drift.
fn run_perf_gate(opts: &Options, runner: &Runner) {
    let report = perf::measure(runner, &Benchmark::all(), &perf::gate_schedulers());
    print!("{}", perf::render(&report));
    if let Err(e) = write_json(&opts.bench_out, &report) {
        eprintln!("error: cannot write {:?}: {e}", opts.bench_out);
        std::process::exit(1);
    }
    eprintln!("[ciao-harness] wrote {:?}", opts.bench_out);
    if !Path::new(&opts.baseline).exists() {
        // Fail closed: a gate that silently skips is no gate. Bootstrapping a
        // brand-new configuration is the explicit opt-out.
        eprintln!(
            "[ciao-harness] no baseline at {:?} (commit this run's {:?} as the baseline \
             to arm the gate)",
            opts.baseline, opts.bench_out
        );
        if opts.allow_missing_baseline {
            eprintln!("[ciao-harness] --allow-missing-baseline given; exiting 0");
            return;
        }
        eprintln!(
            "perf gate FAILED: baseline missing (pass --allow-missing-baseline to bootstrap)"
        );
        std::process::exit(1);
    }
    let text = match std::fs::read_to_string(&opts.baseline) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read baseline {:?}: {e}", opts.baseline);
            std::process::exit(1);
        }
    };
    let baseline: perf::PerfReport = match serde_json::from_str(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot parse baseline {:?}: {e}", opts.baseline);
            std::process::exit(1);
        }
    };
    if baseline.scale != report.scale || baseline.num_sms != report.num_sms {
        // Also fail closed: comparing across configurations is meaningless,
        // and exiting 0 here would let a mis-invoked CI job disarm the gate.
        eprintln!(
            "perf gate FAILED: baseline measured at ({}, {} SMs) but current run is \
             ({}, {} SMs) — rerun at the baseline's configuration or regenerate \
             bench/baseline.json at the new one",
            baseline.scale, baseline.num_sms, report.scale, report.num_sms
        );
        std::process::exit(1);
    }
    let gated: Vec<&str> = perf::gate_schedulers().iter().map(|s| s.label()).collect::<Vec<_>>();
    let drifts = perf::compare(&report, &baseline, perf::DEFAULT_TOLERANCE, &gated);
    if drifts.is_empty() {
        println!(
            "perf gate PASSED (all gated schedulers within ±{:.0}% of baseline)",
            perf::DEFAULT_TOLERANCE * 100.0
        );
    } else {
        print!("{}", perf::render_drifts(&drifts, perf::DEFAULT_TOLERANCE));
        eprintln!(
            "perf gate FAILED; if the drift is an intended modelling change, regenerate \
             bench/baseline.json with `ciao-harness perf --quick --bench-out bench/baseline.json`"
        );
        std::process::exit(1);
    }
}

fn emit<T: Serialize>(opts: &Options, name: &str, text: &str, value: &T) {
    println!("{text}");
    if let Some(dir) = &opts.out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {dir:?}: {e}");
            return;
        }
        if let Err(e) = std::fs::write(dir.join(format!("{name}.txt")), text) {
            eprintln!("warning: cannot write {name}.txt: {e}");
        }
        if let Err(e) = write_json(&dir.join(format!("{name}.json")), value) {
            eprintln!("warning: cannot write {name}.json: {e}");
        }
    }
}

fn run_experiment(opts: &Options, name: &str, runner: &Runner) {
    match name {
        "table1" => {
            let r = table1::run(&runner.effective_config());
            emit(opts, "table1", &table1::render(&r), &r);
        }
        "table2" => {
            let r = table2::run(runner, &Benchmark::all());
            emit(opts, "table2", &table2::render(&r), &r);
        }
        "fig1" | "fig1a" | "fig1b" => {
            let r = fig1::run(runner, Benchmark::Backprop);
            emit(opts, "fig1", &fig1::render(&r), &r);
        }
        "fig4" | "fig4a" | "fig4b" => {
            let r = fig4::run(runner, Benchmark::Kmn, &Benchmark::memory_intensive());
            emit(opts, "fig4", &fig4::render(&r), &r);
        }
        "fig8" | "fig8a" | "fig8b" => {
            let r = fig8::run(runner, &Benchmark::all(), &SchedulerKind::all());
            emit(opts, "fig8", &fig8::render(&r), &r);
        }
        "fig9" => {
            let r = fig9::run(runner, &fig9::fig9_benchmarks(), &fig9::fig9_schedulers());
            emit(opts, "fig9", &fig9::render("Fig. 9", &r), &r);
        }
        "fig10" => {
            let r = fig10::run(runner, &fig10::fig10_benchmarks(), &fig10::fig10_schedulers());
            emit(opts, "fig10", &fig10::render(&r), &r);
        }
        "fig11" | "fig11a" | "fig11b" => {
            let r = fig11::run(runner, &fig11::sensitivity_benchmarks());
            emit(opts, "fig11", &fig11::render(&r), &r);
        }
        "fig12" | "fig12a" | "fig12b" => {
            let r = fig12::run(runner, &Benchmark::memory_intensive());
            emit(opts, "fig12", &fig12::render(&r), &r);
        }
        "overhead" => {
            let r = overhead::run();
            emit(opts, "overhead", &overhead::render(&r), &r);
        }
        "perf" => run_perf_gate(opts, runner),
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let opts = parse_args();
    let runner = Runner::new(opts.scale).with_sms(opts.sms);
    eprintln!(
        "[ciao-harness] scale: {:?} ({} instructions/run cap), {} SM{} per run, {} worker threads",
        opts.scale,
        opts.scale.max_instructions(),
        runner.sms,
        if runner.sms == 1 { "" } else { "s" },
        runner.threads
    );
    if opts.experiment == "all" {
        for name in [
            "table1", "table2", "fig1", "fig4", "fig8", "fig9", "fig10", "fig11", "fig12",
            "overhead",
        ] {
            eprintln!("[ciao-harness] running {name} ...");
            run_experiment(&opts, name, &runner);
        }
    } else {
        run_experiment(&opts, &opts.experiment, &runner);
    }
}
