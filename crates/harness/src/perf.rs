//! Performance-regression gate: measure the simulator's headline IPCs,
//! serialise them to JSON, and compare against a checked-in baseline.
//!
//! CI runs `ciao-harness perf --quick`, which measures the full benchmark
//! suite under the gated schedulers (GTO and CIAO-C — the baseline every
//! figure normalises to and the paper's headline configuration), writes
//! `BENCH_PR.json`, and fails the job when a gated scheduler's geomean IPC
//! drifts more than [`DEFAULT_TOLERANCE`] from `bench/baseline.json`. The
//! simulator is deterministic, so the tolerance exists to absorb *intended*
//! modelling changes (which should update the baseline in the same PR), not
//! machine noise; wall-clock time is recorded for trend-watching but never
//! gated.

use crate::experiments::mix as mix_experiment;
use crate::report::geometric_mean;
use crate::runner::{RunRecord, Runner};
use crate::schedulers::SchedulerKind;
use ciao_workloads::{Benchmark, Mix};
use gpu_sim::{BackendKind, DispatchPolicy};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Maximum relative geomean-IPC drift (±) tolerated by the gate.
pub const DEFAULT_TOLERANCE: f64 = 0.10;

/// SM count of the large-chip capacity point the perf command times under
/// both backends (the headline epoch-vs-event speedup configuration).
pub const CAPACITY_PROBE_SMS: usize = 64;

/// The schedulers whose IPC the gate protects.
pub fn gate_schedulers() -> Vec<SchedulerKind> {
    vec![SchedulerKind::Gto, SchedulerKind::CiaoC]
}

/// The dispatch policies whose per-mix STP the gate protects: the static
/// shared-round-robin baseline and the adaptive interference-aware policy.
pub fn gate_policies() -> Vec<DispatchPolicy> {
    vec![DispatchPolicy::SharedRoundRobin, DispatchPolicy::InterferenceAware]
}

/// The `mix_stp` key for one (mix, policy) cell.
pub fn mix_stp_key(mix: Mix, policy: DispatchPolicy) -> String {
    format!("{}/{}", mix.name(), policy.label())
}

/// Every `mix_stp` key a snapshot measured with mixes must contain. The gate
/// fails closed when any of them is missing from either side.
pub fn required_mix_keys() -> Vec<String> {
    let mut keys = Vec::new();
    for mix in Mix::all() {
        for policy in gate_policies() {
            keys.push(mix_stp_key(mix, policy));
        }
    }
    keys
}

/// Machine-readable epoch-vs-event wall clocks, recorded in the BENCH JSON
/// artifact so backend speedups are a queryable time series PR-over-PR
/// rather than a line scraped from the CI log. All values are wall-clock
/// seconds — machine-dependent, informational, **never gated**; zeros mean
/// "not measured" (a snapshot taken without `--with-mixes`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WallClock {
    /// Mix-STP sweep under the epoch (oracle) backend.
    pub mix_epoch_secs: f64,
    /// Mix-STP sweep under the event backend.
    pub mix_event_secs: f64,
    /// SM count of the timed capacity point (0 when not measured).
    pub capacity_sms: usize,
    /// Capacity point under the epoch backend.
    pub capacity_epoch_secs: f64,
    /// Capacity point under the event backend.
    pub capacity_event_secs: f64,
}

impl WallClock {
    /// Epoch-over-event speedup of the mix sweep (0 when not measured).
    pub fn mix_speedup(&self) -> f64 {
        if self.mix_event_secs > 0.0 {
            self.mix_epoch_secs / self.mix_event_secs
        } else {
            0.0
        }
    }

    /// Epoch-over-event speedup of the capacity point (0 when not measured).
    pub fn capacity_speedup(&self) -> f64 {
        if self.capacity_event_secs > 0.0 {
            self.capacity_epoch_secs / self.capacity_event_secs
        } else {
            0.0
        }
    }
}

/// One measured performance snapshot (an entry of `bench/baseline.json` and
/// the whole of `BENCH_PR.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfReport {
    /// Run scale the snapshot was measured at ("Tiny" / "Quick" / "Full").
    pub scale: String,
    /// Number of SMs per simulation.
    pub num_sms: usize,
    /// Experiment seed the snapshot was measured at.
    pub seed: u64,
    /// Wall-clock seconds for the whole measurement (informational only —
    /// machine-dependent, never gated).
    pub wall_clock_secs: f64,
    /// Wall-clock seconds of the mix-STP sweep alone (0 when the snapshot
    /// was measured without mixes). Recorded so backend speedups on the
    /// multi-SM mix runs are visible PR-over-PR in the CI job summary;
    /// machine-dependent, never gated.
    pub mix_wall_clock_secs: f64,
    /// Runs that hit an instruction/cycle cap.
    pub capped_runs: usize,
    /// Total runs measured.
    pub total_runs: usize,
    /// Scheduler label → geometric-mean IPC across the benchmark suite (the
    /// gated quantity).
    pub geomean_ipc: BTreeMap<String, f64>,
    /// Scheduler label → benchmark → raw IPC (for diagnosing a drift).
    pub per_benchmark_ipc: BTreeMap<String, BTreeMap<String, f64>>,
    /// Scheduler label → mean per-run standard deviation of per-SM IPC
    /// (0 for 1-SM snapshots; the partitioning-skew trend for chip runs).
    pub mean_sm_ipc_stddev: BTreeMap<String, f64>,
    /// `mix/policy` → STP under the GTO scheduler for every named mix and
    /// each gated dispatch policy (see [`gate_policies`]) — the multi-tenant
    /// co-execution figures of merit. Empty when the snapshot was measured
    /// without mixes.
    pub mix_stp: BTreeMap<String, f64>,
    /// Epoch-vs-event backend wall clocks (see [`WallClock`]; all zeros when
    /// the snapshot was measured without mixes).
    pub wall_clock: WallClock,
}

/// The schema of `bench/baseline.json`: one snapshot per recorded
/// (scale, SM-count, seed) configuration, so the 1-SM gate baseline and the
/// 15-SM chip-level baseline live in the same file.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BaselineFile {
    /// Recorded snapshots, one per configuration.
    pub snapshots: Vec<PerfReport>,
}

impl BaselineFile {
    /// The snapshot recorded for `(scale, num_sms, seed)`, if any. The seed
    /// is part of the key: a seeded run measures different traces, so gating
    /// it against (or overwriting) another seed's snapshot would be
    /// meaningless.
    pub fn find(&self, scale: &str, num_sms: usize, seed: u64) -> Option<&PerfReport> {
        self.snapshots.iter().find(|s| s.scale == scale && s.num_sms == num_sms && s.seed == seed)
    }

    /// Inserts `snapshot`, replacing any existing entry for the same
    /// `(scale, num_sms, seed)` configuration.
    pub fn upsert(&mut self, snapshot: PerfReport) {
        match self.snapshots.iter_mut().find(|s| {
            s.scale == snapshot.scale && s.num_sms == snapshot.num_sms && s.seed == snapshot.seed
        }) {
            Some(slot) => *slot = snapshot,
            None => self.snapshots.push(snapshot),
        }
    }
}

/// Runs the (benchmarks × schedulers) matrix under `runner` and condenses it
/// into a [`PerfReport`].
pub fn measure(
    runner: &Runner,
    benchmarks: &[Benchmark],
    schedulers: &[SchedulerKind],
) -> PerfReport {
    let start = std::time::Instant::now();
    let records = runner.run_matrix(benchmarks, schedulers);
    let wall_clock_secs = start.elapsed().as_secs_f64();
    summarize(&records, runner, wall_clock_secs)
}

/// Builds the report from pre-computed records (separated from [`measure`]
/// so tests can exercise the aggregation without simulating).
pub fn summarize(records: &[RunRecord], runner: &Runner, wall_clock_secs: f64) -> PerfReport {
    let mut geomean_ipc = BTreeMap::new();
    let mut per_benchmark_ipc: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
    let mut mean_sm_ipc_stddev = BTreeMap::new();
    let mut schedulers: Vec<String> = Vec::new();
    for r in records {
        if !schedulers.contains(&r.scheduler) {
            schedulers.push(r.scheduler.clone());
        }
        per_benchmark_ipc
            .entry(r.scheduler.clone())
            .or_default()
            .insert(r.benchmark.clone(), r.ipc);
    }
    for sched in &schedulers {
        let ipcs: Vec<f64> =
            records.iter().filter(|r| &r.scheduler == sched).map(|r| r.ipc).collect();
        geomean_ipc.insert(sched.clone(), geometric_mean(&ipcs));
        let stddevs: Vec<f64> =
            records.iter().filter(|r| &r.scheduler == sched).map(|r| r.sm_ipc_stddev).collect();
        let mean = if stddevs.is_empty() {
            0.0
        } else {
            stddevs.iter().sum::<f64>() / stddevs.len() as f64
        };
        mean_sm_ipc_stddev.insert(sched.clone(), mean);
    }
    PerfReport {
        scale: format!("{:?}", runner.scale),
        num_sms: runner.sms,
        seed: runner.seed,
        wall_clock_secs,
        mix_wall_clock_secs: 0.0,
        capped_runs: records.iter().filter(|r| r.capped).count(),
        total_runs: records.len(),
        geomean_ipc,
        per_benchmark_ipc,
        mean_sm_ipc_stddev,
        mix_stp: BTreeMap::new(),
        wall_clock: WallClock::default(),
    }
}

/// Times the [`CAPACITY_PROBE_SMS`]-SM capacity point (the cache-stream
/// co-run under the gated dispatch policies, GTO) under **both** timing
/// backends, verifying the STPs agree bit-for-bit. Returns
/// `(epoch_secs, event_secs)`, or the divergence message when the backends
/// disagree — divergence is a correctness bug, so callers should fail the
/// gate on `Err`.
pub fn measure_capacity_point(runner: &Runner, sms: usize) -> Result<(f64, f64), String> {
    let mut secs = [0.0f64; 2];
    let mut stps: Vec<Vec<(String, f64)>> = Vec::new();
    for (i, backend) in [BackendKind::Epoch, BackendKind::Event].into_iter().enumerate() {
        let r = runner.clone().with_sms(sms).with_backend(backend);
        let start = std::time::Instant::now();
        let result =
            mix_experiment::run(&r, &[Mix::CacheStream], &gate_policies(), &[SchedulerKind::Gto]);
        secs[i] = start.elapsed().as_secs_f64();
        stps.push(
            result
                .rows
                .into_iter()
                .map(|row| (format!("{}/{}", row.mix, row.policy), row.stp))
                .collect(),
        );
    }
    if stps[0] != stps[1] {
        return Err(format!(
            "capacity point backends diverge at {sms} SMs: epoch {:?} vs event {:?}",
            stps[0], stps[1]
        ));
    }
    Ok((secs[0], secs[1]))
}

/// Measures every named mix's STP under the gated dispatch policies and the
/// GTO baseline scheduler, for recording in a snapshot's `mix_stp` map
/// (the `perf --with-mixes` path). Keys are `mix/policy`.
///
/// The mix experiment re-simulates its handful of solo baselines even though
/// [`measure`] just ran the same benchmarks: STP needs the *turnaround*
/// (finish-cycle) IPC definition that per-tenant records use, not the
/// chip-cycle IPC a [`RunRecord`] carries, and a few extra solo runs are
/// cheap next to the mix co-runs themselves.
///
/// Returns the `mix/policy → STP` map together with the sweep's wall-clock
/// seconds (recorded in [`PerfReport::mix_wall_clock_secs`]).
pub fn measure_mixes(runner: &Runner) -> (BTreeMap<String, f64>, f64) {
    let start = std::time::Instant::now();
    let result = mix_experiment::run(runner, &Mix::all(), &gate_policies(), &[SchedulerKind::Gto]);
    let stp = result.rows.into_iter().map(|r| (format!("{}/{}", r.mix, r.policy), r.stp)).collect();
    (stp, start.elapsed().as_secs_f64())
}

/// A gated scheduler whose IPC moved outside the tolerance band.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Drift {
    /// Scheduler label.
    pub scheduler: String,
    /// Baseline geomean IPC.
    pub baseline_ipc: f64,
    /// Currently measured geomean IPC.
    pub current_ipc: f64,
    /// `current / baseline` (0.0 when the scheduler vanished entirely).
    pub ratio: f64,
}

/// Compares `current` against `baseline` for the schedulers named in
/// `gated`, returning one [`Drift`] per violation of `tolerance` (empty ⇒
/// the gate passes). Schedulers missing from the baseline are ignored —
/// they are new and have nothing to regress against — but schedulers present
/// in the baseline and missing from `current` fail loudly.
pub fn compare(
    current: &PerfReport,
    baseline: &PerfReport,
    tolerance: f64,
    gated: &[&str],
) -> Vec<Drift> {
    let mut drifts = Vec::new();
    for &sched in gated {
        let Some(&base) = baseline.geomean_ipc.get(sched) else { continue };
        let cur = current.geomean_ipc.get(sched).copied().unwrap_or(0.0);
        let ratio = if base > 0.0 { cur / base } else { 0.0 };
        if base > 0.0 && (ratio - 1.0).abs() > tolerance {
            drifts.push(Drift {
                scheduler: sched.to_string(),
                baseline_ipc: base,
                current_ipc: cur,
                ratio,
            });
        }
    }
    drifts
}

/// A gated (mix, policy) STP cell that moved outside the tolerance band or
/// is missing from one side of the comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MixDrift {
    /// `mix/policy` key.
    pub key: String,
    /// Baseline STP (0.0 when the baseline snapshot lacks the key).
    pub baseline_stp: f64,
    /// Currently measured STP (0.0 when the current report lacks the key).
    pub current_stp: f64,
    /// `current / baseline` (0.0 when either side is missing).
    pub ratio: f64,
    /// Why the cell failed: "missing from baseline", "missing from current",
    /// or "drift".
    pub reason: String,
}

/// Compares the per-mix STP values of `current` against `baseline`,
/// returning one [`MixDrift`] per violation. The gate *fails closed* on
/// missing keys: every [`required_mix_keys`] entry must be present on both
/// sides — a snapshot that silently lost a mix (or a new mix that was never
/// baselined) fails rather than being skipped.
pub fn compare_mixes(current: &PerfReport, baseline: &PerfReport, tolerance: f64) -> Vec<MixDrift> {
    let mut drifts = Vec::new();
    for key in required_mix_keys() {
        let base = baseline.mix_stp.get(&key).copied();
        let cur = current.mix_stp.get(&key).copied();
        match (base, cur) {
            (None, _) => drifts.push(MixDrift {
                key,
                baseline_stp: 0.0,
                current_stp: cur.unwrap_or(0.0),
                ratio: 0.0,
                reason: "missing from baseline".into(),
            }),
            (_, None) => drifts.push(MixDrift {
                key,
                baseline_stp: base.unwrap_or(0.0),
                current_stp: 0.0,
                ratio: 0.0,
                reason: "missing from current".into(),
            }),
            (Some(b), Some(c)) => {
                let ratio = if b > 0.0 { c / b } else { 0.0 };
                if b <= 0.0 || (ratio - 1.0).abs() > tolerance {
                    drifts.push(MixDrift {
                        key,
                        baseline_stp: b,
                        current_stp: c,
                        ratio,
                        reason: "drift".into(),
                    });
                }
            }
        }
    }
    drifts
}

/// Renders mix-STP gate violations for the CI log.
pub fn render_mix_drifts(drifts: &[MixDrift], tolerance: f64) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for d in drifts {
        if d.reason == "drift" {
            let _ = writeln!(
                out,
                "FAIL {}: STP {:.4} vs baseline {:.4} ({:+.1}% drift, tolerance ±{:.0}%)",
                d.key,
                d.current_stp,
                d.baseline_stp,
                (d.ratio - 1.0) * 100.0,
                tolerance * 100.0
            );
        } else {
            let _ = writeln!(out, "FAIL {}: {}", d.key, d.reason);
        }
    }
    out
}

/// Plain-text rendering of a report (the CI log artefact).
pub fn render(report: &PerfReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== perf snapshot ({} scale, {} SM{}, seed {}) ==",
        report.scale,
        report.num_sms,
        if report.num_sms == 1 { "" } else { "s" },
        report.seed
    );
    for (sched, ipc) in &report.geomean_ipc {
        let stddev = report.mean_sm_ipc_stddev.get(sched).copied().unwrap_or(0.0);
        if report.num_sms > 1 {
            let _ =
                writeln!(out, "{sched:>10}  geomean IPC {ipc:.4}  (mean per-SM IPC σ {stddev:.4})");
        } else {
            let _ = writeln!(out, "{sched:>10}  geomean IPC {ipc:.4}");
        }
    }
    for (key, stp) in &report.mix_stp {
        let _ = writeln!(out, "{key:>32}  STP {stp:.3} (GTO)");
    }
    let _ = writeln!(
        out,
        "{} runs ({} capped), {:.2}s wall clock",
        report.total_runs, report.capped_runs, report.wall_clock_secs
    );
    if report.mix_wall_clock_secs > 0.0 {
        let _ = writeln!(out, "mix sweep wall clock: {:.2}s", report.mix_wall_clock_secs);
    }
    let wc = &report.wall_clock;
    if wc.mix_event_secs > 0.0 {
        let _ = writeln!(
            out,
            "mix sweep: epoch {:.2}s vs event {:.2}s ({:.1}x)",
            wc.mix_epoch_secs,
            wc.mix_event_secs,
            wc.mix_speedup()
        );
    }
    if wc.capacity_event_secs > 0.0 {
        let _ = writeln!(
            out,
            "capacity point ({} SMs): epoch {:.2}s vs event {:.2}s ({:.1}x)",
            wc.capacity_sms,
            wc.capacity_epoch_secs,
            wc.capacity_event_secs,
            wc.capacity_speedup()
        );
    }
    out
}

/// Renders gate violations for the CI log.
pub fn render_drifts(drifts: &[Drift], tolerance: f64) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for d in drifts {
        let _ = writeln!(
            out,
            "FAIL {}: geomean IPC {:.4} vs baseline {:.4} ({:+.1}% drift, tolerance ±{:.0}%)",
            d.scheduler,
            d.current_ipc,
            d.baseline_ipc,
            (d.ratio - 1.0) * 100.0,
            tolerance * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunScale;

    fn report(gto: f64, ciao: f64) -> PerfReport {
        let mut geomean_ipc = BTreeMap::new();
        geomean_ipc.insert("GTO".to_string(), gto);
        geomean_ipc.insert("CIAO-C".to_string(), ciao);
        PerfReport {
            scale: "Quick".into(),
            num_sms: 1,
            seed: 0,
            wall_clock_secs: 1.0,
            mix_wall_clock_secs: 0.0,
            capped_runs: 0,
            total_runs: 42,
            geomean_ipc,
            per_benchmark_ipc: BTreeMap::new(),
            mean_sm_ipc_stddev: BTreeMap::new(),
            mix_stp: BTreeMap::new(),
            wall_clock: WallClock::default(),
        }
    }

    #[test]
    fn gate_passes_within_tolerance() {
        let base = report(0.50, 0.60);
        let cur = report(0.52, 0.57);
        assert!(compare(&cur, &base, 0.10, &["GTO", "CIAO-C"]).is_empty());
    }

    #[test]
    fn gate_catches_regression_and_unexpected_speedup() {
        let base = report(0.50, 0.60);
        let slow = report(0.40, 0.60); // -20% GTO
        let drifts = compare(&slow, &base, 0.10, &["GTO", "CIAO-C"]);
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].scheduler, "GTO");
        assert!(drifts[0].ratio < 0.9);
        // An unexplained speedup is also a modelling change worth flagging.
        let fast = report(0.50, 0.75);
        assert_eq!(compare(&fast, &base, 0.10, &["GTO", "CIAO-C"]).len(), 1);
        let text = render_drifts(&drifts, 0.10);
        assert!(text.contains("FAIL GTO"));
    }

    #[test]
    fn missing_current_scheduler_fails_missing_baseline_is_ignored() {
        let base = report(0.50, 0.60);
        let mut cur = report(0.50, 0.60);
        cur.geomean_ipc.remove("CIAO-C");
        let drifts = compare(&cur, &base, 0.10, &["GTO", "CIAO-C"]);
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].current_ipc, 0.0);
        // Gating a scheduler the baseline never measured is a no-op.
        assert!(compare(&base, &base, 0.10, &["GTO", "CIAO-C", "NEW"]).is_empty());
    }

    #[test]
    fn baseline_file_finds_and_upserts_by_configuration() {
        let mut file = BaselineFile::default();
        file.upsert(report(0.5, 0.6));
        let mut chip = report(0.1, 0.2);
        chip.scale = "Tiny".into();
        chip.num_sms = 15;
        file.upsert(chip);
        assert_eq!(file.snapshots.len(), 2);
        assert!(file.find("Quick", 1, 0).is_some());
        assert!(file.find("Tiny", 15, 0).is_some());
        assert!(file.find("Quick", 15, 0).is_none());
        assert!(file.find("Quick", 1, 3).is_none(), "seed is part of the key");
        // Upserting the same configuration replaces, not appends.
        let mut updated = report(0.7, 0.8);
        updated.total_runs = 99;
        file.upsert(updated);
        assert_eq!(file.snapshots.len(), 2);
        assert_eq!(file.find("Quick", 1, 0).unwrap().total_runs, 99);
        // Round-trips through JSON.
        let json = serde_json::to_string_pretty(&file).unwrap();
        let back: BaselineFile = serde_json::from_str(&json).unwrap();
        assert_eq!(back.snapshots.len(), 2);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut r = report(0.5, 0.6);
        r.wall_clock = WallClock {
            mix_epoch_secs: 4.0,
            mix_event_secs: 1.0,
            capacity_sms: CAPACITY_PROBE_SMS,
            capacity_epoch_secs: 6.5,
            capacity_event_secs: 1.0,
        };
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: PerfReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.geomean_ipc, r.geomean_ipc);
        assert_eq!(back.total_runs, 42);
        assert_eq!(back.wall_clock, r.wall_clock);
    }

    #[test]
    fn wall_clock_speedups_and_rendering() {
        // Unmeasured: speedups are 0, nothing rendered.
        let zero = WallClock::default();
        assert_eq!(zero.mix_speedup(), 0.0);
        assert_eq!(zero.capacity_speedup(), 0.0);
        assert!(!render(&report(0.5, 0.6)).contains("capacity point"));

        let mut r = report(0.5, 0.6);
        r.wall_clock = WallClock {
            mix_epoch_secs: 4.0,
            mix_event_secs: 2.0,
            capacity_sms: 64,
            capacity_epoch_secs: 6.5,
            capacity_event_secs: 1.0,
        };
        assert_eq!(r.wall_clock.mix_speedup(), 2.0);
        assert_eq!(r.wall_clock.capacity_speedup(), 6.5);
        let text = render(&r);
        assert!(text.contains("mix sweep: epoch 4.00s vs event 2.00s (2.0x)"));
        assert!(text.contains("capacity point (64 SMs): epoch 6.50s vs event 1.00s (6.5x)"));
    }

    #[test]
    fn capacity_point_backends_agree_and_are_timed() {
        let runner = Runner::new(RunScale::Tiny);
        let (epoch_secs, event_secs) =
            measure_capacity_point(&runner, 4).expect("backends must agree");
        assert!(epoch_secs > 0.0);
        assert!(event_secs > 0.0);
    }

    #[test]
    fn mix_gate_fails_closed_on_missing_keys_and_catches_drift() {
        let mut base = report(0.5, 0.6);
        let mut cur = report(0.5, 0.6);
        for key in required_mix_keys() {
            base.mix_stp.insert(key.clone(), 1.2);
            cur.mix_stp.insert(key, 1.2);
        }
        assert!(compare_mixes(&cur, &base, 0.10).is_empty());

        // Drift on one cell.
        let key = mix_stp_key(Mix::CacheStream, DispatchPolicy::InterferenceAware);
        cur.mix_stp.insert(key.clone(), 1.0);
        let drifts = compare_mixes(&cur, &base, 0.10);
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].key, key);
        assert_eq!(drifts[0].reason, "drift");
        assert!(drifts[0].ratio < 0.9);
        cur.mix_stp.insert(key.clone(), 1.2);

        // A key missing from the current report fails closed.
        cur.mix_stp.remove(&key);
        let drifts = compare_mixes(&cur, &base, 0.10);
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].reason, "missing from current");
        cur.mix_stp.insert(key.clone(), 1.2);

        // A key missing from the baseline snapshot also fails closed.
        base.mix_stp.remove(&key);
        let drifts = compare_mixes(&cur, &base, 0.10);
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].reason, "missing from baseline");
        let text = render_mix_drifts(&drifts, 0.10);
        assert!(text.contains("missing from baseline"));

        // Every (mix × gated policy) pair is required.
        assert_eq!(required_mix_keys().len(), Mix::all().len() * gate_policies().len());
        assert!(required_mix_keys().contains(&"cache-stream/shared-rr".to_string()));
        assert!(required_mix_keys().contains(&"cache-stream/interference-aware".to_string()));
    }

    #[test]
    fn measure_produces_gated_schedulers() {
        let runner = Runner::new(RunScale::Tiny);
        let r = measure(&runner, &[Benchmark::Syrk, Benchmark::Nn], &gate_schedulers());
        assert_eq!(r.total_runs, 4);
        assert!(r.geomean_ipc["GTO"] > 0.0);
        assert!(r.geomean_ipc["CIAO-C"] > 0.0);
        assert!(r.per_benchmark_ipc["GTO"].contains_key("SYRK"));
        assert!(r.wall_clock_secs >= 0.0);
        let text = render(&r);
        assert!(text.contains("geomean IPC"));
    }
}
