//! # ciao-harness — experiment harness for the CIAO reproduction
//!
//! One module per table/figure of the paper's evaluation (§V), plus the
//! shared machinery to build scheduler configurations, run simulations in
//! parallel and render reports:
//!
//! | paper artefact | module | harness command |
//! |---|---|---|
//! | Table I (machine configuration) | [`experiments::table1`] | `table1` |
//! | Table II (benchmark characteristics) | [`experiments::table2`] | `table2` |
//! | Fig. 1a/1b (motivation: Backprop) | [`experiments::fig1`] | `fig1` |
//! | Fig. 4a/4b (interference characterisation) | [`experiments::fig4`] | `fig4` |
//! | Fig. 8a/8b (overall performance, shared-memory utilisation) | [`experiments::fig8`] | `fig8` |
//! | Fig. 9 (ATAX / Backprop over time) | [`experiments::fig9`] | `fig9` |
//! | Fig. 10 (SYRK / KMN over time) | [`experiments::fig10`] | `fig10` |
//! | Fig. 11a/11b (sensitivity) | [`experiments::fig11`] | `fig11` |
//! | Fig. 12a/12b (cache / DRAM configurations) | [`experiments::fig12`] | `fig12` |
//! | §V-F (overhead analysis) | [`experiments::overhead`] | `overhead` |
//! | Multi-tenant mixes (STP/ANTT across policies) | [`experiments::mix`] | `mix` |
//! | Capacity curves (STP vs SM count per policy) | [`experiments::capacity`] | `capacity` |
//! | Perfetto trace + metrics of one observed co-run | [`runner`] (`sim-obs`) | `trace` |
//! | Wall-clock phase profile, both timing backends | [`runner`] (`sim-obs`) | `profile` |
//! | CI performance-regression gate | [`perf`] | `perf` |
//!
//! Every experiment accepts the `--sms N` axis: the [`runner::Runner`]
//! simulates each (benchmark, scheduler) pair on an N-SM chip with parallel
//! per-SM execution and a shared banked L2/DRAM when `N > 1`. Every
//! experiment also accepts `--obs {off,metrics,full}` (the runner arms the
//! `sim-obs` layer on each simulation it issues) and the `-v`/`--quiet`
//! verbosity flags, which drive the [`runner::log`] diagnostics channel.
//!
//! Every experiment returns a serialisable result structure plus a plain-text
//! rendering, so `cargo bench` (crate `ciao-bench`) and the `ciao-harness`
//! binary share the exact same code paths.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod experiments;
pub mod perf;
pub mod report;
pub mod runner;
pub mod schedulers;

pub use perf::{BaselineFile, PerfReport};
pub use report::{geometric_mean, Table};
pub use runner::{RunRecord, RunScale, Runner};
pub use schedulers::SchedulerKind;
