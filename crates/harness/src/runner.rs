//! Simulation runner: builds (benchmark × scheduler × configuration) runs and
//! executes them, optionally in parallel across worker threads.
//!
//! The runner exposes the harness's `--sms N` axis: with `sms == 1` (the
//! default) every run uses the legacy single-SM simulator, which is what all
//! recorded baselines (including `bench/baseline.json`) were produced with;
//! with `sms > 1` each run simulates a chip of N SMs executing in parallel
//! against the shared banked L2/DRAM backend, with one scheduler instance
//! per SM.

use crate::schedulers::SchedulerKind;
use ciao_core::CiaoParams;
use ciao_workloads::{Benchmark, Mix, ScaleConfig};
use gpu_sim::{
    BackendKind, DispatchPolicy, GpuConfig, Kernel, ObsLevel, ObsReport, SimRequest, SimResult,
    Simulator,
};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicI8, Ordering};
use std::sync::Arc;

/// Global diagnostic verbosity: `-1` (quiet) silences [`log`], `0` (normal)
/// prints progress lines, `1` (`-v`) additionally prints [`log_verbose`]
/// detail. Diagnostics go to stderr so stdout stays clean for tables and
/// JSON exports.
static VERBOSITY: AtomicI8 = AtomicI8::new(0);

/// Sets the global diagnostic verbosity: `-1` (`--quiet`), `0` (normal) or
/// `1` (`-v`).
pub fn set_verbosity(level: i8) {
    VERBOSITY.store(level, Ordering::Relaxed);
}

/// The current diagnostic verbosity.
pub fn verbosity() -> i8 {
    VERBOSITY.load(Ordering::Relaxed)
}

/// Prints one harness diagnostic line to stderr unless `--quiet` silenced
/// diagnostics. Every non-table message the harness emits goes through here
/// (or [`log_verbose`]) so the verbosity flags govern all of them.
pub fn log(msg: std::fmt::Arguments<'_>) {
    if verbosity() >= 0 {
        eprintln!("[ciao-harness] {msg}");
    }
}

/// Prints a detail line only at `-v` verbosity.
pub fn log_verbose(msg: std::fmt::Arguments<'_>) {
    if verbosity() >= 1 {
        eprintln!("[ciao-harness] {msg}");
    }
}

/// How large each simulation is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunScale {
    /// Tiny runs for unit tests and doc examples.
    Tiny,
    /// Reduced runs for smoke benches and quick sanity checks.
    Quick,
    /// The runs used for the numbers recorded in EXPERIMENTS.md.
    Full,
}

impl RunScale {
    /// The workload scale for this run size.
    pub fn workload_scale(self) -> ScaleConfig {
        match self {
            RunScale::Tiny => ScaleConfig::tiny(),
            RunScale::Quick => ScaleConfig::quick(),
            RunScale::Full => ScaleConfig::full(),
        }
    }

    /// The per-run dynamic-instruction cap.
    pub fn max_instructions(self) -> u64 {
        match self {
            RunScale::Tiny => 6_000,
            RunScale::Quick => 40_000,
            RunScale::Full => 200_000,
        }
    }

    /// The time-series sampling interval (in instructions).
    pub fn sample_interval(self) -> u64 {
        match self {
            RunScale::Tiny => 500,
            RunScale::Quick => 2_000,
            RunScale::Full => 5_000,
        }
    }
}

/// One (benchmark, scheduler) simulation outcome, with the metrics every
/// figure needs pre-extracted.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunRecord {
    /// Benchmark simulated.
    pub benchmark: String,
    /// Benchmark class label ("LWS"/"SWS"/"CI").
    pub class: String,
    /// Scheduler label.
    pub scheduler: String,
    /// Instructions per cycle.
    pub ipc: f64,
    /// L1D hit rate.
    pub l1d_hit_rate: f64,
    /// Measured accesses per kilo-instruction.
    pub apki: f64,
    /// Mean number of active warps over the run's time series.
    pub mean_active_warps: f64,
    /// Cross-warp evictions (L1D + shared-memory cache).
    pub interference_events: u64,
    /// VTA hits reported by the scheduler (0 for schedulers without a VTA).
    pub vta_hits: u64,
    /// Shared-memory cache utilisation at the end of the run (Fig. 8b).
    pub redirect_utilization: f64,
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions simulated.
    pub instructions: u64,
    /// Whether the run hit an instruction/cycle cap instead of finishing the
    /// kernel (reports mark such rows so capped IPCs are not over-read).
    pub capped: bool,
    /// Number of SMs simulated for this record.
    pub num_sms: usize,
    /// Lowest per-SM IPC of the run (equals `ipc` on a 1-SM run).
    pub sm_ipc_min: f64,
    /// Highest per-SM IPC of the run.
    pub sm_ipc_max: f64,
    /// Standard deviation of per-SM IPC — the partitioning-skew signal.
    pub sm_ipc_stddev: f64,
}

impl RunRecord {
    /// Builds a record from a raw simulation result.
    pub fn from_result(benchmark: Benchmark, scheduler: SchedulerKind, res: &SimResult) -> Self {
        let imbalance = res.sm_imbalance();
        RunRecord {
            benchmark: benchmark.name().to_string(),
            class: benchmark.class().label().to_string(),
            scheduler: scheduler.label().to_string(),
            ipc: res.ipc(),
            l1d_hit_rate: res.l1d_hit_rate(),
            apki: res.stats.apki(),
            mean_active_warps: res.time_series.mean_active_warps(),
            interference_events: res.stats.cross_warp_evictions
                + res.stats.redirect_cross_warp_evictions,
            vta_hits: res.scheduler_metrics.vta_hits,
            redirect_utilization: res.stats.redirect_utilization,
            cycles: res.cycles,
            instructions: res.stats.instructions,
            capped: res.capped,
            num_sms: res.num_sms,
            sm_ipc_min: imbalance.min_ipc,
            sm_ipc_max: imbalance.max_ipc,
            sm_ipc_stddev: imbalance.stddev_ipc,
        }
    }
}

/// The simulation runner.
#[derive(Debug, Clone)]
pub struct Runner {
    /// Machine configuration used for every run (unless overridden per call).
    pub config: GpuConfig,
    /// CIAO parameters used for the CIAO variants.
    pub params: CiaoParams,
    /// Run size.
    pub scale: RunScale,
    /// Number of worker threads for matrix runs.
    pub threads: usize,
    /// Number of SMs each simulation models (the `--sms N` axis). `1` uses
    /// the legacy single-SM path; `> 1` runs the parallel multi-SM chip
    /// engine with a shared L2/DRAM backend.
    pub sms: usize,
    /// Experiment seed mixed into every synthetic trace (the `--seed N`
    /// axis); `0` reproduces the historical single-seed traces bit for bit.
    pub seed: u64,
    /// Arrival stagger for mix co-runs (the `--arrivals STRIDE` axis):
    /// tenant `t` of a mix enters the kernel queue at `t × stride` cycles.
    /// `0` (the default) launches every tenant at cycle 0.
    pub arrival_stride: u64,
    /// Timing backend driving every simulation (the `--backend` axis). Both
    /// backends produce bit-identical results; `event` is much faster on
    /// memory-bound multi-SM runs.
    pub backend: BackendKind,
    /// Observability level armed on every simulation (the `--obs` axis).
    /// `Off` (the default) adds no work to the hot paths; the collected
    /// [`ObsReport`]s only surface through the `*_observed` entry points.
    pub obs: ObsLevel,
}

/// The run-shaping knobs every experiment command consumes, gathered into one
/// config struct: the CLI parses straight into a `RunPlan` and experiments
/// build their [`Runner`] from it with [`Runner::from_plan`].
#[derive(Debug, Clone)]
pub struct RunPlan {
    /// Run size (the `--tiny` / `--quick` / `--full` axis).
    pub scale: RunScale,
    /// Number of simulated SMs per run (`--sms N`).
    pub sms: usize,
    /// Experiment seed mixed into every synthetic trace (`--seed N`).
    pub seed: u64,
    /// Arrival stagger for mix co-runs (`--arrivals STRIDE`).
    pub arrival_stride: u64,
    /// Timing backend (`--backend {epoch,event}`).
    pub backend: BackendKind,
    /// Observability level (`--obs {off,metrics,full}`).
    pub obs: ObsLevel,
    /// Worker-thread override for matrix runs; `None` keeps the runner's
    /// hardware-derived default.
    pub threads: Option<usize>,
}

impl RunPlan {
    /// A plan at the given scale with every other knob at its default.
    pub fn new(scale: RunScale) -> Self {
        RunPlan {
            scale,
            sms: 1,
            seed: 0,
            arrival_stride: 0,
            backend: BackendKind::default(),
            obs: ObsLevel::Off,
            threads: None,
        }
    }
}

impl Runner {
    /// Creates a runner for the given scale with the Table I configuration.
    pub fn new(scale: RunScale) -> Self {
        Runner {
            config: GpuConfig::gtx480(),
            params: CiaoParams::default(),
            scale,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            sms: 1,
            seed: 0,
            arrival_stride: 0,
            backend: BackendKind::default(),
            obs: ObsLevel::Off,
        }
    }

    /// Builds a runner from a [`RunPlan`].
    pub fn from_plan(plan: &RunPlan) -> Self {
        let mut runner = Runner::new(plan.scale)
            .with_sms(plan.sms)
            .with_seed(plan.seed)
            .with_arrivals(plan.arrival_stride)
            .with_backend(plan.backend)
            .with_obs(plan.obs);
        if let Some(threads) = plan.threads {
            runner.threads = threads.max(1);
        }
        runner
    }

    /// Overrides the machine configuration (Fig. 12 variants).
    pub fn with_config(mut self, config: GpuConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides the CIAO parameters (Fig. 11 sweeps).
    pub fn with_params(mut self, params: CiaoParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the number of simulated SMs per run.
    pub fn with_sms(mut self, sms: usize) -> Self {
        self.sms = sms.max(1);
        self
    }

    /// Sets the experiment seed mixed into every synthetic trace.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the arrival stagger for mix co-runs (tenant `t` arrives at
    /// `t × stride` cycles).
    pub fn with_arrivals(mut self, stride: u64) -> Self {
        self.arrival_stride = stride;
        self
    }

    /// Sets the timing backend driving every simulation.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the observability level armed on every simulation.
    pub fn with_obs(mut self, obs: ObsLevel) -> Self {
        self.obs = obs;
        self
    }

    /// The effective GPU configuration for a run (adds caps and sampling).
    pub fn effective_config(&self) -> GpuConfig {
        self.config
            .clone()
            .with_max_instructions(self.scale.max_instructions())
            .with_sample_interval(self.scale.sample_interval())
    }

    /// The effective workload scale for a run (applies the experiment seed).
    pub fn effective_scale(&self) -> ScaleConfig {
        self.scale.workload_scale().with_seed(self.seed)
    }

    /// Runs one (benchmark, scheduler) pair and returns the full result:
    /// the legacy single-SM simulation when `sms == 1`, a parallel multi-SM
    /// chip simulation (one scheduler instance per SM, shared banked
    /// L2/DRAM) otherwise.
    pub fn run_one(&self, benchmark: Benchmark, scheduler: SchedulerKind) -> SimResult {
        self.run_one_observed(benchmark, scheduler).0
    }

    /// [`Runner::run_one`] plus the run's [`ObsReport`] at the runner's
    /// observability level (empty at [`ObsLevel::Off`]).
    pub fn run_one_observed(
        &self,
        benchmark: Benchmark,
        scheduler: SchedulerKind,
    ) -> (SimResult, ObsReport) {
        let config = self.effective_config();
        let kernel: Arc<dyn Kernel> = Arc::new(benchmark.kernel(&self.effective_scale()));
        let sim = Simulator::new(config.clone());
        let req = SimRequest::kernel(kernel).num_sms(self.sms).backend(self.backend).obs(self.obs);
        sim.execute_observed(req, |_sm| scheduler.build(benchmark, &config, &self.params))
    }

    /// Co-runs the benchmarks of `mix` (one tenant each, in mix order) on a
    /// chip of `sms` SMs under `policy`, with one `scheduler` instance per
    /// SM, staggering tenant arrivals by the runner's `arrival_stride`.
    /// Profile-derived scheduler parameters (Best-SWL / statPCAL warp
    /// budgets) use the mix's first benchmark — a mix has no single profile.
    pub fn run_mix(&self, mix: Mix, policy: DispatchPolicy, scheduler: SchedulerKind) -> SimResult {
        self.run_mix_observed(mix, policy, scheduler).0
    }

    /// [`Runner::run_mix`] plus the co-run's [`ObsReport`] at the runner's
    /// observability level (empty at [`ObsLevel::Off`]).
    pub fn run_mix_observed(
        &self,
        mix: Mix,
        policy: DispatchPolicy,
        scheduler: SchedulerKind,
    ) -> (SimResult, ObsReport) {
        let config = self.effective_config();
        let scale = self.effective_scale();
        let kernels = mix.kernels(&scale);
        let arrivals = mix.staggered_arrivals(self.arrival_stride);
        let profile = mix.benchmarks()[0];
        let sim = Simulator::new(config.clone());
        let mut req =
            SimRequest::new().policy(policy).num_sms(self.sms).backend(self.backend).obs(self.obs);
        for (k, kernel) in kernels.into_iter().enumerate() {
            req = req.stream_at(kernel, arrivals.get(k).copied().unwrap_or(0));
        }
        sim.execute_observed(req, |_sm| scheduler.build(profile, &config, &self.params))
    }

    /// Runs one pair and returns the condensed record.
    pub fn record(&self, benchmark: Benchmark, scheduler: SchedulerKind) -> RunRecord {
        let res = self.run_one(benchmark, scheduler);
        RunRecord::from_result(benchmark, scheduler, &res)
    }

    /// Runs the full (benchmarks × schedulers) matrix, in parallel, returning
    /// records in a deterministic (benchmark-major) order.
    pub fn run_matrix(
        &self,
        benchmarks: &[Benchmark],
        schedulers: &[SchedulerKind],
    ) -> Vec<RunRecord> {
        let jobs: Vec<(usize, Benchmark, SchedulerKind)> = benchmarks
            .iter()
            .flat_map(|&b| schedulers.iter().map(move |&s| (b, s)))
            .enumerate()
            .map(|(i, (b, s))| (i, b, s))
            .collect();
        let results: Mutex<Vec<Option<RunRecord>>> = Mutex::new(vec![None; jobs.len()]);
        let next: Mutex<usize> = Mutex::new(0);
        // Each multi-SM run spawns `sms` barrier-synchronised worker threads
        // of its own, so divide the outer pool accordingly to avoid
        // oversubscribing the machine with threads × sms blocked barriers.
        let workers = self.threads.div_ceil(self.sms.max(1)).clamp(1, jobs.len().max(1));

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let idx = {
                        let mut n = next.lock();
                        if *n >= jobs.len() {
                            break;
                        }
                        let idx = *n;
                        *n += 1;
                        idx
                    };
                    let (slot, benchmark, scheduler) = jobs[idx];
                    let record = self.record(benchmark, scheduler);
                    results.lock()[slot] = Some(record);
                });
            }
        });

        results.into_inner().into_iter().map(|r| r.expect("every job ran")).collect()
    }
}

/// Normalises each benchmark's IPC to the named baseline scheduler, returning
/// `(benchmark, scheduler, normalised_ipc)` tuples (the Fig. 8a / Fig. 12
/// presentation).
pub fn normalize_to(records: &[RunRecord], baseline: &str) -> Vec<(String, String, f64)> {
    let mut out = Vec::with_capacity(records.len());
    for r in records {
        let base = records
            .iter()
            .find(|b| b.benchmark == r.benchmark && b.scheduler == baseline)
            .map(|b| b.ipc)
            .unwrap_or(0.0);
        let norm = if base > 0.0 { r.ipc / base } else { 0.0 };
        out.push((r.benchmark.clone(), r.scheduler.clone(), norm));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(RunScale::Tiny.max_instructions() < RunScale::Quick.max_instructions());
        assert!(RunScale::Quick.max_instructions() < RunScale::Full.max_instructions());
    }

    #[test]
    fn run_one_produces_consistent_record() {
        let runner = Runner::new(RunScale::Tiny);
        let rec = runner.record(Benchmark::Syrk, SchedulerKind::Gto);
        assert_eq!(rec.benchmark, "SYRK");
        assert_eq!(rec.scheduler, "GTO");
        assert_eq!(rec.class, "SWS");
        assert!(rec.ipc > 0.0);
        assert!(rec.instructions > 0);
        assert!(rec.cycles > 0);
    }

    #[test]
    fn matrix_runs_every_pair_in_order() {
        let mut runner = Runner::new(RunScale::Tiny);
        runner.threads = 2;
        let benchmarks = [Benchmark::Syrk, Benchmark::Nn];
        let schedulers = [SchedulerKind::Gto, SchedulerKind::CiaoC];
        let records = runner.run_matrix(&benchmarks, &schedulers);
        assert_eq!(records.len(), 4);
        assert_eq!(records[0].benchmark, "SYRK");
        assert_eq!(records[0].scheduler, "GTO");
        assert_eq!(records[3].benchmark, "NN");
        assert_eq!(records[3].scheduler, "CIAO-C");
    }

    #[test]
    fn normalisation_uses_the_baseline() {
        let records = vec![
            RunRecord {
                benchmark: "A".into(),
                class: "LWS".into(),
                scheduler: "GTO".into(),
                ipc: 2.0,
                l1d_hit_rate: 0.0,
                apki: 0.0,
                mean_active_warps: 0.0,
                interference_events: 0,
                vta_hits: 0,
                redirect_utilization: 0.0,
                cycles: 1,
                instructions: 1,
                capped: false,
                num_sms: 1,
                sm_ipc_min: 0.0,
                sm_ipc_max: 0.0,
                sm_ipc_stddev: 0.0,
            },
            RunRecord {
                benchmark: "A".into(),
                class: "LWS".into(),
                scheduler: "X".into(),
                ipc: 3.0,
                l1d_hit_rate: 0.0,
                apki: 0.0,
                mean_active_warps: 0.0,
                interference_events: 0,
                vta_hits: 0,
                redirect_utilization: 0.0,
                cycles: 1,
                instructions: 1,
                capped: false,
                num_sms: 1,
                sm_ipc_min: 0.0,
                sm_ipc_max: 0.0,
                sm_ipc_stddev: 0.0,
            },
        ];
        let norm = normalize_to(&records, "GTO");
        assert!((norm[0].2 - 1.0).abs() < 1e-12);
        assert!((norm[1].2 - 1.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let runner = Runner::new(RunScale::Tiny);
        let a = runner.record(Benchmark::Nn, SchedulerKind::CiaoC);
        let b = runner.record(Benchmark::Nn, SchedulerKind::CiaoC);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
        assert!((a.ipc - b.ipc).abs() < 1e-12);
    }

    /// Serialises a result with the backend label blanked so epoch and event
    /// runs can be compared field-for-field.
    fn backend_blind_json(mut res: SimResult) -> String {
        res.backend = String::new();
        serde_json::to_string(&res).expect("results serialize")
    }

    #[test]
    fn event_backend_matches_epoch_on_a_real_benchmark() {
        let epoch = Runner::new(RunScale::Quick)
            .with_backend(BackendKind::Epoch)
            .run_one(Benchmark::Syrk, SchedulerKind::CiaoC);
        let event = Runner::new(RunScale::Quick)
            .with_backend(BackendKind::Event)
            .run_one(Benchmark::Syrk, SchedulerKind::CiaoC);
        assert_eq!(epoch.backend, "epoch");
        assert_eq!(event.backend, "event");
        assert_eq!(backend_blind_json(epoch), backend_blind_json(event));
    }

    #[test]
    fn event_backend_matches_epoch_on_a_staggered_chip_mix() {
        let plan = |backend| {
            let mut plan = RunPlan::new(RunScale::Tiny);
            plan.sms = 15;
            plan.arrival_stride = 2_000;
            plan.backend = backend;
            plan
        };
        let epoch = Runner::from_plan(&plan(BackendKind::Epoch)).run_mix(
            Mix::CacheStream,
            DispatchPolicy::InterferenceAware,
            SchedulerKind::CiaoT,
        );
        let event = Runner::from_plan(&plan(BackendKind::Event)).run_mix(
            Mix::CacheStream,
            DispatchPolicy::InterferenceAware,
            SchedulerKind::CiaoT,
        );
        assert_eq!(epoch.num_sms, 15);
        assert_eq!(epoch.per_tenant.len(), 2);
        assert_eq!(backend_blind_json(epoch), backend_blind_json(event));
    }

    #[test]
    fn multi_sm_axis_runs_the_chip_engine() {
        let runner = Runner::new(RunScale::Tiny).with_sms(2);
        let res = runner.run_one(Benchmark::Nn, SchedulerKind::CiaoC);
        assert_eq!(res.num_sms, 2);
        assert_eq!(res.per_sm.len(), 2);
        assert!(res.stats.instructions > 0);
        let rec = RunRecord::from_result(Benchmark::Nn, SchedulerKind::CiaoC, &res);
        assert_eq!(rec.num_sms, 2);
        // Deterministic across repeats despite parallel per-SM execution.
        let res2 = runner.run_one(Benchmark::Nn, SchedulerKind::CiaoC);
        assert_eq!(res.cycles, res2.cycles);
        assert_eq!(res.stats, res2.stats);
    }
}
