//! Report helpers: aligned text tables, geometric means, per-SM imbalance
//! formatting and CSV/JSON output.

use gpu_sim::{DispatchSummary, SmImbalance};
use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// Geometric mean of a slice of positive values (0.0 for an empty slice;
/// non-positive entries are clamped to a tiny epsilon so a single broken run
/// cannot produce NaNs in a report).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let sum: f64 = values.iter().map(|&v| v.max(1e-12).ln()).sum();
    (sum / values.len() as f64).exp()
}

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        if !self.header.is_empty() {
            let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
            let _ = writeln!(
                out,
                "{}",
                "-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1)))
            );
        }
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header.iter().map(|h| escape(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ =
                writeln!(out, "{}", row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// Writes a serialisable result as pretty JSON next to the text report.
/// Errors are reported, not fatal — the text output is the primary artefact.
pub fn write_json<T: Serialize>(path: &Path, value: &T) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, json)
}

/// Formats a ratio as `x.xx×`.
pub fn speedup(value: f64) -> String {
    format!("{value:.2}x")
}

/// Formats a fraction as a percentage.
pub fn percent(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

/// Formats a per-SM IPC imbalance as `min–max (σ stddev)` — the compact cell
/// chip-level reports use to make partitioning skew visible.
pub fn imbalance_cell(im: &SmImbalance) -> String {
    format!("{:.3}-{:.3} (σ {:.4})", im.min_ipc, im.max_ipc, im.stddev_ipc)
}

/// Compact per-tenant dispatcher verdict from a pre-computed
/// [`DispatchSummary`] — `t0 cache (3T/1R), t1 stream (0T/0R)` — so report
/// loops format the digest instead of re-walking the decision log per
/// tenant. Empty for runs whose policy logged no decisions.
pub fn dispatch_verdict(summary: &DispatchSummary) -> String {
    summary
        .tenants
        .iter()
        .map(|t| {
            format!("t{} {} ({}T/{}R)", t.tenant, t.final_class.label(), t.throttles, t.restores)
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Visible marker appended to rows whose run hit an instruction/cycle cap
/// instead of finishing its kernel (empty for clean runs).
pub fn capped_marker(capped: bool) -> &'static str {
    if capped {
        " (capped)"
    } else {
        ""
    }
}

/// One-line summary of how many runs in a batch were capped; empty when none
/// were, so clean reports stay clean.
pub fn capped_summary(capped_runs: usize, total_runs: usize) -> String {
    if capped_runs == 0 {
        String::new()
    } else {
        format!(
            "note: {capped_runs}/{total_runs} runs hit the instruction/cycle cap before \
             finishing their kernel; their IPCs are lower bounds\n"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        // Robust to a zero entry.
        assert!(geometric_mean(&[0.0, 1.0]).is_finite());
    }

    #[test]
    fn table_renders_aligned_and_csv() {
        let mut t = Table::new("demo", &["bench", "ipc"]);
        t.row(vec!["ATAX".into(), "1.25".into()]);
        t.row(vec!["GESUMMV".into(), "0.5".into()]);
        let text = t.render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("ATAX"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let csv = t.to_csv();
        assert!(csv.starts_with("bench,ipc"));
        assert!(csv.contains("GESUMMV,0.5"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("", &["a"]);
        t.row(vec!["x,y".into()]);
        t.row(vec!["he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(speedup(1.539), "1.54x");
        assert_eq!(percent(0.1234), "12.3%");
        let im = SmImbalance { min_ipc: 0.1, max_ipc: 0.52, stddev_ipc: 0.0421 };
        assert_eq!(imbalance_cell(&im), "0.100-0.520 (σ 0.0421)");
    }

    #[test]
    fn dispatch_verdict_formats_per_tenant_digest() {
        use gpu_sim::{DispatchTenantSummary, TenantClass};
        assert_eq!(dispatch_verdict(&DispatchSummary::default()), "");
        let summary = DispatchSummary {
            tenants: vec![
                DispatchTenantSummary {
                    tenant: 0,
                    throttles: 3,
                    restores: 1,
                    final_class: TenantClass::CacheSensitive,
                },
                DispatchTenantSummary {
                    tenant: 1,
                    throttles: 0,
                    restores: 0,
                    final_class: TenantClass::Streaming,
                },
            ],
        };
        assert_eq!(dispatch_verdict(&summary), "t0 cache (3T/1R), t1 stream (0T/0R)");
    }

    #[test]
    fn capped_markers_and_summary() {
        assert_eq!(capped_marker(true), " (capped)");
        assert_eq!(capped_marker(false), "");
        assert_eq!(capped_summary(0, 10), "");
        let s = capped_summary(3, 10);
        assert!(s.contains("3/10"));
        assert!(s.contains("cap"));
    }

    #[test]
    fn write_json_roundtrip() {
        let dir = std::env::temp_dir().join("ciao_harness_test_json");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.json");
        write_json(&path, &vec![1, 2, 3]).unwrap();
        let back: Vec<i32> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }
}
