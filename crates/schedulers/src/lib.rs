//! # ciao-schedulers — baseline warp schedulers
//!
//! The schedulers the CIAO paper compares against (besides the plain GTO
//! scheduler that lives in `gpu-sim`):
//!
//! * [`vta`] — the Victim Tag Array of CCWS (§II-C), which both CCWS and the
//!   CIAO interference detector build on. Evicted tags are remembered per
//!   warp; re-referencing an evicted tag is a *VTA hit* and signals locality
//!   lost to interference.
//! * [`ccws`] — Cache-Conscious Wavefront Scheduling: warps that keep losing
//!   locality accumulate a lost-locality score and the scheduler throttles
//!   the *other* (low-locality) warps so the high-locality warps get more
//!   exclusive cache space.
//! * [`swl`] — Best-SWL, static wavefront limiting: only the `N` oldest warps
//!   are allowed to issue, with `N` chosen by offline profiling (the `Nwrp`
//!   column of Table II).
//! * [`pcal`] — a statPCAL-style priority-based cache-allocation/bypass
//!   policy: a fixed set of token-holding warps uses the L1D normally, and
//!   the remaining warps are allowed to run but bypass the L1D whenever spare
//!   memory bandwidth exists (otherwise they are throttled).
//!
//! All of them implement [`gpu_sim::WarpScheduler`] and plug into the same SM
//! model, so every figure of the paper compares like against like.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod ccws;
pub mod pcal;
pub mod swl;
pub mod vta;

pub use ccws::{CcwsConfig, CcwsScheduler};
pub use pcal::{PcalConfig, PcalScheduler};
pub use swl::SwlScheduler;
pub use vta::{Vta, VtaConfig, VtaHit};
