//! Best-SWL: static wavefront limiting with an offline-profiled warp count.
//!
//! Best-SWL fixes the number of schedulable warps to `limit` for the whole
//! run; the limit is chosen per benchmark by profiling (the `Nwrp` column of
//! Table II). Among the admitted warps the order is greedy-then-oldest, the
//! same base policy every scheduler in the evaluation uses. Because the limit
//! cannot adapt to phase changes, Best-SWL loses to dynamic schemes on
//! applications such as ATAX whose second phase wants full TLP (Fig. 9a).

use gpu_mem::{Cycle, WarpId};
use gpu_sim::scheduler::{SchedulerCtx, SchedulerMetrics, WarpScheduler};

/// The Best-SWL scheduler.
pub struct SwlScheduler {
    /// Maximum number of concurrently schedulable warps.
    limit: usize,
    /// Warps currently admitted (by warp slot).
    admitted: Vec<bool>,
    /// Warps that finished (candidates are replenished from the rest).
    finished: Vec<bool>,
    last_issued: Option<usize>,
    dirty: bool,
    num_warps: usize,
}

impl SwlScheduler {
    /// Creates a static wavefront-limiting scheduler admitting `limit` warps
    /// out of `num_warps` slots.
    pub fn new(limit: usize, num_warps: usize) -> Self {
        let limit = limit.max(1);
        SwlScheduler {
            limit,
            admitted: vec![false; num_warps],
            finished: vec![false; num_warps],
            last_issued: None,
            dirty: true,
            num_warps,
        }
    }

    /// The configured warp limit.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Re-admits the `limit` oldest unfinished warps.
    fn recompute(&mut self, ctx: &SchedulerCtx<'_>) {
        for a in self.admitted.iter_mut() {
            *a = false;
        }
        let mut candidates: Vec<usize> = ctx
            .warps
            .iter()
            .enumerate()
            .filter(|(i, w)| !w.is_finished() && !self.finished.get(*i).copied().unwrap_or(false))
            .map(|(i, _)| i)
            .collect();
        candidates.sort_by_key(|&i| ctx.warps[i].launch_seq);
        for &i in candidates.iter().take(self.limit) {
            if let Some(slot) = self.admitted.get_mut(ctx.warps[i].id as usize) {
                *slot = true;
            }
        }
        self.dirty = false;
    }
}

impl WarpScheduler for SwlScheduler {
    fn name(&self) -> &'static str {
        "Best-SWL"
    }

    fn pick(&mut self, ctx: &SchedulerCtx<'_>) -> Option<usize> {
        if self.dirty {
            self.recompute(ctx);
        }
        if let Some(last) = self.last_issued {
            if ctx.ready.contains(&last) {
                return Some(last);
            }
        }
        let pick = ctx
            .ready
            .iter()
            .copied()
            .filter(|&i| self.admitted.get(ctx.warps[i].id as usize).copied().unwrap_or(false))
            .min_by_key(|&i| ctx.warps[i].launch_seq)?;
        self.last_issued = Some(pick);
        Some(pick)
    }

    fn on_idle_cycles(&mut self, ctx: &SchedulerCtx<'_>, _skipped: u64) {
        // An empty-ready `pick` still clears a pending recompute, which
        // `is_throttled` / `metrics` observe through the dirty flag; the
        // rest of `pick` is pure when nothing is ready.
        if self.dirty {
            self.recompute(ctx);
        }
    }

    fn on_warp_launched(&mut self, wid: WarpId, _now: Cycle) {
        // Slot reuse across CTA waves: the new occupant has not finished.
        if let Some(f) = self.finished.get_mut(wid as usize) {
            *f = false;
        }
        self.dirty = true;
    }

    fn on_warp_finished(&mut self, wid: WarpId, _now: Cycle) {
        if let Some(f) = self.finished.get_mut(wid as usize) {
            *f = true;
        }
        self.dirty = true;
    }

    fn is_throttled(&self, wid: WarpId) -> bool {
        // Until the first recompute the first `limit` slots are admitted.
        if self.dirty {
            return wid as usize >= self.limit && (wid as usize) < self.num_warps;
        }
        !self.admitted.get(wid as usize).copied().unwrap_or(false)
    }

    fn metrics(&self) -> SchedulerMetrics {
        let admitted = if self.dirty {
            self.limit.min(self.num_warps)
        } else {
            self.admitted.iter().filter(|&&a| a).count()
        };
        SchedulerMetrics {
            vta_hits: 0,
            throttled_warps: self.num_warps.saturating_sub(admitted),
            isolated_warps: 0,
            bypassed_warps: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::trace::VecProgram;
    use gpu_sim::warp::Warp;

    fn warps(n: usize) -> Vec<Warp> {
        (0..n)
            .map(|i| Warp::new(i as WarpId, 0, i as u64, Box::new(VecProgram::new(vec![]))))
            .collect()
    }

    fn ctx<'a>(warps: &'a [Warp], ready: &'a [usize]) -> SchedulerCtx<'a> {
        SchedulerCtx {
            now: 0,
            warps,
            ready,
            instructions_executed: 0,
            active_warps: warps.len(),
            dram_utilization: 0.0,
        }
    }

    #[test]
    fn only_first_n_warps_admitted_initially() {
        let s = SwlScheduler::new(2, 8);
        assert!(!s.is_throttled(0));
        assert!(!s.is_throttled(1));
        assert!(s.is_throttled(2));
        assert!(s.is_throttled(7));
        assert_eq!(s.metrics().throttled_warps, 6);
    }

    #[test]
    fn picks_oldest_admitted_ready_warp() {
        let mut s = SwlScheduler::new(2, 4);
        let w = warps(4);
        // Warp 2 and 3 are ready but not admitted; warp 1 is admitted.
        assert_eq!(s.pick(&ctx(&w, &[1, 2, 3])), Some(1));
        // Greedy afterwards.
        assert_eq!(s.pick(&ctx(&w, &[1, 3])), Some(1));
    }

    #[test]
    fn finished_warps_are_replaced() {
        let mut s = SwlScheduler::new(2, 4);
        let mut w = warps(4);
        s.pick(&ctx(&w, &[0, 1, 2, 3]));
        assert!(s.is_throttled(2));
        // Warp 0 finishes; warp 2 should be admitted on the next recompute.
        w[0].finish();
        s.on_warp_finished(0, 0);
        s.pick(&ctx(&w, &[1, 2, 3]));
        assert!(!s.is_throttled(2));
        assert!(s.is_throttled(3));
    }

    #[test]
    fn limit_of_at_least_one_enforced() {
        let s = SwlScheduler::new(0, 4);
        assert_eq!(s.limit(), 1);
        assert!(!s.is_throttled(0));
    }

    #[test]
    fn full_limit_never_throttles() {
        let mut s = SwlScheduler::new(48, 48);
        let w = warps(8);
        s.pick(&ctx(&w, &[0, 1, 2]));
        assert_eq!(s.metrics().throttled_warps, 40); // only 8 warps exist; the rest of the slots are vacuous
        assert!((0..8).all(|i| !s.is_throttled(i)));
    }
}
