//! Cache-Conscious Wavefront Scheduling (CCWS).
//!
//! CCWS detects warps that keep *losing* intra-warp locality to interference
//! (via VTA hits) and gives them more exclusive access to the L1D by
//! throttling the warps with the least evidence of locality. Each warp has a
//! lost-locality score (LLS) that starts at a base value, grows on every VTA
//! hit and decays as the warp issues instructions without losing locality.
//! The scheduler keeps the total score of *runnable* warps under a fixed
//! budget (`num_warps × base_score`): when scores grow past the budget, the
//! lowest-score warps are throttled — i.e. CCWS throttles warps with *low*
//! potential of data locality, the exact opposite of CIAO's choice, which is
//! the comparison at the heart of the paper.

use crate::vta::{Vta, VtaConfig};
use gpu_mem::{Cycle, WarpId};
use gpu_sim::scheduler::{
    CacheEvent, CacheEventOutcome, SchedulerCtx, SchedulerMetrics, WarpScheduler,
};
use serde::{Deserialize, Serialize};

/// CCWS tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CcwsConfig {
    /// Victim-tag-array geometry.
    pub vta: VtaConfig,
    /// Base lost-locality score every runnable warp holds.
    pub base_score: u64,
    /// Score added on each VTA hit.
    pub vta_hit_bonus: u64,
    /// Score removed from a warp each time it issues an instruction (decay
    /// towards the base).
    pub decay_per_issue: u64,
    /// Number of warps the SM can hold (sets the score budget).
    pub num_warps: usize,
}

impl Default for CcwsConfig {
    fn default() -> Self {
        CcwsConfig {
            vta: VtaConfig::ccws(),
            base_score: 100,
            vta_hit_bonus: 256,
            decay_per_issue: 4,
            num_warps: 48,
        }
    }
}

/// The CCWS scheduler.
pub struct CcwsScheduler {
    config: CcwsConfig,
    vta: Vta,
    /// Lost-locality score per warp slot.
    scores: Vec<u64>,
    /// Warps whose programs have finished (excluded from the budget).
    finished: Vec<bool>,
    /// Warps currently prevented from issuing.
    throttled: Vec<bool>,
    /// GTO greedy pointer.
    last_issued: Option<usize>,
    /// Set when scores changed and the throttle set must be recomputed.
    dirty: bool,
}

impl CcwsScheduler {
    /// Creates a CCWS scheduler with the given configuration.
    pub fn new(config: CcwsConfig) -> Self {
        CcwsScheduler {
            vta: Vta::new(config.vta),
            scores: vec![config.base_score; config.num_warps],
            finished: vec![false; config.num_warps],
            throttled: vec![false; config.num_warps],
            last_issued: None,
            dirty: true,
            config,
        }
    }

    /// Creates a CCWS scheduler with the paper's default parameters.
    pub fn default_config() -> Self {
        Self::new(CcwsConfig::default())
    }

    /// Current lost-locality score of a warp (exposed for tests/analysis).
    pub fn score_of(&self, wid: WarpId) -> u64 {
        self.scores.get(wid as usize).copied().unwrap_or(0)
    }

    /// Recomputes the throttle set: warps are admitted in descending score
    /// order until the cumulative score exceeds the budget; the rest are
    /// throttled. Warps that already finished are ignored.
    fn recompute_throttle(&mut self) {
        let budget = self.config.base_score * self.config.num_warps as u64;
        let mut order: Vec<usize> = (0..self.scores.len()).filter(|&i| !self.finished[i]).collect();
        order.sort_by(|&a, &b| self.scores[b].cmp(&self.scores[a]).then(a.cmp(&b)));
        let mut cumulative = 0u64;
        for t in self.throttled.iter_mut() {
            *t = false;
        }
        let mut admitted_any = false;
        for &i in &order {
            cumulative += self.scores[i];
            if cumulative > budget && admitted_any {
                self.throttled[i] = true;
            } else {
                admitted_any = true;
            }
        }
        self.dirty = false;
    }
}

impl WarpScheduler for CcwsScheduler {
    fn name(&self) -> &'static str {
        "CCWS"
    }

    fn pick(&mut self, ctx: &SchedulerCtx<'_>) -> Option<usize> {
        // Forward-progress guarantee: when nothing is currently issuable
        // (every non-throttled warp waits on memory or a barrier), lost-
        // locality scores decay with time as in the original proposal, so
        // the throttle set eventually relaxes instead of freezing.
        if ctx.ready.is_empty() {
            let floor = self.config.base_score;
            let mut changed = false;
            for score in self.scores.iter_mut() {
                if *score > floor {
                    *score = score.saturating_sub(1).max(floor);
                    changed = true;
                }
            }
            self.dirty |= changed;
        }
        if self.dirty {
            self.recompute_throttle();
        }
        // Greedy on the last issued warp if still offered.
        if let Some(last) = self.last_issued {
            if ctx.ready.contains(&last) {
                return Some(last);
            }
        }
        // Otherwise prefer the ready warp with the highest lost-locality
        // score (most evidence of locality), oldest on ties.
        let pick = ctx.ready.iter().copied().max_by(|&a, &b| {
            let sa = self.scores.get(ctx.warps[a].id as usize).copied().unwrap_or(0);
            let sb = self.scores.get(ctx.warps[b].id as usize).copied().unwrap_or(0);
            sa.cmp(&sb).then(ctx.warps[b].launch_seq.cmp(&ctx.warps[a].launch_seq))
        })?;
        self.last_issued = Some(pick);
        Some(pick)
    }

    fn on_idle_cycles(&mut self, _ctx: &SchedulerCtx<'_>, skipped: u64) {
        // `skipped` empty-ready picks each decay every above-floor score by
        // 1 (clamped to the floor); applying the decay in bulk is exact
        // because `max(x - 1, floor)` iterated k times is `max(x - k, floor)`.
        let floor = self.config.base_score;
        let mut changed = false;
        for score in self.scores.iter_mut() {
            if *score > floor {
                *score = score.saturating_sub(skipped).max(floor);
                changed = true;
            }
        }
        self.dirty |= changed;
        if self.dirty {
            self.recompute_throttle();
        }
    }

    fn on_issue(&mut self, wid: WarpId, _is_mem: bool, _now: Cycle) {
        if let Some(score) = self.scores.get_mut(wid as usize) {
            let floor = self.config.base_score;
            if *score > floor {
                *score = score.saturating_sub(self.config.decay_per_issue).max(floor);
                self.dirty = true;
            }
        }
    }

    fn on_cache_event(&mut self, ev: &CacheEvent) {
        match ev.outcome {
            CacheEventOutcome::Miss => {
                if self.vta.check_miss(ev.wid, ev.block_addr).is_some() {
                    if let Some(score) = self.scores.get_mut(ev.wid as usize) {
                        *score += self.config.vta_hit_bonus;
                        self.dirty = true;
                    }
                }
            }
            CacheEventOutcome::Hit { .. } => {}
        }
        if let Some(victim) = ev.evicted {
            if victim.owner != ev.wid {
                self.vta.record_eviction(victim.owner, victim.block_addr, ev.wid);
            }
        }
    }

    fn on_warp_launched(&mut self, wid: WarpId, _now: Cycle) {
        // Warp slots are reused across CTA waves: reset the slot's state.
        if let Some(f) = self.finished.get_mut(wid as usize) {
            *f = false;
        }
        if let Some(score) = self.scores.get_mut(wid as usize) {
            *score = self.config.base_score;
        }
        self.dirty = true;
    }

    fn on_warp_finished(&mut self, wid: WarpId, _now: Cycle) {
        if let Some(f) = self.finished.get_mut(wid as usize) {
            *f = true;
        }
        if let Some(score) = self.scores.get_mut(wid as usize) {
            *score = 0;
        }
        self.dirty = true;
    }

    fn is_throttled(&self, wid: WarpId) -> bool {
        self.throttled.get(wid as usize).copied().unwrap_or(false)
    }

    fn throttles_loads_only(&self) -> bool {
        // CCWS gates only the LD/ST issue of de-prioritised warps; their
        // arithmetic instructions keep executing.
        true
    }

    fn metrics(&self) -> SchedulerMetrics {
        SchedulerMetrics {
            vta_hits: self.vta.total_hits(),
            throttled_warps: self.throttled.iter().filter(|&&t| t).count(),
            isolated_warps: 0,
            bypassed_warps: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_mem::cache::EvictedLine;
    use gpu_sim::scheduler::CacheKind;
    use gpu_sim::trace::VecProgram;
    use gpu_sim::warp::Warp;

    fn warps(n: usize) -> Vec<Warp> {
        (0..n)
            .map(|i| Warp::new(i as WarpId, 0, i as u64, Box::new(VecProgram::new(vec![]))))
            .collect()
    }

    fn ctx<'a>(warps: &'a [Warp], ready: &'a [usize]) -> SchedulerCtx<'a> {
        SchedulerCtx {
            now: 0,
            warps,
            ready,
            instructions_executed: 0,
            active_warps: warps.len(),
            dram_utilization: 0.0,
        }
    }

    fn eviction_event(wid: WarpId, victim_owner: WarpId, addr: u64) -> CacheEvent {
        CacheEvent {
            kind: CacheKind::L1d,
            wid,
            block_addr: addr,
            is_write: false,
            outcome: CacheEventOutcome::Miss,
            evicted: Some(EvictedLine {
                block_addr: addr + 0x8000,
                owner: victim_owner,
                dirty: false,
            }),
            now: 0,
        }
    }

    fn miss_event(wid: WarpId, addr: u64) -> CacheEvent {
        CacheEvent {
            kind: CacheKind::L1d,
            wid,
            block_addr: addr,
            is_write: false,
            outcome: CacheEventOutcome::Miss,
            evicted: None,
            now: 0,
        }
    }

    #[test]
    fn no_throttling_without_vta_hits() {
        let mut s = CcwsScheduler::new(CcwsConfig { num_warps: 8, ..CcwsConfig::default() });
        let w = warps(8);
        s.pick(&ctx(&w, &[0, 1, 2, 3]));
        assert_eq!(s.metrics().throttled_warps, 0);
        assert!((0..8).all(|i| !s.is_throttled(i)));
    }

    #[test]
    fn vta_hits_raise_score_and_throttle_low_locality_warps() {
        let cfg = CcwsConfig {
            num_warps: 4,
            base_score: 100,
            vta_hit_bonus: 300,
            ..CcwsConfig::default()
        };
        let mut s = CcwsScheduler::new(cfg);
        let w = warps(4);
        // Warp 0's data is evicted by warp 1, then warp 0 re-references it.
        s.on_cache_event(&eviction_event(1, 0, 0x1000));
        // The eviction stored block 0x1000+0x8000 = 0x9000 in warp 0's VTA.
        s.on_cache_event(&miss_event(0, 0x9000));
        assert!(s.score_of(0) > 100);
        assert_eq!(s.metrics().vta_hits, 1);
        // Recompute throttling: budget = 400, warp0 score=400, others 100 each.
        s.pick(&ctx(&w, &[0, 1, 2, 3]));
        let throttled = s.metrics().throttled_warps;
        assert!(throttled >= 2, "low-locality warps should be throttled, got {throttled}");
        assert!(!s.is_throttled(0), "the high-locality warp must keep running");
    }

    #[test]
    fn scores_decay_back_and_throttling_lifts() {
        let cfg = CcwsConfig {
            num_warps: 2,
            base_score: 10,
            vta_hit_bonus: 20,
            decay_per_issue: 5,
            ..CcwsConfig::default()
        };
        let mut s = CcwsScheduler::new(cfg);
        let w = warps(2);
        s.on_cache_event(&eviction_event(1, 0, 0x100));
        s.on_cache_event(&miss_event(0, 0x8100));
        s.pick(&ctx(&w, &[0, 1]));
        assert!(s.is_throttled(1));
        // Warp 0 keeps issuing; its score decays back to the base.
        for _ in 0..10 {
            s.on_issue(0, false, 0);
        }
        s.pick(&ctx(&w, &[0, 1]));
        assert!(!s.is_throttled(1), "throttling should lift once locality pressure decays");
        assert_eq!(s.score_of(0), 10);
    }

    #[test]
    fn prefers_high_score_ready_warp() {
        let cfg = CcwsConfig { num_warps: 3, vta_hit_bonus: 50, ..CcwsConfig::default() };
        let mut s = CcwsScheduler::new(cfg);
        let w = warps(3);
        s.on_cache_event(&eviction_event(0, 2, 0x200));
        s.on_cache_event(&miss_event(2, 0x8200));
        // Not greedy yet; should pick warp 2 (highest score).
        assert_eq!(s.pick(&ctx(&w, &[0, 1, 2])), Some(2));
        // Greedy on 2 afterwards.
        assert_eq!(s.pick(&ctx(&w, &[0, 2])), Some(2));
    }

    #[test]
    fn finished_warps_leave_the_budget() {
        let cfg = CcwsConfig {
            num_warps: 2,
            base_score: 100,
            vta_hit_bonus: 150,
            ..CcwsConfig::default()
        };
        let mut s = CcwsScheduler::new(cfg);
        let w = warps(2);
        s.on_cache_event(&eviction_event(1, 0, 0x100));
        s.on_cache_event(&miss_event(0, 0x8100));
        s.pick(&ctx(&w, &[0, 1]));
        assert!(s.is_throttled(1));
        s.on_warp_finished(0, 0);
        s.pick(&ctx(&w, &[1]));
        assert!(!s.is_throttled(1), "last remaining warp must never stay throttled");
    }

    #[test]
    fn at_least_one_warp_always_admitted() {
        let cfg = CcwsConfig {
            num_warps: 3,
            base_score: 1,
            vta_hit_bonus: 1000,
            ..CcwsConfig::default()
        };
        let mut s = CcwsScheduler::new(cfg);
        let w = warps(3);
        for i in 0..3u32 {
            s.on_cache_event(&eviction_event((i + 1) % 3, i, 0x100 * (i as u64 + 1)));
            s.on_cache_event(&miss_event(i, 0x8000 + 0x100 * (i as u64 + 1)));
        }
        s.pick(&ctx(&w, &[0, 1, 2]));
        assert!(s.metrics().throttled_warps < 3, "scheduler must not throttle every warp");
    }
}
