//! Victim Tag Array (VTA).
//!
//! §II-C of the paper: every cache line's tag carries the warp ID (WID) of
//! the warp that brought the data in. When a line owned by warp *v* is
//! evicted by warp *e*, the evicted block's tag together with *e* is stored
//! in the VTA entry set belonging to *v* (the entry is indexed by the WID
//! stored in the evicted tag). When a later memory request of warp *v* misses
//! in the L1D but finds its tag in *v*'s VTA entries, that is a **VTA hit**:
//! the miss would have been a hit had the interference not occurred, i.e. the
//! warp had *potential of data locality*.
//!
//! CCWS uses VTA hits to compute lost-locality scores; CIAO reuses the same
//! structure (with half the entries per warp, §V-F) to identify which warp
//! caused the lost locality — the `last_evictor` field of [`VtaHit`] — and to
//! drive its interference list.

use gpu_mem::{Addr, WarpId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Geometry of the victim tag array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VtaConfig {
    /// Number of victim tags retained per warp (FIFO replacement; Table I
    /// lists 8 tags/set × 48 sets for CCWS, and §V-F states CIAO uses half
    /// the per-warp entries CCWS uses).
    pub entries_per_warp: usize,
    /// Number of warps tracked (one entry set each).
    pub num_warps: usize,
}

impl VtaConfig {
    /// The CCWS configuration of Table I: 16 victim tags per warp, 48 warps.
    pub fn ccws() -> Self {
        VtaConfig { entries_per_warp: 16, num_warps: 48 }
    }

    /// The CIAO configuration of §V-F: 8 victim tags per warp, 48 warps.
    pub fn ciao() -> Self {
        VtaConfig { entries_per_warp: 8, num_warps: 48 }
    }
}

/// One victim record: which block was evicted and who evicted it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct VictimTag {
    block_addr: Addr,
    evictor: WarpId,
}

/// Result of a VTA lookup that hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VtaHit {
    /// The warp whose lost locality was detected.
    pub victim: WarpId,
    /// The warp that evicted the data (the *interfering* warp of §III-A).
    pub last_evictor: WarpId,
    /// The block whose reuse was lost.
    pub block_addr: Addr,
}

/// Per-warp victim tag arrays with FIFO replacement.
#[derive(Debug, Clone)]
pub struct Vta {
    config: VtaConfig,
    entries: Vec<VecDeque<VictimTag>>,
    /// Total VTA hits observed (all warps).
    total_hits: u64,
    /// Per-warp VTA-hit counters (the `VTACount0-k` registers of Fig. 6).
    hits_per_warp: Vec<u64>,
    /// Total victim insertions.
    insertions: u64,
}

impl Vta {
    /// Builds an empty VTA.
    pub fn new(config: VtaConfig) -> Self {
        Vta {
            config,
            entries: vec![VecDeque::with_capacity(config.entries_per_warp); config.num_warps],
            total_hits: 0,
            hits_per_warp: vec![0; config.num_warps],
            insertions: 0,
        }
    }

    /// The configuration of this VTA.
    pub fn config(&self) -> &VtaConfig {
        &self.config
    }

    /// Records that `evictor` evicted `block_addr`, which was owned by
    /// `victim` (called on every L1D/redirect-cache eviction event).
    pub fn record_eviction(&mut self, victim: WarpId, block_addr: Addr, evictor: WarpId) {
        let Some(set) = self.entries.get_mut(victim as usize) else {
            return;
        };
        // Refresh an existing tag rather than duplicating it.
        if let Some(pos) = set.iter().position(|t| t.block_addr == block_addr) {
            set.remove(pos);
        } else if set.len() >= self.config.entries_per_warp {
            set.pop_front();
        }
        set.push_back(VictimTag { block_addr, evictor });
        self.insertions += 1;
    }

    /// Checks a miss of warp `wid` to `block_addr` against the warp's victim
    /// tags. On a hit, the tag is consumed and the hit is counted.
    pub fn check_miss(&mut self, wid: WarpId, block_addr: Addr) -> Option<VtaHit> {
        let set = self.entries.get_mut(wid as usize)?;
        let pos = set.iter().position(|t| t.block_addr == block_addr)?;
        let tag = set.remove(pos).expect("position valid");
        self.total_hits += 1;
        self.hits_per_warp[wid as usize] += 1;
        Some(VtaHit { victim: wid, last_evictor: tag.evictor, block_addr })
    }

    /// Total VTA hits across all warps.
    pub fn total_hits(&self) -> u64 {
        self.total_hits
    }

    /// VTA hits of one warp (the per-warp counter used in Eq. 1).
    pub fn hits_of(&self, wid: WarpId) -> u64 {
        self.hits_per_warp.get(wid as usize).copied().unwrap_or(0)
    }

    /// Total victim insertions (for occupancy statistics).
    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    /// Number of victim tags currently stored for `wid`.
    pub fn occupancy_of(&self, wid: WarpId) -> usize {
        self.entries.get(wid as usize).map(VecDeque::len).unwrap_or(0)
    }

    /// Clears all victim tags and counters (between kernels).
    pub fn reset(&mut self) {
        for set in &mut self.entries {
            set.clear();
        }
        self.hits_per_warp.iter_mut().for_each(|h| *h = 0);
        self.total_hits = 0;
        self.insertions = 0;
    }

    /// Estimated storage cost in bits (used by the overhead analysis, §V-F):
    /// each entry stores a 25-bit tag plus a 6-bit WID.
    pub fn storage_bits(&self) -> u64 {
        (self.config.entries_per_warp * self.config.num_warps) as u64 * (25 + 6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn eviction_then_rereference_is_a_hit() {
        let mut vta = Vta::new(VtaConfig::ciao());
        vta.record_eviction(3, 0x1000, 7);
        let hit = vta.check_miss(3, 0x1000).expect("hit");
        assert_eq!(hit.victim, 3);
        assert_eq!(hit.last_evictor, 7);
        assert_eq!(vta.total_hits(), 1);
        assert_eq!(vta.hits_of(3), 1);
        // Consumed: checking again misses.
        assert!(vta.check_miss(3, 0x1000).is_none());
    }

    #[test]
    fn hits_are_per_victim_warp() {
        let mut vta = Vta::new(VtaConfig::ciao());
        vta.record_eviction(3, 0x1000, 7);
        // Another warp missing on the same block is not a VTA hit for it.
        assert!(vta.check_miss(5, 0x1000).is_none());
        assert_eq!(vta.hits_of(5), 0);
    }

    #[test]
    fn fifo_capacity_enforced() {
        let mut vta = Vta::new(VtaConfig { entries_per_warp: 2, num_warps: 4 });
        vta.record_eviction(0, 0x000, 1);
        vta.record_eviction(0, 0x080, 1);
        vta.record_eviction(0, 0x100, 2); // evicts the 0x000 record
        assert_eq!(vta.occupancy_of(0), 2);
        assert!(vta.check_miss(0, 0x000).is_none());
        assert!(vta.check_miss(0, 0x080).is_some());
        assert!(vta.check_miss(0, 0x100).is_some());
    }

    #[test]
    fn duplicate_eviction_refreshes_instead_of_duplicating() {
        let mut vta = Vta::new(VtaConfig { entries_per_warp: 2, num_warps: 2 });
        vta.record_eviction(0, 0x100, 1);
        vta.record_eviction(0, 0x100, 1);
        assert_eq!(vta.occupancy_of(0), 1);
    }

    #[test]
    fn last_evictor_tracks_most_recent() {
        let mut vta = Vta::new(VtaConfig::ciao());
        vta.record_eviction(0, 0x200, 5);
        vta.record_eviction(0, 0x200, 9);
        assert_eq!(vta.check_miss(0, 0x200).unwrap().last_evictor, 9);
    }

    #[test]
    fn out_of_range_warps_are_ignored() {
        let mut vta = Vta::new(VtaConfig { entries_per_warp: 2, num_warps: 2 });
        vta.record_eviction(10, 0x100, 1);
        assert!(vta.check_miss(10, 0x100).is_none());
        assert_eq!(vta.hits_of(10), 0);
    }

    #[test]
    fn reset_clears_state() {
        let mut vta = Vta::new(VtaConfig::ciao());
        vta.record_eviction(0, 0x80, 1);
        vta.check_miss(0, 0x80);
        vta.reset();
        assert_eq!(vta.total_hits(), 0);
        assert_eq!(vta.insertions(), 0);
        assert_eq!(vta.occupancy_of(0), 0);
    }

    #[test]
    fn storage_cost_matches_overhead_analysis() {
        // §V-F: CIAO keeps 8 entries per warp for 48 warps.
        let vta = Vta::new(VtaConfig::ciao());
        assert_eq!(vta.storage_bits(), 8 * 48 * 31);
        // CCWS keeps twice as many.
        assert_eq!(Vta::new(VtaConfig::ccws()).storage_bits(), 2 * vta.storage_bits());
    }

    proptest! {
        /// Occupancy never exceeds the configured capacity and total hits
        /// equal the sum of per-warp hits.
        #[test]
        fn occupancy_and_hit_accounting(
            events in proptest::collection::vec((0u32..8, 0u64..64, 0u32..8, any::<bool>()), 1..300)
        ) {
            let mut vta = Vta::new(VtaConfig { entries_per_warp: 4, num_warps: 8 });
            for (victim, block, evictor, probe) in events {
                let addr = block * 128;
                if probe {
                    let _ = vta.check_miss(victim, addr);
                } else {
                    vta.record_eviction(victim, addr, evictor);
                }
                for w in 0..8u32 {
                    prop_assert!(vta.occupancy_of(w) <= 4);
                }
            }
            let sum: u64 = (0..8u32).map(|w| vta.hits_of(w)).sum();
            prop_assert_eq!(sum, vta.total_hits());
        }
    }
}
