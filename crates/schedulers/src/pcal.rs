//! statPCAL-style priority-based cache allocation with L1D bypass.
//!
//! The bypass baseline of §V-A: a fixed set of *token-holding* warps uses the
//! L1D normally (like static wavefront limiting), while the remaining warps
//! are allowed to execute but their global accesses *bypass* the L1D and go
//! straight to L2/DRAM whenever spare memory bandwidth exists. When the
//! memory system is already saturated, the non-token warps are throttled
//! instead, because bypassing would only add latency. This recovers TLP
//! relative to Best-SWL but, as the paper observes, the bypassed requests
//! still pay the long DRAM latency, which limits its benefit for LWS and SWS
//! workloads (Fig. 8a) unless DRAM bandwidth is doubled (Fig. 12b).

use gpu_mem::{Cycle, WarpId};
use gpu_sim::scheduler::{MemRoute, SchedulerCtx, SchedulerMetrics, WarpScheduler};
use serde::{Deserialize, Serialize};

/// statPCAL tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcalConfig {
    /// Number of token-holding warps that may use the L1D.
    pub tokens: usize,
    /// Non-token warps may run (bypassing the L1D) while DRAM bandwidth
    /// utilisation stays below this threshold; above it they are throttled.
    pub bypass_bandwidth_threshold: f64,
    /// Number of warp slots on the SM.
    pub num_warps: usize,
}

impl PcalConfig {
    /// Default parameters: tokens follow the profiled Best-SWL limit.
    pub fn with_tokens(tokens: usize) -> Self {
        PcalConfig { tokens: tokens.max(1), bypass_bandwidth_threshold: 0.7, num_warps: 48 }
    }
}

/// The statPCAL scheduler.
pub struct PcalScheduler {
    config: PcalConfig,
    /// Token holders (by warp slot).
    token: Vec<bool>,
    finished: Vec<bool>,
    /// Most recent DRAM bandwidth utilisation seen in `pick`.
    last_utilization: f64,
    last_issued: Option<usize>,
    dirty: bool,
}

impl PcalScheduler {
    /// Creates a statPCAL scheduler.
    pub fn new(config: PcalConfig) -> Self {
        PcalScheduler {
            token: vec![false; config.num_warps],
            finished: vec![false; config.num_warps],
            last_utilization: 0.0,
            last_issued: None,
            dirty: true,
            config,
        }
    }

    /// Whether warp `wid` currently holds a token (uses the L1D).
    pub fn holds_token(&self, wid: WarpId) -> bool {
        if self.dirty {
            (wid as usize) < self.config.tokens
        } else {
            self.token.get(wid as usize).copied().unwrap_or(false)
        }
    }

    fn recompute(&mut self, ctx: &SchedulerCtx<'_>) {
        for t in self.token.iter_mut() {
            *t = false;
        }
        let mut candidates: Vec<usize> = ctx
            .warps
            .iter()
            .enumerate()
            .filter(|(i, w)| !w.is_finished() && !self.finished.get(*i).copied().unwrap_or(false))
            .map(|(i, _)| i)
            .collect();
        candidates.sort_by_key(|&i| ctx.warps[i].launch_seq);
        for &i in candidates.iter().take(self.config.tokens) {
            if let Some(slot) = self.token.get_mut(ctx.warps[i].id as usize) {
                *slot = true;
            }
        }
        self.dirty = false;
    }

    fn bandwidth_available(&self) -> bool {
        self.last_utilization < self.config.bypass_bandwidth_threshold
    }
}

impl WarpScheduler for PcalScheduler {
    fn name(&self) -> &'static str {
        "statPCAL"
    }

    fn pick(&mut self, ctx: &SchedulerCtx<'_>) -> Option<usize> {
        self.last_utilization = ctx.dram_utilization;
        if self.dirty {
            self.recompute(ctx);
        }
        if let Some(last) = self.last_issued {
            if ctx.ready.contains(&last) {
                return Some(last);
            }
        }
        // Token warps first (oldest), then bypassing warps.
        let pick = ctx.ready.iter().copied().min_by_key(|&i| {
            let wid = ctx.warps[i].id as usize;
            let has_token = self.token.get(wid).copied().unwrap_or(false);
            (if has_token { 0u8 } else { 1u8 }, ctx.warps[i].launch_seq)
        })?;
        self.last_issued = Some(pick);
        Some(pick)
    }

    fn on_idle_cycles(&mut self, ctx: &SchedulerCtx<'_>, _skipped: u64) {
        // An empty-ready `pick` still records the bandwidth sample and clears
        // a pending recompute — both observed by `is_throttled`/`metrics`;
        // the rest of `pick` is pure when nothing is ready.
        self.last_utilization = ctx.dram_utilization;
        if self.dirty {
            self.recompute(ctx);
        }
    }

    fn on_warp_launched(&mut self, wid: WarpId, _now: Cycle) {
        // Slot reuse across CTA waves: the new occupant has not finished.
        if let Some(f) = self.finished.get_mut(wid as usize) {
            *f = false;
        }
        self.dirty = true;
    }

    fn on_warp_finished(&mut self, wid: WarpId, _now: Cycle) {
        if let Some(f) = self.finished.get_mut(wid as usize) {
            *f = true;
        }
        self.dirty = true;
    }

    fn route(&mut self, wid: WarpId) -> MemRoute {
        if self.holds_token(wid) {
            MemRoute::L1d
        } else {
            MemRoute::Bypass
        }
    }

    fn is_throttled(&self, wid: WarpId) -> bool {
        if self.holds_token(wid) {
            false
        } else {
            // Non-token warps run only while spare bandwidth exists.
            !self.bandwidth_available()
        }
    }

    fn throttles_loads_only(&self) -> bool {
        // Non-token warps are only barred from issuing memory requests when
        // the memory system is saturated; their compute still proceeds.
        true
    }

    fn metrics(&self) -> SchedulerMetrics {
        let tokens = if self.dirty {
            self.config.tokens.min(self.config.num_warps)
        } else {
            self.token.iter().filter(|&&t| t).count()
        };
        let non_token = self.config.num_warps.saturating_sub(tokens);
        SchedulerMetrics {
            vta_hits: 0,
            throttled_warps: if self.bandwidth_available() { 0 } else { non_token },
            isolated_warps: 0,
            bypassed_warps: non_token,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::trace::VecProgram;
    use gpu_sim::warp::Warp;

    fn warps(n: usize) -> Vec<Warp> {
        (0..n)
            .map(|i| Warp::new(i as WarpId, 0, i as u64, Box::new(VecProgram::new(vec![]))))
            .collect()
    }

    fn ctx<'a>(warps: &'a [Warp], ready: &'a [usize], util: f64) -> SchedulerCtx<'a> {
        SchedulerCtx {
            now: 0,
            warps,
            ready,
            instructions_executed: 0,
            active_warps: warps.len(),
            dram_utilization: util,
        }
    }

    #[test]
    fn token_warps_use_l1d_others_bypass() {
        let mut s = PcalScheduler::new(PcalConfig {
            tokens: 2,
            bypass_bandwidth_threshold: 0.7,
            num_warps: 4,
        });
        let w = warps(4);
        s.pick(&ctx(&w, &[0, 1, 2, 3], 0.1));
        assert_eq!(s.route(0), MemRoute::L1d);
        assert_eq!(s.route(1), MemRoute::L1d);
        assert_eq!(s.route(2), MemRoute::Bypass);
        assert_eq!(s.route(3), MemRoute::Bypass);
        assert_eq!(s.metrics().bypassed_warps, 2);
    }

    #[test]
    fn non_token_warps_run_only_with_spare_bandwidth() {
        let mut s = PcalScheduler::new(PcalConfig {
            tokens: 1,
            bypass_bandwidth_threshold: 0.7,
            num_warps: 4,
        });
        let w = warps(4);
        s.pick(&ctx(&w, &[0, 1, 2, 3], 0.2));
        assert!(!s.is_throttled(3), "spare bandwidth: bypass warps may run");
        s.pick(&ctx(&w, &[0, 1, 2, 3], 0.95));
        assert!(s.is_throttled(3), "saturated bandwidth: bypass warps throttle");
        assert!(!s.is_throttled(0), "token warps never throttle");
    }

    #[test]
    fn token_warps_preferred_in_pick() {
        let mut s = PcalScheduler::new(PcalConfig {
            tokens: 1,
            bypass_bandwidth_threshold: 0.7,
            num_warps: 4,
        });
        let w = warps(4);
        assert_eq!(s.pick(&ctx(&w, &[2, 0, 3], 0.0)), Some(0));
        // Greedy on the chosen warp while it stays ready.
        assert_eq!(s.pick(&ctx(&w, &[0, 2], 0.0)), Some(0));
    }

    #[test]
    fn tokens_move_to_older_waiting_warps_when_holder_finishes() {
        let mut s = PcalScheduler::new(PcalConfig {
            tokens: 1,
            bypass_bandwidth_threshold: 0.7,
            num_warps: 4,
        });
        let mut w = warps(4);
        s.pick(&ctx(&w, &[0, 1, 2, 3], 0.0));
        assert!(s.holds_token(0));
        assert!(!s.holds_token(1));
        w[0].finish();
        s.on_warp_finished(0, 0);
        s.pick(&ctx(&w, &[1, 2, 3], 0.0));
        assert!(s.holds_token(1));
        assert_eq!(s.route(1), MemRoute::L1d);
    }

    #[test]
    fn with_tokens_constructor_clamps() {
        assert_eq!(PcalConfig::with_tokens(0).tokens, 1);
        assert_eq!(PcalConfig::with_tokens(6).tokens, 6);
    }
}
