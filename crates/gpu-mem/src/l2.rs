//! Memory partition: L2 cache slice plus its DRAM channel — and the
//! chip-level banked backend shared by every SM.
//!
//! In the GTX 480 each memory partition pairs an L2 slice with a GDDR5
//! channel. This module combines the generic [`SetAssocCache`] (configured
//! per Table I: 768 KB, 8-way, write-allocate, write-back, LRU) with the
//! [`Dram`] timing model and exposes a single `access` entry point returning
//! the completion cycle of a request, so the SM-side code can treat "L1D miss
//! goes downstream" as one call.
//!
//! [`BankedMemorySystem`] scales this to a multi-SM chip: the L2 capacity and
//! DRAM bandwidth are sharded across address-interleaved banks, each bank a
//! full [`MemoryPartition`] behind a `parking_lot` lock, so concurrent SM
//! engines contend for L2 sets and DRAM row buffers the way the paper's
//! 15-SM machine does instead of each SM owning a private slice.

use crate::addr::{block_addr, Addr};
use crate::cache::{CacheConfig, CacheStats, SetAssocCache};
use crate::dram::{Dram, DramConfig, DramStats};
use crate::{Cycle, TenantId, WarpId};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sim_obs::{Histogram, TraceEvent, TraceRecorder, Tracer, Track};

/// Configuration of a memory partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionConfig {
    /// L2 slice configuration.
    pub l2: CacheConfig,
    /// DRAM channel configuration.
    pub dram: DramConfig,
    /// L2 hit latency in cycles (Fermi L2 round-trip is ~120 core cycles
    /// including interconnect; the interconnect part is modelled separately,
    /// so this is the array access itself).
    pub l2_latency: Cycle,
}

impl PartitionConfig {
    /// The Table I configuration.
    pub fn gtx480() -> Self {
        PartitionConfig { l2: CacheConfig::l2_gtx480(), dram: DramConfig::gtx480(), l2_latency: 90 }
    }

    /// Table I configuration with the doubled DRAM bandwidth of Fig. 12b.
    pub fn gtx480_2x_bandwidth() -> Self {
        PartitionConfig { dram: DramConfig::gtx480_2x_bandwidth(), ..Self::gtx480() }
    }
}

/// Statistics of a memory partition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PartitionStats {
    /// L2 hit/miss statistics.
    pub l2: CacheStats,
    /// DRAM statistics.
    pub dram: DramStats,
    /// Requests served.
    pub requests: u64,
    /// Sum of request latencies (for mean-latency reporting).
    pub total_latency: Cycle,
}

impl PartitionStats {
    /// Mean latency of a request through the partition.
    pub fn mean_latency(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.requests as f64
        }
    }

    /// Merge another partition's statistics into this one (bank → chip
    /// aggregation).
    pub fn merge(&mut self, other: &PartitionStats) {
        self.l2.merge(&other.l2);
        self.dram.merge(&other.dram);
        self.requests += other.requests;
        self.total_latency += other.total_latency;
    }
}

/// Per-tenant attribution of one partition's (or the whole chip backend's)
/// traffic: who caused which L2 accesses and DRAM fetches. Indexed by
/// [`TenantId`]; single-kernel runs attribute everything to tenant 0.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantMemStats {
    /// L2 lookups performed on behalf of this tenant.
    pub l2_accesses: u64,
    /// Of those, the lookups that hit.
    pub l2_hits: u64,
    /// DRAM accesses caused by this tenant (L2 misses + bypasses; write-backs
    /// are charged to the evicting tenant).
    pub dram_accesses: u64,
}

impl TenantMemStats {
    /// L2 misses caused by this tenant.
    pub fn l2_misses(&self) -> u64 {
        self.l2_accesses - self.l2_hits
    }

    /// Adds another tenant record into this one (bank → chip aggregation).
    pub fn merge(&mut self, other: &TenantMemStats) {
        self.l2_accesses += other.l2_accesses;
        self.l2_hits += other.l2_hits;
        self.dram_accesses += other.dram_accesses;
    }
}

/// Merges per-tenant tables element-wise, growing `into` as needed.
pub fn merge_tenant_stats(into: &mut Vec<TenantMemStats>, other: &[TenantMemStats]) {
    if into.len() < other.len() {
        into.resize(other.len(), TenantMemStats::default());
    }
    for (t, s) in other.iter().enumerate() {
        into[t].merge(s);
    }
}

/// Observability sink of one partition/bank: a per-request trace (when
/// tracing) plus per-tenant service-latency histograms. Boxed and optional
/// so the `--obs off` hot path pays one pointer-sized `None` check.
#[derive(Debug, Clone)]
pub struct PartitionObs {
    /// The bank index this partition serves on the chip (trace track id).
    pub bank: u32,
    /// Per-request span recorder; `None` below the full trace level.
    pub trace: Option<TraceRecorder>,
    /// Service-latency histogram per tenant (indexed by [`TenantId`]).
    pub latency: Vec<Histogram>,
}

impl PartitionObs {
    fn new(bank: u32, trace_on: bool) -> Self {
        PartitionObs {
            bank,
            trace: trace_on.then(TraceRecorder::with_default_capacity),
            latency: Vec::new(),
        }
    }

    fn record(
        &mut self,
        name: &'static str,
        now: Cycle,
        done: Cycle,
        tenant: TenantId,
        arg: Option<u64>,
    ) {
        let idx = tenant as usize;
        if self.latency.len() <= idx {
            self.latency.resize(idx + 1, Histogram::new());
        }
        self.latency[idx].record(done - now);
        if let Some(trace) = &mut self.trace {
            let mut ev =
                TraceEvent::span(Track::Bank(self.bank), name, now, done - now, Some(tenant));
            if let Some(arg) = arg {
                ev = ev.with_arg(arg);
            }
            trace.record(ev);
        }
    }
}

/// An L2 slice + DRAM channel pair.
#[derive(Debug, Clone)]
pub struct MemoryPartition {
    config: PartitionConfig,
    l2: SetAssocCache,
    dram: Dram,
    requests: u64,
    total_latency: Cycle,
    tenants: Vec<TenantMemStats>,
    obs: Option<Box<PartitionObs>>,
}

impl MemoryPartition {
    /// Builds a partition from `config`.
    pub fn new(config: PartitionConfig) -> Self {
        let l2 = SetAssocCache::new(config.l2.clone());
        let dram = Dram::new(config.dram);
        MemoryPartition {
            config,
            l2,
            dram,
            requests: 0,
            total_latency: 0,
            tenants: Vec::new(),
            obs: None,
        }
    }

    /// Attaches an observability sink as bank `bank` (per-tenant latency
    /// histograms, plus per-request trace spans when `trace_on`).
    pub fn enable_obs(&mut self, bank: u32, trace_on: bool) {
        self.obs = Some(Box::new(PartitionObs::new(bank, trace_on)));
    }

    /// Detaches and returns the observability sink, if one was attached.
    pub fn take_obs(&mut self) -> Option<Box<PartitionObs>> {
        self.obs.take()
    }

    /// The partition configuration.
    pub fn config(&self) -> &PartitionConfig {
        &self.config
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> PartitionStats {
        PartitionStats {
            l2: *self.l2.stats(),
            dram: *self.dram.stats(),
            requests: self.requests,
            total_latency: self.total_latency,
        }
    }

    /// Current DRAM bandwidth utilisation (0..1) — consulted by the
    /// statPCAL-style bypass policy.
    pub fn dram_bandwidth_utilization(&self, now: Cycle) -> f64 {
        self.dram.bandwidth_utilization(now)
    }

    /// Serves a read or write arriving at the L2 at cycle `now` on behalf of
    /// warp `wid`; returns the cycle at which the response is available at
    /// the partition's output port. Attributes the traffic to tenant 0 —
    /// multi-tenant engines use [`MemoryPartition::access_tagged`].
    pub fn access(&mut self, addr: Addr, wid: WarpId, is_write: bool, now: Cycle) -> Cycle {
        self.access_tagged(addr, wid, 0, is_write, now)
    }

    /// [`MemoryPartition::access`] with explicit tenant attribution: the L2
    /// lookup, its hit/miss outcome and any resulting DRAM fetch are charged
    /// to `tenant`. Timing is identical to the untagged path.
    pub fn access_tagged(
        &mut self,
        addr: Addr,
        wid: WarpId,
        tenant: TenantId,
        is_write: bool,
        now: Cycle,
    ) -> Cycle {
        let block = block_addr(addr);
        self.requests += 1;
        let res = self.l2.access(block, wid, is_write);
        let mut done = now + self.config.l2_latency;
        let t = self.tenant_entry(tenant);
        t.l2_accesses += 1;
        let mut outcome = ("l2-hit", None);
        if res.outcome.is_miss() {
            t.dram_accesses += 1;
            // Fetch (or write-allocate fetch) from DRAM.
            let (dram_done, row_hit) =
                self.dram.access_outcome(block, self.config.l2.line_size, done);
            done = dram_done;
            outcome = ("l2-miss", Some(row_hit as u64));
        } else {
            t.l2_hits += 1;
        }
        if let Some(ev) = res.evicted {
            if ev.dirty {
                // Dirty write-back consumes DRAM bandwidth but is off the
                // critical path of the requesting warp.
                self.dram.access(ev.block_addr, self.config.l2.line_size, done);
            }
        }
        let latency = done - now;
        self.total_latency += latency;
        if let Some(obs) = &mut self.obs {
            obs.record(outcome.0, now, done, tenant, outcome.1);
        }
        done
    }

    /// Serves a request that *bypasses* the L2 and goes straight to DRAM
    /// (statPCAL bypass path). Attributed to tenant 0.
    pub fn access_bypass(&mut self, addr: Addr, now: Cycle) -> Cycle {
        self.access_bypass_tagged(addr, 0, now)
    }

    /// [`MemoryPartition::access_bypass`] with explicit tenant attribution.
    pub fn access_bypass_tagged(&mut self, addr: Addr, tenant: TenantId, now: Cycle) -> Cycle {
        let block = block_addr(addr);
        self.requests += 1;
        self.tenant_entry(tenant).dram_accesses += 1;
        let (done, row_hit) = self.dram.access_outcome(block, self.config.l2.line_size, now);
        self.total_latency += done - now;
        if let Some(obs) = &mut self.obs {
            obs.record("dram-bypass", now, done, tenant, Some(row_hit as u64));
        }
        done
    }

    fn tenant_entry(&mut self, tenant: TenantId) -> &mut TenantMemStats {
        let idx = tenant as usize;
        if self.tenants.len() <= idx {
            self.tenants.resize(idx + 1, TenantMemStats::default());
        }
        &mut self.tenants[idx]
    }

    /// Per-tenant attribution of this partition's traffic (indexed by
    /// [`TenantId`]; empty when the partition was never accessed).
    pub fn tenant_stats(&self) -> &[TenantMemStats] {
        &self.tenants
    }

    /// Invalidates the whole L2 (between kernels) and resets DRAM timing.
    pub fn reset(&mut self) {
        self.l2.flush();
        self.l2.reset_stats();
        self.dram.reset();
        self.requests = 0;
        self.total_latency = 0;
        self.tenants.clear();
    }
}

/// The chip-level memory-side backend shared by every SM: `num_banks`
/// address-interleaved (L2 slice + DRAM channel) partitions, each behind its
/// own lock. Accesses to the same bank serialise — which is exactly where
/// inter-SM L2 contention and DRAM row-buffer interference come from. The
/// chip engine shards each epoch's sorted request batch by bank and serves
/// the shards on concurrent worker threads ([`BankedMemorySystem::with_bank`]
/// locks a bank once per shard); because shards are disjoint and each bank's
/// service order is fixed by the batch sort, results are bit-identical for
/// any worker count.
///
/// The configuration passed to [`BankedMemorySystem::new`] describes the
/// whole chip; capacity and bandwidth are divided evenly across banks. With
/// `num_banks = 1` the system is a single [`MemoryPartition`] with identical
/// timing, which is what makes a 1-SM chip run bit-identical to the legacy
/// private-partition path.
#[derive(Debug)]
pub struct BankedMemorySystem {
    banks: Vec<Mutex<MemoryPartition>>,
    line_size: u64,
}

impl BankedMemorySystem {
    /// Builds a system of `num_banks` partitions from a chip-level
    /// configuration: each bank receives `1/num_banks` of the L2 capacity and
    /// of the DRAM data-bus bandwidth.
    pub fn new(chip: PartitionConfig, num_banks: usize) -> Self {
        let num_banks = num_banks.max(1);
        let mut bank_cfg = chip;
        let min_size = bank_cfg.l2.line_size * bank_cfg.l2.associativity as u64;
        bank_cfg.l2.size_bytes = (bank_cfg.l2.size_bytes / num_banks as u64).max(min_size);
        bank_cfg.dram.bytes_per_cycle /= num_banks as f64;
        let line_size = bank_cfg.l2.line_size;
        let banks =
            (0..num_banks).map(|_| Mutex::new(MemoryPartition::new(bank_cfg.clone()))).collect();
        BankedMemorySystem { banks, line_size }
    }

    /// Builds the chip backend from a *per-SM slice* configuration (what
    /// [`MemoryPartition`] historically modelled): DRAM bandwidth is scaled
    /// by `num_sms` so the chip-level aggregate matches `num_sms` slices,
    /// then sharded across `num_banks`.
    pub fn for_chip(per_sm_slice: PartitionConfig, num_banks: usize, num_sms: usize) -> Self {
        let mut chip = per_sm_slice;
        chip.dram.bytes_per_cycle *= num_sms.max(1) as f64;
        Self::new(chip, num_banks)
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.banks.len()
    }

    /// Bank serving `addr` (consecutive cache lines interleave round-robin).
    pub fn bank_of(&self, addr: Addr) -> usize {
        ((block_addr(addr) / self.line_size) % self.banks.len() as u64) as usize
    }

    /// Serves a read or write arriving at the L2 at cycle `now` on behalf of
    /// warp `wid`; returns the completion cycle at the bank's output port.
    /// Attributed to tenant 0 — multi-tenant engines use
    /// [`BankedMemorySystem::access_tagged`].
    pub fn access(&self, addr: Addr, wid: WarpId, is_write: bool, now: Cycle) -> Cycle {
        self.access_tagged(addr, wid, 0, is_write, now)
    }

    /// [`BankedMemorySystem::access`] with explicit tenant attribution: the
    /// serving bank charges the L2 lookup and any DRAM fetch to `tenant`.
    /// Timing is identical to the untagged path.
    pub fn access_tagged(
        &self,
        addr: Addr,
        wid: WarpId,
        tenant: TenantId,
        is_write: bool,
        now: Cycle,
    ) -> Cycle {
        self.banks[self.bank_of(addr)].lock().access_tagged(addr, wid, tenant, is_write, now)
    }

    /// Serves a request that bypasses the L2 and goes straight to the bank's
    /// DRAM channel (statPCAL bypass path). Attributed to tenant 0.
    pub fn access_bypass(&self, addr: Addr, now: Cycle) -> Cycle {
        self.access_bypass_tagged(addr, 0, now)
    }

    /// [`BankedMemorySystem::access_bypass`] with explicit tenant attribution.
    pub fn access_bypass_tagged(&self, addr: Addr, tenant: TenantId, now: Cycle) -> Cycle {
        self.banks[self.bank_of(addr)].lock().access_bypass_tagged(addr, tenant, now)
    }

    /// Locks bank `idx` once and runs `f` against the partition — the bulk
    /// entry point shard workers use to serve a whole per-bank request run
    /// without re-taking the lock per request. Callers are responsible for
    /// routing only that bank's addresses through `f` (use
    /// [`BankedMemorySystem::bank_of`]).
    pub fn with_bank<R>(&self, idx: usize, f: impl FnOnce(&mut MemoryPartition) -> R) -> R {
        f(&mut self.banks[idx].lock())
    }

    /// Event-granular service entry point: serves one tagged access (normal
    /// or L2-bypassing) at its owning bank in a single call, returning the
    /// completion cycle at the bank's output port. Identical in every
    /// counter and cycle to routing the access through
    /// [`BankedMemorySystem::with_bank`] as part of a per-bank shard run —
    /// this is the request-at-a-time shape the event-driven engine (and the
    /// serial service path) uses, while bulk shard workers amortise the bank
    /// lock with `with_bank` instead.
    pub fn serve_event(
        &self,
        addr: Addr,
        wid: WarpId,
        tenant: TenantId,
        is_write: bool,
        bypass: bool,
        at: Cycle,
    ) -> Cycle {
        self.with_bank(self.bank_of(addr), |partition| {
            if bypass {
                partition.access_bypass_tagged(addr, tenant, at)
            } else {
                partition.access_tagged(addr, wid, tenant, is_write, at)
            }
        })
    }

    /// [`BankedMemorySystem::serve_event`] with the owning bank already
    /// resolved by the caller. The event engine routes requests through
    /// per-bank FIFOs keyed by [`BankedMemorySystem::bank_of`] and pops them
    /// one at a time as each bank's next service instant comes due; passing
    /// the bank index back in skips re-hashing the address.
    #[allow(clippy::too_many_arguments)] // mirrors `serve_event` plus the pre-resolved bank
    pub fn serve_event_at(
        &self,
        bank: usize,
        addr: Addr,
        wid: WarpId,
        tenant: TenantId,
        is_write: bool,
        bypass: bool,
        at: Cycle,
    ) -> Cycle {
        debug_assert_eq!(bank, self.bank_of(addr));
        self.with_bank(bank, |partition| {
            if bypass {
                partition.access_bypass_tagged(addr, tenant, at)
            } else {
                partition.access_tagged(addr, wid, tenant, is_write, at)
            }
        })
    }

    /// Attaches an observability sink to every bank (per-tenant latency
    /// histograms; per-request trace spans too when `trace_on`). Bank `i`
    /// records on trace track `Bank(i)`.
    pub fn enable_obs(&self, trace_on: bool) {
        for (i, bank) in self.banks.iter().enumerate() {
            bank.lock().enable_obs(i as u32, trace_on);
        }
    }

    /// Detaches and returns every bank's observability sink, in bank order
    /// (empty when [`BankedMemorySystem::enable_obs`] was never called).
    pub fn collect_obs(&self) -> Vec<Box<PartitionObs>> {
        self.banks.iter().filter_map(|bank| bank.lock().take_obs()).collect()
    }

    /// Chip-level statistics, aggregated across banks.
    pub fn stats(&self) -> PartitionStats {
        let mut total = PartitionStats::default();
        for bank in &self.banks {
            total.merge(&bank.lock().stats());
        }
        total
    }

    /// Chip-level per-tenant attribution, aggregated across banks (indexed by
    /// [`TenantId`]).
    pub fn tenant_stats(&self) -> Vec<TenantMemStats> {
        let mut total: Vec<TenantMemStats> = Vec::new();
        for bank in &self.banks {
            merge_tenant_stats(&mut total, bank.lock().tenant_stats());
        }
        total
    }

    /// Aggregate DRAM data-bus utilisation in `[0, 1]` over `[0, now]`.
    pub fn dram_bandwidth_utilization(&self, now: Cycle) -> f64 {
        if now == 0 {
            return 0.0;
        }
        let mut bytes = 0u64;
        let mut capacity = 0.0;
        for bank in &self.banks {
            let bank = bank.lock();
            bytes += bank.stats().dram.bytes_transferred;
            capacity += bank.config().dram.bytes_per_cycle * now as f64;
        }
        if capacity <= 0.0 {
            0.0
        } else {
            (bytes as f64 / capacity).min(1.0)
        }
    }

    /// Invalidates every bank (between kernels) and resets timing state.
    pub fn reset(&self) {
        for bank in &self.banks {
            bank.lock().reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn l2_hit_faster_than_miss() {
        let mut p = MemoryPartition::new(PartitionConfig::gtx480());
        let miss_done = p.access(0x1000, 0, false, 0);
        let t = miss_done + 10;
        let hit_done = p.access(0x1000, 0, false, t);
        assert!(hit_done - t < miss_done, "L2 hit must be far cheaper than the cold miss");
        assert_eq!(p.stats().l2.read_hits, 1);
    }

    #[test]
    fn bypass_skips_l2() {
        let mut p = MemoryPartition::new(PartitionConfig::gtx480());
        p.access_bypass(0x2000, 0);
        assert_eq!(p.stats().l2.accesses(), 0);
        assert_eq!(p.stats().dram.accesses, 1);
    }

    #[test]
    fn double_bandwidth_serves_streams_faster() {
        let run = |cfg: PartitionConfig| {
            let mut p = MemoryPartition::new(cfg);
            let mut done = 0;
            for i in 0..512u64 {
                // Distinct blocks spanning many rows: all L2 misses.
                done = p.access(i * 4096, 0, false, 0);
            }
            done
        };
        assert!(run(PartitionConfig::gtx480_2x_bandwidth()) < run(PartitionConfig::gtx480()));
    }

    #[test]
    fn mean_latency_reported() {
        let mut p = MemoryPartition::new(PartitionConfig::gtx480());
        p.access(0, 0, false, 0);
        assert!(p.stats().mean_latency() > 0.0);
        p.reset();
        assert_eq!(p.stats().requests, 0);
    }

    #[test]
    fn single_bank_system_matches_private_partition() {
        let cfg = PartitionConfig::gtx480();
        let shared = BankedMemorySystem::new(cfg.clone(), 1);
        let mut private = MemoryPartition::new(cfg);
        let addrs = [0x1000u64, 0x2000, 0x1000, 0x40_0000, 0x2000, 0x123456];
        let mut now = 0;
        for &a in &addrs {
            let d1 = shared.access(a, 3, false, now);
            let d2 = private.access(a, 3, false, now);
            assert_eq!(d1, d2, "bank=1 system must be timing-identical to one partition");
            now = d1 + 5;
        }
        assert_eq!(shared.stats(), private.stats());
        assert!(
            (shared.dram_bandwidth_utilization(now) - private.dram_bandwidth_utilization(now))
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn banks_interleave_lines_and_aggregate_stats() {
        let sys = BankedMemorySystem::new(PartitionConfig::gtx480(), 4);
        assert_eq!(sys.num_banks(), 4);
        // Consecutive 128-byte lines land on consecutive banks.
        let line = 128u64;
        for i in 0..8u64 {
            assert_eq!(sys.bank_of(i * line), (i % 4) as usize);
        }
        for i in 0..16u64 {
            sys.access(i * line, 0, false, 0);
        }
        let s = sys.stats();
        assert_eq!(s.l2.accesses(), 16);
        assert_eq!(s.requests, 16);
    }

    #[test]
    fn chip_scaling_multiplies_bandwidth() {
        let slice = PartitionConfig::gtx480();
        let one = BankedMemorySystem::for_chip(slice.clone(), 1, 1);
        let chip = BankedMemorySystem::for_chip(slice, 1, 15);
        // Bypass stream of row hits: bus-bound, so 15x bandwidth finishes sooner.
        let run = |sys: &BankedMemorySystem| {
            let mut last = 0;
            for i in 0..256u64 {
                last = sys.access_bypass(i * 128 % 2048, 0);
            }
            last
        };
        assert!(run(&chip) < run(&one));
    }

    #[test]
    fn tenant_attribution_sums_to_partition_totals() {
        let mut p = MemoryPartition::new(PartitionConfig::gtx480());
        // Tenant 0: two accesses to one block (miss then hit); tenant 2: one
        // cold miss; one bypass charged to tenant 1.
        p.access_tagged(0x1000, 0, 0, false, 0);
        p.access_tagged(0x1000, 0, 0, false, 1_000);
        p.access_tagged(0x40_0000, 1, 2, false, 2_000);
        p.access_bypass_tagged(0x8000, 1, 3_000);
        let t = p.tenant_stats();
        assert_eq!(t.len(), 3);
        assert_eq!((t[0].l2_accesses, t[0].l2_hits, t[0].dram_accesses), (2, 1, 1));
        assert_eq!((t[1].l2_accesses, t[1].dram_accesses), (0, 1));
        assert_eq!((t[2].l2_accesses, t[2].l2_misses()), (1, 1));
        let s = p.stats();
        assert_eq!(s.l2.accesses(), t.iter().map(|x| x.l2_accesses).sum());
        assert_eq!(s.l2.hits(), t.iter().map(|x| x.l2_hits).sum());
        assert_eq!(s.dram.accesses, t.iter().map(|x| x.dram_accesses).sum::<u64>());
        p.reset();
        assert!(p.tenant_stats().is_empty());
    }

    #[test]
    fn banked_tenant_stats_aggregate_across_banks() {
        let sys = BankedMemorySystem::new(PartitionConfig::gtx480(), 4);
        for i in 0..8u64 {
            // Lines interleave across all four banks; odd lines to tenant 1.
            sys.access_tagged(i * 128, 0, (i % 2) as TenantId, false, 0);
        }
        let t = sys.tenant_stats();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].l2_accesses, 4);
        assert_eq!(t[1].l2_accesses, 4);
        assert_eq!(sys.stats().l2.accesses(), 8);
        // Untagged access is attributed to tenant 0.
        sys.access(0x9000, 0, false, 0);
        assert_eq!(sys.tenant_stats()[0].l2_accesses, 5);
    }

    #[test]
    fn tagged_access_timing_matches_untagged() {
        let cfg = PartitionConfig::gtx480();
        let mut a = MemoryPartition::new(cfg.clone());
        let mut b = MemoryPartition::new(cfg);
        let addrs = [0x1000u64, 0x2000, 0x1000, 0x40_0000, 0x2000];
        for (i, &addr) in addrs.iter().enumerate() {
            let now = i as Cycle * 500;
            assert_eq!(
                a.access(addr, 0, false, now),
                b.access_tagged(addr, 0, 7, false, now),
                "tenant tagging must not change timing"
            );
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn banked_system_reset_clears_stats() {
        let sys = BankedMemorySystem::new(PartitionConfig::gtx480(), 2);
        sys.access(0, 0, false, 0);
        sys.access_bypass(128, 0);
        assert!(sys.stats().requests == 2);
        sys.reset();
        assert_eq!(sys.stats().requests, 0);
        assert_eq!(sys.dram_bandwidth_utilization(100), 0.0);
    }

    #[test]
    fn obs_never_changes_timing_and_records_service_spans() {
        let cfg = PartitionConfig::gtx480();
        let mut plain = MemoryPartition::new(cfg.clone());
        let mut observed = MemoryPartition::new(cfg);
        observed.enable_obs(3, true);
        let addrs = [0x1000u64, 0x2000, 0x1000, 0x40_0000, 0x2000];
        for (i, &addr) in addrs.iter().enumerate() {
            let now = i as Cycle * 500;
            assert_eq!(
                plain.access_tagged(addr, 0, 1, false, now),
                observed.access_tagged(addr, 0, 1, false, now),
                "an attached obs sink must not perturb timing"
            );
        }
        assert_eq!(
            plain.access_bypass_tagged(0x8000, 0, 9_000),
            observed.access_bypass_tagged(0x8000, 0, 9_000)
        );
        assert_eq!(plain.stats(), observed.stats());

        let obs = observed.take_obs().expect("sink attached");
        assert_eq!(obs.bank, 3);
        let events = obs.trace.expect("tracing on").take();
        assert_eq!(events.len(), 6, "one span per request");
        assert!(events.iter().all(|e| e.track == Track::Bank(3)));
        assert!(events.iter().any(|e| e.name == "l2-hit"));
        assert!(events.iter().any(|e| e.name == "l2-miss"));
        assert!(events.iter().any(|e| e.name == "dram-bypass"));
        // Latency histograms: tenant 1 got the 5 tagged requests, tenant 0
        // the bypass.
        assert_eq!(obs.latency[1].count(), 5);
        assert_eq!(obs.latency[0].count(), 1);
    }

    #[test]
    fn banked_obs_collects_per_bank_sinks() {
        let sys = BankedMemorySystem::new(PartitionConfig::gtx480(), 4);
        sys.enable_obs(false);
        for i in 0..8u64 {
            sys.access(i * 128, 0, false, 0);
        }
        let sinks = sys.collect_obs();
        assert_eq!(sinks.len(), 4);
        for (i, sink) in sinks.iter().enumerate() {
            assert_eq!(sink.bank, i as u32);
            assert!(sink.trace.is_none(), "metrics-only mode records no trace");
            assert_eq!(sink.latency[0].count(), 2);
        }
        assert!(sys.collect_obs().is_empty(), "sinks are detached on collect");
    }

    proptest! {
        /// Completion is always strictly after arrival and hits never touch DRAM.
        #[test]
        fn latency_positive(addrs in proptest::collection::vec(0u64..(1 << 22), 1..128)) {
            let mut p = MemoryPartition::new(PartitionConfig::gtx480());
            let mut now = 0;
            for a in addrs {
                let done = p.access(a, 0, false, now);
                prop_assert!(done > now);
                now = done;
            }
            let s = p.stats();
            prop_assert_eq!(s.dram.accesses, s.l2.misses() + s.l2.writebacks);
        }
    }
}
