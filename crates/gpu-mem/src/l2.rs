//! Memory partition: L2 cache slice plus its DRAM channel.
//!
//! In the GTX 480 each memory partition pairs an L2 slice with a GDDR5
//! channel. This module combines the generic [`SetAssocCache`] (configured
//! per Table I: 768 KB, 8-way, write-allocate, write-back, LRU) with the
//! [`Dram`] timing model and exposes a single `access` entry point returning
//! the completion cycle of a request, so the SM-side code can treat "L1D miss
//! goes downstream" as one call.

use crate::addr::{block_addr, Addr};
use crate::cache::{CacheConfig, CacheStats, SetAssocCache};
use crate::dram::{Dram, DramConfig, DramStats};
use crate::{Cycle, WarpId};
use serde::{Deserialize, Serialize};

/// Configuration of a memory partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionConfig {
    /// L2 slice configuration.
    pub l2: CacheConfig,
    /// DRAM channel configuration.
    pub dram: DramConfig,
    /// L2 hit latency in cycles (Fermi L2 round-trip is ~120 core cycles
    /// including interconnect; the interconnect part is modelled separately,
    /// so this is the array access itself).
    pub l2_latency: Cycle,
}

impl PartitionConfig {
    /// The Table I configuration.
    pub fn gtx480() -> Self {
        PartitionConfig { l2: CacheConfig::l2_gtx480(), dram: DramConfig::gtx480(), l2_latency: 90 }
    }

    /// Table I configuration with the doubled DRAM bandwidth of Fig. 12b.
    pub fn gtx480_2x_bandwidth() -> Self {
        PartitionConfig { dram: DramConfig::gtx480_2x_bandwidth(), ..Self::gtx480() }
    }
}

/// Statistics of a memory partition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PartitionStats {
    /// L2 hit/miss statistics.
    pub l2: CacheStats,
    /// DRAM statistics.
    pub dram: DramStats,
    /// Requests served.
    pub requests: u64,
    /// Sum of request latencies (for mean-latency reporting).
    pub total_latency: Cycle,
}

impl PartitionStats {
    /// Mean latency of a request through the partition.
    pub fn mean_latency(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.requests as f64
        }
    }
}

/// An L2 slice + DRAM channel pair.
#[derive(Debug, Clone)]
pub struct MemoryPartition {
    config: PartitionConfig,
    l2: SetAssocCache,
    dram: Dram,
    requests: u64,
    total_latency: Cycle,
}

impl MemoryPartition {
    /// Builds a partition from `config`.
    pub fn new(config: PartitionConfig) -> Self {
        let l2 = SetAssocCache::new(config.l2.clone());
        let dram = Dram::new(config.dram);
        MemoryPartition { config, l2, dram, requests: 0, total_latency: 0 }
    }

    /// The partition configuration.
    pub fn config(&self) -> &PartitionConfig {
        &self.config
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> PartitionStats {
        PartitionStats {
            l2: *self.l2.stats(),
            dram: *self.dram.stats(),
            requests: self.requests,
            total_latency: self.total_latency,
        }
    }

    /// Current DRAM bandwidth utilisation (0..1) — consulted by the
    /// statPCAL-style bypass policy.
    pub fn dram_bandwidth_utilization(&self, now: Cycle) -> f64 {
        self.dram.bandwidth_utilization(now)
    }

    /// Serves a read or write arriving at the L2 at cycle `now` on behalf of
    /// warp `wid`; returns the cycle at which the response is available at
    /// the partition's output port.
    pub fn access(&mut self, addr: Addr, wid: WarpId, is_write: bool, now: Cycle) -> Cycle {
        let block = block_addr(addr);
        self.requests += 1;
        let res = self.l2.access(block, wid, is_write);
        let mut done = now + self.config.l2_latency;
        if res.outcome.is_miss() {
            // Fetch (or write-allocate fetch) from DRAM.
            done = self.dram.access(block, self.config.l2.line_size, done);
        }
        if let Some(ev) = res.evicted {
            if ev.dirty {
                // Dirty write-back consumes DRAM bandwidth but is off the
                // critical path of the requesting warp.
                self.dram.access(ev.block_addr, self.config.l2.line_size, done);
            }
        }
        let latency = done - now;
        self.total_latency += latency;
        done
    }

    /// Serves a request that *bypasses* the L2 and goes straight to DRAM
    /// (statPCAL bypass path).
    pub fn access_bypass(&mut self, addr: Addr, now: Cycle) -> Cycle {
        let block = block_addr(addr);
        self.requests += 1;
        let done = self.dram.access(block, self.config.l2.line_size, now);
        self.total_latency += done - now;
        done
    }

    /// Invalidates the whole L2 (between kernels) and resets DRAM timing.
    pub fn reset(&mut self) {
        self.l2.flush();
        self.l2.reset_stats();
        self.dram.reset();
        self.requests = 0;
        self.total_latency = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn l2_hit_faster_than_miss() {
        let mut p = MemoryPartition::new(PartitionConfig::gtx480());
        let miss_done = p.access(0x1000, 0, false, 0);
        let t = miss_done + 10;
        let hit_done = p.access(0x1000, 0, false, t);
        assert!(hit_done - t < miss_done, "L2 hit must be far cheaper than the cold miss");
        assert_eq!(p.stats().l2.read_hits, 1);
    }

    #[test]
    fn bypass_skips_l2() {
        let mut p = MemoryPartition::new(PartitionConfig::gtx480());
        p.access_bypass(0x2000, 0);
        assert_eq!(p.stats().l2.accesses(), 0);
        assert_eq!(p.stats().dram.accesses, 1);
    }

    #[test]
    fn double_bandwidth_serves_streams_faster() {
        let run = |cfg: PartitionConfig| {
            let mut p = MemoryPartition::new(cfg);
            let mut done = 0;
            for i in 0..512u64 {
                // Distinct blocks spanning many rows: all L2 misses.
                done = p.access(i * 4096, 0, false, 0);
            }
            done
        };
        assert!(run(PartitionConfig::gtx480_2x_bandwidth()) < run(PartitionConfig::gtx480()));
    }

    #[test]
    fn mean_latency_reported() {
        let mut p = MemoryPartition::new(PartitionConfig::gtx480());
        p.access(0, 0, false, 0);
        assert!(p.stats().mean_latency() > 0.0);
        p.reset();
        assert_eq!(p.stats().requests, 0);
    }

    proptest! {
        /// Completion is always strictly after arrival and hits never touch DRAM.
        #[test]
        fn latency_positive(addrs in proptest::collection::vec(0u64..(1 << 22), 1..128)) {
            let mut p = MemoryPartition::new(PartitionConfig::gtx480());
            let mut now = 0;
            for a in addrs {
                let done = p.access(a, 0, false, now);
                prop_assert!(done > now);
                now = done;
            }
            let s = p.stats();
            prop_assert_eq!(s.dram.accesses, s.l2.misses() + s.l2.writebacks);
        }
    }
}
