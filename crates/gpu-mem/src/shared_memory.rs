//! Shared-memory (scratchpad) bank model.
//!
//! §II-A of the paper: the SM's on-chip memory structure has 32 banks with
//! 512 rows; 128 or 384 contiguous rows can be allocated to shared memory
//! (16 KB or 48 KB) and the rest to L1D. All 32 L1D banks operate in tandem
//! for one 128-byte access, whereas the 32 shared-memory banks can each serve
//! an independent request per cycle (up to 32 in parallel), subject to bank
//! conflicts. Each bank allows 64-bit (8-byte) accesses (§IV-B).
//!
//! This module models the scratchpad as seen by *CTA-allocated* shared-memory
//! traffic: a bank-conflict-aware access-latency model plus simple occupancy
//! statistics. The CIAO *shared-memory-as-cache* layout (tags + 128-byte data
//! blocks striped across two 16-bank groups) is built on top of this model in
//! `ciao-core::shmem_cache`.

use crate::Cycle;
use serde::{Deserialize, Serialize};

/// Static configuration of the shared-memory structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharedMemoryConfig {
    /// Total scratchpad capacity in bytes (48 KB in Table I).
    pub size_bytes: u32,
    /// Number of independently addressable banks (32).
    pub num_banks: u32,
    /// Width of one bank access in bytes (8 bytes / 64 bits).
    pub bank_width: u32,
    /// Minimum access latency in cycles (1 in Table I).
    pub latency: Cycle,
}

impl SharedMemoryConfig {
    /// The 48 KB / 32-bank / 1-cycle configuration of Table I.
    pub fn gtx480() -> Self {
        SharedMemoryConfig { size_bytes: 48 * 1024, num_banks: 32, bank_width: 8, latency: 1 }
    }

    /// The shrunken 16 KB shared memory used by the `GTO-cap` configuration
    /// of Fig. 12a (L1D grown to 48 KB).
    pub fn gtx480_small() -> Self {
        SharedMemoryConfig { size_bytes: 16 * 1024, ..Self::gtx480() }
    }

    /// Number of rows per bank implied by the geometry.
    pub fn rows_per_bank(&self) -> u32 {
        self.size_bytes / (self.num_banks * self.bank_width)
    }

    /// Bank index serving shared-memory byte address `addr`.
    pub fn bank_of(&self, addr: u32) -> u32 {
        (addr / self.bank_width) % self.num_banks
    }

    /// Row index within its bank for shared-memory byte address `addr`.
    pub fn row_of(&self, addr: u32) -> u32 {
        (addr / self.bank_width) / self.num_banks
    }
}

/// Access statistics for the scratchpad.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharedMemoryStats {
    /// Warp-level access groups served.
    pub accesses: u64,
    /// Individual bank requests served.
    pub bank_requests: u64,
    /// Extra serialisation cycles caused by bank conflicts.
    pub conflict_cycles: u64,
}

/// The shared-memory scratchpad of one SM.
#[derive(Debug, Clone)]
pub struct SharedMemory {
    config: SharedMemoryConfig,
    stats: SharedMemoryStats,
}

impl SharedMemory {
    /// Builds a scratchpad from `config`.
    pub fn new(config: SharedMemoryConfig) -> Self {
        SharedMemory { config, stats: SharedMemoryStats::default() }
    }

    /// The configuration of this scratchpad.
    pub fn config(&self) -> &SharedMemoryConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SharedMemoryStats {
        &self.stats
    }

    /// Resets statistics.
    pub fn reset_stats(&mut self) {
        self.stats = SharedMemoryStats::default();
    }

    /// Serves one warp-wide group of shared-memory accesses and returns the
    /// number of cycles the access occupies the scratchpad.
    ///
    /// The latency is `base_latency * max_conflict_degree`, where the conflict
    /// degree of a bank is the number of distinct rows the warp's lanes touch
    /// in that bank (accesses to the same bank *and* row are broadcast and do
    /// not conflict, matching NVIDIA's documented behaviour).
    pub fn access(&mut self, lane_addrs: &[u32]) -> Cycle {
        self.stats.accesses += 1;
        if lane_addrs.is_empty() {
            return self.config.latency;
        }
        let nb = self.config.num_banks as usize;
        // Distinct rows requested per bank.
        let mut rows_per_bank: Vec<Vec<u32>> = vec![Vec::new(); nb];
        for &a in lane_addrs {
            let b = self.config.bank_of(a) as usize;
            let r = self.config.row_of(a);
            if !rows_per_bank[b].contains(&r) {
                rows_per_bank[b].push(r);
            }
            self.stats.bank_requests += 1;
        }
        let max_degree = rows_per_bank.iter().map(Vec::len).max().unwrap_or(1).max(1) as Cycle;
        let extra = max_degree - 1;
        self.stats.conflict_cycles += extra;
        self.config.latency * max_degree
    }

    /// Serves an aligned 128-byte block access striped across one 16-bank
    /// group (the CIAO data-block layout of §IV-B): 16 banks × 8 bytes are
    /// read in parallel, so the access is conflict-free by construction and
    /// costs the base latency.
    pub fn access_block(&mut self) -> Cycle {
        self.stats.accesses += 1;
        self.stats.bank_requests += 16;
        self.config.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn geometry_table1() {
        let c = SharedMemoryConfig::gtx480();
        assert_eq!(c.rows_per_bank(), 192); // 48 KB / (32 banks * 8 B)
        assert_eq!(SharedMemoryConfig::gtx480_small().rows_per_bank(), 64);
    }

    #[test]
    fn bank_and_row_mapping() {
        let c = SharedMemoryConfig::gtx480();
        assert_eq!(c.bank_of(0), 0);
        assert_eq!(c.bank_of(8), 1);
        assert_eq!(c.bank_of(8 * 31), 31);
        assert_eq!(c.bank_of(8 * 32), 0);
        assert_eq!(c.row_of(8 * 32), 1);
    }

    #[test]
    fn conflict_free_access_is_single_latency() {
        let mut sm = SharedMemory::new(SharedMemoryConfig::gtx480());
        // 32 lanes touching 32 distinct banks.
        let addrs: Vec<u32> = (0..32).map(|i| i * 8).collect();
        assert_eq!(sm.access(&addrs), 1);
        assert_eq!(sm.stats().conflict_cycles, 0);
    }

    #[test]
    fn same_bank_distinct_rows_serialise() {
        let mut sm = SharedMemory::new(SharedMemoryConfig::gtx480());
        // 4 lanes all hitting bank 0 in different rows => degree 4.
        let addrs: Vec<u32> = (0..4).map(|i| i * 8 * 32).collect();
        assert_eq!(sm.access(&addrs), 4);
        assert_eq!(sm.stats().conflict_cycles, 3);
    }

    #[test]
    fn broadcast_same_row_does_not_conflict() {
        let mut sm = SharedMemory::new(SharedMemoryConfig::gtx480());
        let addrs = vec![16u32; 32]; // every lane reads the same word
        assert_eq!(sm.access(&addrs), 1);
    }

    #[test]
    fn block_access_is_conflict_free() {
        let mut sm = SharedMemory::new(SharedMemoryConfig::gtx480());
        assert_eq!(sm.access_block(), 1);
        assert_eq!(sm.stats().bank_requests, 16);
    }

    proptest! {
        /// Latency is always between 1× and `lanes`× the base latency.
        #[test]
        fn latency_bounds(addrs in proptest::collection::vec(0u32..48 * 1024, 1..32)) {
            let mut sm = SharedMemory::new(SharedMemoryConfig::gtx480());
            let n = addrs.len() as Cycle;
            let lat = sm.access(&addrs);
            prop_assert!(lat >= 1 && lat <= n.max(1));
        }

        /// Bank index is always within range.
        #[test]
        fn bank_in_range(addr in 0u32..48 * 1024) {
            let c = SharedMemoryConfig::gtx480();
            prop_assert!(c.bank_of(addr) < c.num_banks);
            prop_assert!(c.row_of(addr) < c.rows_per_bank());
        }
    }
}
