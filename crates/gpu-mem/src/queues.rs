//! Bounded queues used on the L1D ↔ L2 datapath.
//!
//! The SM pipeline of Figure 7a contains a *write queue* (WQ) carrying
//! write-through/write-back traffic towards L2 and a *response queue* (RespQ)
//! buffering fill data returning from L2. CIAO's on-chip memory architecture
//! additionally uses the response queue as the staging area for data migrated
//! from the L1D to the shared-memory cache (§IV-B "Performance optimization
//! and coherence"): the L1D evicts the block into the response queue and the
//! shared memory later fetches it from there, guided by the pointer stored in
//! the MSHR entry.

use crate::addr::Addr;
use crate::{Cycle, WarpId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Where the data sitting in a response-queue entry came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResponseSource {
    /// Fill data returned by the L2 / DRAM.
    L2Fill,
    /// Block evicted from the L1D as part of CIAO's L1D→shared-memory
    /// migration (single-copy coherence guarantee).
    L1dMigration,
}

/// One entry of the response queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResponseEntry {
    /// Block-aligned global address of the data.
    pub block_addr: Addr,
    /// Source of the data.
    pub source: ResponseSource,
    /// Warp waiting for the data (first requester).
    pub wid: WarpId,
    /// Cycle at which the data becomes consumable.
    pub ready_at: Cycle,
}

/// A bounded FIFO queue with occupancy statistics.
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    capacity: usize,
    items: VecDeque<T>,
    /// Total number of push attempts rejected because the queue was full.
    rejected: u64,
    /// Total number of successful pushes.
    pushed: u64,
    /// High-water mark of occupancy.
    max_occupancy: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue { capacity, items: VecDeque::new(), rejected: 0, pushed: 0, max_occupancy: 0 }
    }

    /// Maximum number of items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when no more items can be pushed.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Number of rejected pushes (back-pressure events).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Number of successful pushes.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Highest occupancy observed.
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Attempts to push an item; returns it back if the queue is full.
    pub fn push(&mut self, item: T) -> Result<usize, T> {
        if self.is_full() {
            self.rejected += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.pushed += 1;
        self.max_occupancy = self.max_occupancy.max(self.items.len());
        Ok(self.items.len() - 1)
    }

    /// Pops the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peeks at the oldest item.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Iterates over queued items from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Removes and returns the first item matching `pred` (used by the
    /// shared-memory fill path to pull a specific migrated block out of the
    /// response queue regardless of its position).
    pub fn take_first<F: FnMut(&T) -> bool>(&mut self, pred: F) -> Option<T> {
        let idx = self.items.iter().position(pred)?;
        self.items.remove(idx)
    }

    /// Clears the queue.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fifo_order() {
        let mut q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.push(3).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn rejects_when_full() {
        let mut q = BoundedQueue::new(2);
        q.push('a').unwrap();
        q.push('b').unwrap();
        assert!(q.is_full());
        assert_eq!(q.push('c'), Err('c'));
        assert_eq!(q.rejected(), 1);
        q.pop();
        assert!(q.push('c').is_ok());
    }

    #[test]
    fn take_first_matching() {
        let mut q = BoundedQueue::new(8);
        for entry in [
            ResponseEntry {
                block_addr: 0x000,
                source: ResponseSource::L2Fill,
                wid: 0,
                ready_at: 5,
            },
            ResponseEntry {
                block_addr: 0x080,
                source: ResponseSource::L1dMigration,
                wid: 1,
                ready_at: 6,
            },
            ResponseEntry {
                block_addr: 0x100,
                source: ResponseSource::L2Fill,
                wid: 2,
                ready_at: 7,
            },
        ] {
            q.push(entry).unwrap();
        }
        let taken = q.take_first(|e| e.block_addr == 0x080).unwrap();
        assert_eq!(taken.source, ResponseSource::L1dMigration);
        assert_eq!(q.len(), 2);
        assert!(q.take_first(|e| e.block_addr == 0x080).is_none());
        // Remaining order preserved.
        assert_eq!(q.pop().unwrap().block_addr, 0x000);
        assert_eq!(q.pop().unwrap().block_addr, 0x100);
    }

    #[test]
    fn occupancy_tracking() {
        let mut q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.pop();
        q.push(3).unwrap();
        assert_eq!(q.max_occupancy(), 2);
        assert_eq!(q.pushed(), 3);
    }

    proptest! {
        /// Occupancy never exceeds capacity and pushes + rejections account
        /// for every attempt.
        #[test]
        fn bounded_invariant(ops in proptest::collection::vec(any::<bool>(), 1..200)) {
            let mut q = BoundedQueue::new(5);
            let mut attempts = 0u64;
            for push in ops {
                if push {
                    attempts += 1;
                    let _ = q.push(0u32);
                } else {
                    q.pop();
                }
                prop_assert!(q.len() <= q.capacity());
            }
            prop_assert_eq!(q.pushed() + q.rejected(), attempts);
        }

        /// FIFO: popping yields items in push order.
        #[test]
        fn fifo_property(items in proptest::collection::vec(any::<u32>(), 1..50)) {
            let mut q = BoundedQueue::new(items.len());
            for &i in &items {
                q.push(i).unwrap();
            }
            let mut out = Vec::new();
            while let Some(x) = q.pop() {
                out.push(x);
            }
            prop_assert_eq!(out, items);
        }
    }
}
