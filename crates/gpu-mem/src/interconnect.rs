//! SM ↔ memory-partition interconnect.
//!
//! A simple latency + bandwidth pipe: each transfer pays a fixed traversal
//! latency and occupies the link for `bytes / bytes_per_cycle` cycles, so
//! bursts of misses serialise on the link the same way they do on the real
//! crossbar. One instance models the slice of interconnect bandwidth
//! available to a single SM; [`Crossbar`] builds and accounts for the
//! SM-indexed set of such ports that a multi-SM chip engine hands out.

use crate::{Cycle, TenantId};
use serde::{Deserialize, Serialize};

/// A unidirectional link with fixed latency and finite bandwidth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    /// Traversal latency in cycles.
    pub latency: Cycle,
    /// Link bandwidth in bytes per cycle.
    pub bytes_per_cycle: f64,
    /// Cycle at which the link becomes free.
    next_free: Cycle,
    /// Total bytes pushed through the link.
    bytes_transferred: u64,
    /// Total cycles transfers spent waiting for the link.
    queueing_cycles: Cycle,
    /// Bytes pushed through the link per tenant (indexed by [`TenantId`]).
    tenant_bytes: Vec<u64>,
}

impl Interconnect {
    /// Creates a link with the given latency and bandwidth.
    pub fn new(latency: Cycle, bytes_per_cycle: f64) -> Self {
        assert!(bytes_per_cycle > 0.0);
        Interconnect {
            latency,
            bytes_per_cycle,
            next_free: 0,
            bytes_transferred: 0,
            queueing_cycles: 0,
            tenant_bytes: Vec::new(),
        }
    }

    /// A GTX 480-like SM-to-L2 link: ~32 bytes/cycle per SM, 20-cycle latency.
    pub fn gtx480() -> Self {
        Interconnect::new(20, 32.0)
    }

    /// Schedules a transfer of `bytes` starting no earlier than `now` and
    /// returns the cycle at which the payload arrives at the other end.
    /// Attributed to tenant 0 — multi-tenant SMs use
    /// [`Interconnect::transfer_tagged`].
    pub fn transfer(&mut self, bytes: u64, now: Cycle) -> Cycle {
        self.transfer_tagged(bytes, now, 0)
    }

    /// [`Interconnect::transfer`] with explicit tenant attribution: the bytes
    /// are additionally charged to `tenant`'s counter. Timing is identical to
    /// the untagged path.
    pub fn transfer_tagged(&mut self, bytes: u64, now: Cycle, tenant: TenantId) -> Cycle {
        let occupancy = ((bytes as f64) / self.bytes_per_cycle).ceil().max(1.0) as Cycle;
        let start = now.max(self.next_free);
        self.queueing_cycles += start - now;
        self.next_free = start + occupancy;
        self.bytes_transferred += bytes;
        let idx = tenant as usize;
        if self.tenant_bytes.len() <= idx {
            self.tenant_bytes.resize(idx + 1, 0);
        }
        self.tenant_bytes[idx] += bytes;
        start + occupancy + self.latency
    }

    /// Total bytes transferred so far.
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes_transferred
    }

    /// Bytes transferred per tenant (indexed by [`TenantId`]; empty when the
    /// link was never used).
    pub fn tenant_bytes(&self) -> &[u64] {
        &self.tenant_bytes
    }

    /// Total cycles spent queueing for the link.
    pub fn queueing_cycles(&self) -> Cycle {
        self.queueing_cycles
    }

    /// Resets timing and statistics.
    pub fn reset(&mut self) {
        self.next_free = 0;
        self.bytes_transferred = 0;
        self.queueing_cycles = 0;
        self.tenant_bytes.clear();
    }
}

/// Aggregate traffic statistics over a set of per-SM links.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CrossbarStats {
    /// Total bytes injected across all ports.
    pub bytes_transferred: u64,
    /// Total cycles transfers spent queueing for their port.
    pub queueing_cycles: Cycle,
}

/// The chip crossbar viewed as independent SM-indexed injection ports.
///
/// Each SM gets a private [`Interconnect`] with its per-SM latency and
/// bandwidth slice, so an SM's own miss bursts serialise on its port without
/// the engine having to share mutable link state across SM threads; chip-wide
/// contention is modelled downstream in the shared banked L2/DRAM backend.
#[derive(Debug, Clone)]
pub struct Crossbar {
    ports: Vec<Interconnect>,
}

impl Crossbar {
    /// Builds `num_sms` identical ports with the given per-port latency and
    /// bandwidth.
    pub fn new(num_sms: usize, latency: Cycle, bytes_per_cycle: f64) -> Self {
        Crossbar { ports: vec![Interconnect::new(latency, bytes_per_cycle); num_sms.max(1)] }
    }

    /// Number of ports.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// Mutable access to SM `sm`'s port.
    pub fn port_mut(&mut self, sm: usize) -> &mut Interconnect {
        &mut self.ports[sm]
    }

    /// Hands the ports out to their SMs (the engine embeds one per SM).
    pub fn into_ports(self) -> Vec<Interconnect> {
        self.ports
    }

    /// Aggregates traffic statistics over a set of ports (typically collected
    /// back from the SMs at the end of a run).
    pub fn aggregate<'a>(ports: impl IntoIterator<Item = &'a Interconnect>) -> CrossbarStats {
        let mut total = CrossbarStats::default();
        for p in ports {
            total.bytes_transferred += p.bytes_transferred();
            total.queueing_cycles += p.queueing_cycles();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_transfer_latency() {
        let mut link = Interconnect::new(10, 32.0);
        // 128 bytes at 32 B/cycle = 4 cycles occupancy + 10 latency.
        assert_eq!(link.transfer(128, 100), 114);
    }

    #[test]
    fn back_to_back_transfers_serialise() {
        let mut link = Interconnect::new(10, 32.0);
        let a = link.transfer(128, 0);
        let b = link.transfer(128, 0);
        assert_eq!(a, 14);
        assert_eq!(b, 18); // second burst waits 4 cycles for the link
        assert_eq!(link.queueing_cycles(), 4);
    }

    #[test]
    fn idle_link_does_not_delay() {
        let mut link = Interconnect::new(5, 16.0);
        link.transfer(64, 0);
        // Much later request sees an idle link.
        let done = link.transfer(64, 1000);
        assert_eq!(done, 1000 + 4 + 5);
    }

    #[test]
    fn tenant_bytes_split_the_total() {
        let mut link = Interconnect::new(10, 32.0);
        link.transfer_tagged(128, 0, 0);
        link.transfer_tagged(256, 0, 1);
        link.transfer(64, 0); // untagged → tenant 0
        assert_eq!(link.tenant_bytes(), &[192, 256]);
        assert_eq!(link.bytes_transferred(), 192 + 256);
        link.reset();
        assert!(link.tenant_bytes().is_empty());
    }

    #[test]
    fn crossbar_ports_are_independent() {
        let mut xbar = Crossbar::new(2, 10, 32.0);
        assert_eq!(xbar.num_ports(), 2);
        let a = xbar.port_mut(0).transfer(128, 0);
        // Port 1 sees an idle link even though port 0 is busy.
        let b = xbar.port_mut(1).transfer(128, 0);
        assert_eq!(a, b);
        assert_eq!(xbar.port_mut(0).queueing_cycles(), 0);
        let ports = xbar.into_ports();
        let stats = Crossbar::aggregate(&ports);
        assert_eq!(stats.bytes_transferred, 256);
        assert_eq!(stats.queueing_cycles, 0);
    }

    proptest! {
        /// Arrival is always at least latency + 1 cycle after issue and the
        /// byte counter is exact.
        #[test]
        fn arrival_bounds(transfers in proptest::collection::vec((1u64..4096, 0u64..10_000), 1..64)) {
            let mut link = Interconnect::new(20, 32.0);
            let mut total = 0u64;
            for (bytes, now) in transfers {
                let done = link.transfer(bytes, now);
                prop_assert!(done > now + 20);
                total += bytes;
            }
            prop_assert_eq!(link.bytes_transferred(), total);
        }
    }
}
