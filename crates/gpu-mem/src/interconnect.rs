//! SM ↔ memory-partition interconnect.
//!
//! The crossbar is modelled in two stages:
//!
//! 1. **Per-SM injection ports** ([`Interconnect`], built in bulk by
//!    [`Crossbar`]) — a simple latency + bandwidth pipe per SM: each transfer
//!    pays a fixed traversal latency and occupies the link for
//!    `bytes / bytes_per_cycle` cycles, so one SM's own miss bursts serialise
//!    on its port without sharing mutable state across SM threads.
//! 2. **The shared fabric** ([`CrossbarFabric`]) — one chip-wide
//!    bytes-per-cycle budget *per direction* (SM→L2 requests, L2→SM replies).
//!    The multi-SM engine charges every request against the request budget
//!    before it reaches an L2 bank and every read reply against the reply
//!    budget on the way back, so concurrent bursts from different SMs queue
//!    against each other even when each stayed within its own port — the
//!    reply-path contention an injection-port-only model cannot express.
//!
//! The fabric accounts queueing cycles and per-tenant bytes in both
//! directions ([`FabricStats`]); per-tenant bytes always sum exactly to the
//! direction totals.

use crate::{Cycle, TenantId};
use serde::{Deserialize, Serialize};
use sim_obs::{TraceEvent, TraceRecorder, Tracer, Track};

/// A unidirectional link with fixed latency and finite bandwidth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    /// Traversal latency in cycles.
    pub latency: Cycle,
    /// Link bandwidth in bytes per cycle.
    pub bytes_per_cycle: f64,
    /// Cycle at which the link becomes free.
    next_free: Cycle,
    /// Total bytes pushed through the link.
    bytes_transferred: u64,
    /// Total cycles transfers spent waiting for the link.
    queueing_cycles: Cycle,
    /// Bytes pushed through the link per tenant (indexed by [`TenantId`]).
    tenant_bytes: Vec<u64>,
}

impl Interconnect {
    /// Creates a link with the given latency and bandwidth.
    pub fn new(latency: Cycle, bytes_per_cycle: f64) -> Self {
        assert!(bytes_per_cycle > 0.0);
        Interconnect {
            latency,
            bytes_per_cycle,
            next_free: 0,
            bytes_transferred: 0,
            queueing_cycles: 0,
            tenant_bytes: Vec::new(),
        }
    }

    /// A GTX 480-like SM-to-L2 link: ~32 bytes/cycle per SM, 20-cycle latency.
    pub fn gtx480() -> Self {
        Interconnect::new(20, 32.0)
    }

    /// Schedules a transfer of `bytes` starting no earlier than `now` and
    /// returns the cycle at which the payload arrives at the other end.
    /// Attributed to tenant 0 — multi-tenant SMs use
    /// [`Interconnect::transfer_tagged`].
    pub fn transfer(&mut self, bytes: u64, now: Cycle) -> Cycle {
        self.transfer_tagged(bytes, now, 0)
    }

    /// [`Interconnect::transfer`] with explicit tenant attribution: the bytes
    /// are additionally charged to `tenant`'s counter. Timing is identical to
    /// the untagged path.
    pub fn transfer_tagged(&mut self, bytes: u64, now: Cycle, tenant: TenantId) -> Cycle {
        let occupancy = ((bytes as f64) / self.bytes_per_cycle).ceil().max(1.0) as Cycle;
        let start = now.max(self.next_free);
        self.queueing_cycles += start - now;
        self.next_free = start + occupancy;
        self.bytes_transferred += bytes;
        let idx = tenant as usize;
        if self.tenant_bytes.len() <= idx {
            self.tenant_bytes.resize(idx + 1, 0);
        }
        self.tenant_bytes[idx] += bytes;
        start + occupancy + self.latency
    }

    /// Total bytes transferred so far.
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes_transferred
    }

    /// Bytes transferred per tenant (indexed by [`TenantId`]; empty when the
    /// link was never used).
    pub fn tenant_bytes(&self) -> &[u64] {
        &self.tenant_bytes
    }

    /// Total cycles spent queueing for the link.
    pub fn queueing_cycles(&self) -> Cycle {
        self.queueing_cycles
    }

    /// Resets timing and statistics.
    pub fn reset(&mut self) {
        self.next_free = 0;
        self.bytes_transferred = 0;
        self.queueing_cycles = 0;
        self.tenant_bytes.clear();
    }
}

/// Aggregate traffic statistics over a set of per-SM links.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CrossbarStats {
    /// Total bytes injected across all ports.
    pub bytes_transferred: u64,
    /// Total cycles transfers spent queueing for their port.
    pub queueing_cycles: Cycle,
}

/// The chip crossbar viewed as independent SM-indexed injection ports.
///
/// Each SM gets a private [`Interconnect`] with its per-SM latency and
/// bandwidth slice, so an SM's own miss bursts serialise on its port without
/// the engine having to share mutable link state across SM threads; chip-wide
/// contention (finite aggregate bandwidth in both directions) is modelled by
/// the [`CrossbarFabric`] the engine drives at its epoch barriers, and L2-set
/// / DRAM-row contention downstream in the shared banked backend.
#[derive(Debug, Clone)]
pub struct Crossbar {
    ports: Vec<Interconnect>,
}

impl Crossbar {
    /// Builds `num_sms` identical ports with the given per-port latency and
    /// bandwidth.
    pub fn new(num_sms: usize, latency: Cycle, bytes_per_cycle: f64) -> Self {
        Crossbar { ports: vec![Interconnect::new(latency, bytes_per_cycle); num_sms.max(1)] }
    }

    /// Number of ports.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// Mutable access to SM `sm`'s port.
    pub fn port_mut(&mut self, sm: usize) -> &mut Interconnect {
        &mut self.ports[sm]
    }

    /// Hands the ports out to their SMs (the engine embeds one per SM).
    pub fn into_ports(self) -> Vec<Interconnect> {
        self.ports
    }

    /// Aggregates traffic statistics over a set of ports (typically collected
    /// back from the SMs at the end of a run).
    pub fn aggregate<'a>(ports: impl IntoIterator<Item = &'a Interconnect>) -> CrossbarStats {
        let mut total = CrossbarStats::default();
        for p in ports {
            total.bytes_transferred += p.bytes_transferred();
            total.queueing_cycles += p.queueing_cycles();
        }
        total
    }
}

/// One direction of the shared fabric: a pipe with a finite bytes-per-cycle
/// budget and *sub-cycle* occupancy accounting, so a 480 B/cycle fabric really
/// moves 3.75 × 128-byte lines per cycle instead of being arbitrated down to
/// one transfer per cycle. Completion cycles are rounded up to whole cycles;
/// the fractional bus position carries over between transfers.
#[derive(Debug, Clone, Default)]
struct FabricLink {
    /// Fractional cycle at which the pipe becomes free.
    next_free: f64,
    /// Total bytes pushed through this direction.
    bytes_transferred: u64,
    /// Total whole cycles transfers were delayed past their unloaded
    /// completion by earlier traffic.
    queueing_cycles: Cycle,
    /// Bytes per tenant (indexed by [`TenantId`]).
    tenant_bytes: Vec<u64>,
}

impl FabricLink {
    /// Schedules `bytes` entering the pipe at `now`, charged to `tenant`,
    /// and returns the completion cycle. The fabric charges *queueing delay
    /// only*: an unloaded pipe completes at `now` (the traversal latency was
    /// already paid at the per-SM injection port); a transfer that finds the
    /// pipe busy completes however many whole cycles later the shared budget
    /// pushes its drain past the unloaded one. Callers must present
    /// transfers in non-decreasing `now` order within a batch.
    fn transfer(
        &mut self,
        bytes: u64,
        bytes_per_cycle: f64,
        now: Cycle,
        tenant: TenantId,
    ) -> Cycle {
        let occupancy = bytes as f64 / bytes_per_cycle;
        let start = (now as f64).max(self.next_free);
        let end = start + occupancy;
        self.next_free = end;
        let unloaded_end = now as f64 + occupancy;
        let delay = (end.ceil() - unloaded_end.ceil()).max(0.0) as Cycle;
        self.queueing_cycles += delay;
        self.bytes_transferred += bytes;
        let idx = tenant as usize;
        if self.tenant_bytes.len() <= idx {
            self.tenant_bytes.resize(idx + 1, 0);
        }
        self.tenant_bytes[idx] += bytes;
        now + delay
    }

    fn stats(&self) -> FabricDirectionStats {
        FabricDirectionStats {
            bytes_transferred: self.bytes_transferred,
            queueing_cycles: self.queueing_cycles,
            tenant_bytes: self.tenant_bytes.clone(),
        }
    }
}

/// Traffic statistics of one fabric direction.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FabricDirectionStats {
    /// Total bytes moved in this direction.
    pub bytes_transferred: u64,
    /// Total cycles transfers were delayed by earlier traffic in this
    /// direction (queueing against the chip-wide budget).
    pub queueing_cycles: Cycle,
    /// Bytes per tenant (indexed by [`TenantId`]; sums to
    /// `bytes_transferred`).
    pub tenant_bytes: Vec<u64>,
}

impl FabricDirectionStats {
    /// Bytes attributed to `tenant` (0 when the tenant never used this
    /// direction).
    pub fn tenant_bytes(&self, tenant: TenantId) -> u64 {
        self.tenant_bytes.get(tenant as usize).copied().unwrap_or(0)
    }
}

/// End-of-run statistics of the shared crossbar fabric, both directions.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FabricStats {
    /// The chip-wide bytes-per-cycle budget per direction (0 when the run
    /// never instantiated a fabric — single-SM runs).
    pub bytes_per_cycle: f64,
    /// SM → L2 request direction.
    pub request: FabricDirectionStats,
    /// L2 → SM reply direction.
    pub reply: FabricDirectionStats,
}

/// The shared request/reply fabric of a multi-SM chip: one finite chip-wide
/// bytes-per-cycle budget per direction. Driven single-threaded by the chip
/// engine at its epoch barriers, in deterministic request order, so results
/// never depend on host threading.
#[derive(Debug, Clone)]
pub struct CrossbarFabric {
    bytes_per_cycle: f64,
    request: FabricLink,
    reply: FabricLink,
    /// Optional sim-time trace sink: each transfer records a span whose
    /// duration is its queueing delay (0-delay transfers render as
    /// instants). `None` (the default) costs one branch per transfer.
    trace: Option<TraceRecorder>,
}

impl CrossbarFabric {
    /// Builds a fabric with the given per-direction aggregate bandwidth.
    pub fn new(bytes_per_cycle: f64) -> Self {
        assert!(bytes_per_cycle > 0.0);
        CrossbarFabric {
            bytes_per_cycle,
            request: FabricLink::default(),
            reply: FabricLink::default(),
            trace: None,
        }
    }

    /// Attaches a trace recorder; subsequent transfers record fabric spans.
    pub fn enable_trace(&mut self) {
        self.trace = Some(TraceRecorder::with_default_capacity());
    }

    /// Detaches and returns the trace recorder, if tracing was enabled.
    pub fn take_trace(&mut self) -> Option<TraceRecorder> {
        self.trace.take()
    }

    /// Charges a request-direction transfer of `bytes` entering at `now` to
    /// `tenant`; returns the cycle the payload reaches the L2 side.
    pub fn request_transfer(&mut self, bytes: u64, now: Cycle, tenant: TenantId) -> Cycle {
        let done = self.request.transfer(bytes, self.bytes_per_cycle, now, tenant);
        if let Some(trace) = &mut self.trace {
            trace.record(
                TraceEvent::span(Track::FabricRequest, "req", now, done - now, Some(tenant))
                    .with_arg(bytes),
            );
        }
        done
    }

    /// Charges a reply-direction transfer of `bytes` entering at `now` to
    /// `tenant`; returns the cycle the payload reaches the SM side.
    pub fn reply_transfer(&mut self, bytes: u64, now: Cycle, tenant: TenantId) -> Cycle {
        let done = self.reply.transfer(bytes, self.bytes_per_cycle, now, tenant);
        if let Some(trace) = &mut self.trace {
            trace.record(
                TraceEvent::span(Track::FabricReply, "reply", now, done - now, Some(tenant))
                    .with_arg(bytes),
            );
        }
        done
    }

    /// The per-direction bandwidth budget.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle
    }

    /// Snapshot of both directions' statistics.
    pub fn stats(&self) -> FabricStats {
        FabricStats {
            bytes_per_cycle: self.bytes_per_cycle,
            request: self.request.stats(),
            reply: self.reply.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_transfer_latency() {
        let mut link = Interconnect::new(10, 32.0);
        // 128 bytes at 32 B/cycle = 4 cycles occupancy + 10 latency.
        assert_eq!(link.transfer(128, 100), 114);
    }

    #[test]
    fn back_to_back_transfers_serialise() {
        let mut link = Interconnect::new(10, 32.0);
        let a = link.transfer(128, 0);
        let b = link.transfer(128, 0);
        assert_eq!(a, 14);
        assert_eq!(b, 18); // second burst waits 4 cycles for the link
        assert_eq!(link.queueing_cycles(), 4);
    }

    #[test]
    fn idle_link_does_not_delay() {
        let mut link = Interconnect::new(5, 16.0);
        link.transfer(64, 0);
        // Much later request sees an idle link.
        let done = link.transfer(64, 1000);
        assert_eq!(done, 1000 + 4 + 5);
    }

    #[test]
    fn tenant_bytes_split_the_total() {
        let mut link = Interconnect::new(10, 32.0);
        link.transfer_tagged(128, 0, 0);
        link.transfer_tagged(256, 0, 1);
        link.transfer(64, 0); // untagged → tenant 0
        assert_eq!(link.tenant_bytes(), &[192, 256]);
        assert_eq!(link.bytes_transferred(), 192 + 256);
        link.reset();
        assert!(link.tenant_bytes().is_empty());
    }

    #[test]
    fn crossbar_ports_are_independent() {
        let mut xbar = Crossbar::new(2, 10, 32.0);
        assert_eq!(xbar.num_ports(), 2);
        let a = xbar.port_mut(0).transfer(128, 0);
        // Port 1 sees an idle link even though port 0 is busy.
        let b = xbar.port_mut(1).transfer(128, 0);
        assert_eq!(a, b);
        assert_eq!(xbar.port_mut(0).queueing_cycles(), 0);
        let ports = xbar.into_ports();
        let stats = Crossbar::aggregate(&ports);
        assert_eq!(stats.bytes_transferred, 256);
        assert_eq!(stats.queueing_cycles, 0);
    }

    proptest! {
        /// Arrival is always at least latency + 1 cycle after issue and the
        /// byte counter is exact.
        #[test]
        fn arrival_bounds(transfers in proptest::collection::vec((1u64..4096, 0u64..10_000), 1..64)) {
            let mut link = Interconnect::new(20, 32.0);
            let mut total = 0u64;
            for (bytes, now) in transfers {
                let done = link.transfer(bytes, now);
                prop_assert!(done > now + 20);
                total += bytes;
            }
            prop_assert_eq!(link.bytes_transferred(), total);
        }
    }

    #[test]
    fn fabric_moves_sub_cycle_transfers_without_false_arbitration() {
        // 480 B/cycle fabric: 3 concurrent 128-byte lines fit into one cycle
        // (3 × 128 = 384 < 480), so none of them queues — and an unloaded
        // fabric adds zero latency (traversal is paid at the injection port).
        let mut fabric = CrossbarFabric::new(480.0);
        for tenant in 0..3 {
            assert_eq!(fabric.request_transfer(128, 100, tenant), 100);
        }
        let s = fabric.stats();
        assert_eq!(s.request.bytes_transferred, 3 * 128);
        assert_eq!(s.request.queueing_cycles, 0);
        // The fourth line in the same cycle spills past the budget.
        assert_eq!(fabric.request_transfer(128, 100, 0), 101);
        assert_eq!(fabric.stats().request.queueing_cycles, 1);
    }

    #[test]
    fn fabric_directions_are_independent_and_attribute_tenants() {
        let mut fabric = CrossbarFabric::new(128.0);
        fabric.request_transfer(128, 0, 0);
        fabric.request_transfer(128, 0, 1); // queues behind tenant 0's line
        let reply_done = fabric.reply_transfer(128, 0, 1); // reply pipe is idle
        assert_eq!(reply_done, 0);
        let s = fabric.stats();
        assert_eq!(s.request.tenant_bytes, vec![128, 128]);
        assert_eq!(s.reply.tenant_bytes, vec![0, 128]);
        assert_eq!(
            s.request.tenant_bytes.iter().sum::<u64>(),
            s.request.bytes_transferred,
            "per-tenant request bytes must sum to the direction total"
        );
        assert_eq!(s.reply.tenant_bytes.iter().sum::<u64>(), s.reply.bytes_transferred);
        assert_eq!(s.request.tenant_bytes(1), 128);
        assert_eq!(s.reply.tenant_bytes(7), 0);
        assert!(s.request.queueing_cycles > 0);
        assert_eq!(s.reply.queueing_cycles, 0);
    }

    #[test]
    fn fabric_trace_records_both_directions() {
        let mut fabric = CrossbarFabric::new(128.0);
        assert!(fabric.take_trace().is_none(), "tracing is off by default");
        fabric.enable_trace();
        fabric.request_transfer(128, 0, 0);
        fabric.request_transfer(128, 0, 1); // queues → nonzero span
        fabric.reply_transfer(64, 5, 1);
        let events = fabric.take_trace().expect("recorder attached").take();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].track, Track::FabricRequest);
        assert_eq!(events[0].dur, 0, "unloaded fabric adds no delay");
        assert_eq!(events[0].arg, Some(128));
        assert!(events[1].dur > 0, "second line queues behind the first");
        assert_eq!(events[2].track, Track::FabricReply);
        assert_eq!(events[2].tenant, Some(1));
    }

    proptest! {
        /// Fabric completions never precede entry, queueing matches the
        /// reported completion delays exactly, and bytes are attributed
        /// exactly.
        #[test]
        fn fabric_completion_bounds(
            transfers in proptest::collection::vec((1u64..4096, 0u64..4, 0u64..5_000), 1..64),
        ) {
            let mut fabric = CrossbarFabric::new(256.0);
            // Present in non-decreasing `now` order, as the engine does.
            let mut transfers: Vec<_> = transfers;
            transfers.sort_by_key(|&(_, _, now)| now);
            let mut total = 0u64;
            let mut delays = 0;
            for (bytes, tenant, now) in transfers {
                let done = fabric.request_transfer(bytes, now, tenant as crate::TenantId);
                prop_assert!(done >= now, "completion must never precede entry");
                delays += done - now;
                total += bytes;
            }
            let s = fabric.stats();
            prop_assert_eq!(s.request.queueing_cycles, delays);
            prop_assert_eq!(s.request.bytes_transferred, total);
            prop_assert_eq!(s.request.tenant_bytes.iter().sum::<u64>(), total);
        }
    }
}
