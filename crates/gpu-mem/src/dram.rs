//! GDDR5-like DRAM channel model.
//!
//! Table I of the paper configures GDDR5 with 16 banks, tCL = 12, tRCD = 12
//! and tRAS = 28 (in memory-clock cycles). Figure 12b additionally studies a
//! doubled-bandwidth configuration (177 GB/s → 340 GB/s aggregate).
//!
//! The model captures the three effects that matter for the paper's results:
//!
//! 1. **Row-buffer locality** — an access to the currently open row pays only
//!    CAS latency; a row miss pays precharge + activate + CAS.
//! 2. **Bank-level parallelism** — each of the 16 banks serves requests
//!    independently; a request waits until its bank is free.
//! 3. **Finite data-bus bandwidth** — each 128-byte burst occupies the shared
//!    data bus for `line_size / bytes_per_cycle` cycles, which is what the
//!    statPCAL-style bypass schemes saturate when they push L1D misses
//!    straight to memory.
//!
//! Latencies are expressed in SM core cycles for simplicity (the paper's
//! qualitative results do not depend on the core/memory clock ratio).

use crate::addr::Addr;
use crate::Cycle;
use serde::{Deserialize, Serialize};

/// Static DRAM channel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of banks in the channel (16 in Table I).
    pub num_banks: usize,
    /// CAS latency in cycles (tCL = 12).
    pub t_cl: Cycle,
    /// RAS-to-CAS delay in cycles (tRCD = 12).
    pub t_rcd: Cycle,
    /// Row-active time in cycles (tRAS = 28); models the minimum time a row
    /// stays open, charged as the precharge component of a row conflict.
    pub t_ras: Cycle,
    /// Row-buffer size in bytes (granularity of row-hit detection).
    pub row_size: u64,
    /// Data-bus bandwidth available to one SM, in bytes per core cycle.
    ///
    /// GTX 480: 177 GB/s aggregate at 1.4 GHz core clock over 15 SMs
    /// ≈ 8.4 bytes/cycle/SM. The doubled-bandwidth configuration of Fig. 12b
    /// uses ~16.2 bytes/cycle/SM.
    pub bytes_per_cycle: f64,
    /// Fixed off-chip round-trip overhead added to every access (command
    /// queues, PHY, interconnect serialisation), in cycles.
    pub base_latency: Cycle,
}

impl DramConfig {
    /// Baseline GTX 480-like channel (per-SM slice of 177 GB/s).
    pub fn gtx480() -> Self {
        DramConfig {
            num_banks: 16,
            t_cl: 12,
            t_rcd: 12,
            t_ras: 28,
            row_size: 2048,
            bytes_per_cycle: 8.4,
            base_latency: 220,
        }
    }

    /// The doubled-bandwidth configuration of Fig. 12b (statPCAL-2X /
    /// CIAO-C-2X): 177 GB/s → 340 GB/s.
    pub fn gtx480_2x_bandwidth() -> Self {
        DramConfig { bytes_per_cycle: 8.4 * 340.0 / 177.0, ..Self::gtx480() }
    }

    /// Bank index for an address (rows are interleaved across banks).
    pub fn bank_of(&self, addr: Addr) -> usize {
        ((addr / self.row_size) % self.num_banks as u64) as usize
    }

    /// Row index within a bank for an address.
    pub fn row_of(&self, addr: Addr) -> u64 {
        (addr / self.row_size) / self.num_banks as u64
    }
}

/// Per-bank state.
#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    /// Currently open row, if any.
    open_row: Option<u64>,
    /// Cycle at which the bank becomes free for a new access.
    ready_at: Cycle,
}

/// Aggregate DRAM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DramStats {
    /// Read/write bursts served.
    pub accesses: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses (activate needed).
    pub row_misses: u64,
    /// Total bytes transferred over the data bus.
    pub bytes_transferred: u64,
    /// Total cycles requests spent waiting for a busy bank or bus.
    pub queueing_cycles: u64,
    /// Cycle at which the most recent burst finished on the data bus
    /// (used to compute achieved bandwidth).
    pub last_burst_end: Cycle,
}

impl DramStats {
    /// Row-buffer hit rate.
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses as f64
        }
    }

    /// Achieved bandwidth in bytes per cycle over the observed interval.
    pub fn achieved_bytes_per_cycle(&self) -> f64 {
        if self.last_burst_end == 0 {
            0.0
        } else {
            self.bytes_transferred as f64 / self.last_burst_end as f64
        }
    }

    /// Merge another channel's statistics into this one (chip-level
    /// aggregation across the banks of a shared memory system).
    pub fn merge(&mut self, other: &DramStats) {
        self.accesses += other.accesses;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.bytes_transferred += other.bytes_transferred;
        self.queueing_cycles += other.queueing_cycles;
        self.last_burst_end = self.last_burst_end.max(other.last_burst_end);
    }
}

/// A single DRAM channel.
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    banks: Vec<BankState>,
    /// Cycle at which the shared data bus becomes free.
    bus_free_at: Cycle,
    stats: DramStats,
}

impl Dram {
    /// Builds a DRAM channel from `config`.
    pub fn new(config: DramConfig) -> Self {
        let banks = vec![BankState::default(); config.num_banks];
        Dram { config, banks, bus_free_at: 0, stats: DramStats::default() }
    }

    /// The configuration of this channel.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Resets statistics and timing state.
    pub fn reset(&mut self) {
        self.banks = vec![BankState::default(); self.config.num_banks];
        self.bus_free_at = 0;
        self.stats = DramStats::default();
    }

    /// Estimated utilisation of the data bus over the interval `[0, now]`.
    ///
    /// statPCAL-style schemes consult this to decide whether spare memory
    /// bandwidth exists for bypassed requests.
    pub fn bandwidth_utilization(&self, now: Cycle) -> f64 {
        if now == 0 {
            return 0.0;
        }
        let capacity = self.config.bytes_per_cycle * now as f64;
        (self.stats.bytes_transferred as f64 / capacity).min(1.0)
    }

    /// Issues a `bytes`-byte burst to `addr` at cycle `now` and returns the
    /// cycle at which the data is available.
    pub fn access(&mut self, addr: Addr, bytes: u64, now: Cycle) -> Cycle {
        self.access_outcome(addr, bytes, now).0
    }

    /// [`Dram::access`], additionally reporting whether the burst hit the
    /// open row buffer (used by observability to tag per-request spans;
    /// timing is identical).
    pub fn access_outcome(&mut self, addr: Addr, bytes: u64, now: Cycle) -> (Cycle, bool) {
        let bank_idx = self.config.bank_of(addr);
        let row = self.config.row_of(addr);
        let bank = &mut self.banks[bank_idx];

        // Wait for the bank.
        let start = now.max(bank.ready_at);
        let bank_wait = start - now;

        // Row-buffer behaviour.
        let row_hit = matches!(bank.open_row, Some(open) if open == row);
        let access_latency = match bank.open_row {
            Some(open) if open == row => {
                self.stats.row_hits += 1;
                self.config.t_cl
            }
            Some(_) => {
                self.stats.row_misses += 1;
                // Precharge (bounded by tRAS) + activate + CAS.
                self.config.t_ras + self.config.t_rcd + self.config.t_cl
            }
            None => {
                self.stats.row_misses += 1;
                self.config.t_rcd + self.config.t_cl
            }
        };
        bank.open_row = Some(row);

        // Data-bus occupancy.
        let burst_cycles = ((bytes as f64) / self.config.bytes_per_cycle).ceil().max(1.0) as Cycle;
        let data_ready = start + access_latency;
        let bus_start = data_ready.max(self.bus_free_at);
        let bus_wait = bus_start - data_ready;
        let done = bus_start + burst_cycles;

        self.bus_free_at = done;
        bank.ready_at = start + access_latency.max(self.config.t_ras);

        self.stats.accesses += 1;
        self.stats.bytes_transferred += bytes;
        self.stats.queueing_cycles += bank_wait + bus_wait;
        self.stats.last_burst_end = self.stats.last_burst_end.max(done);

        (done + self.config.base_latency, row_hit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn row_hit_cheaper_than_row_miss() {
        let mut d = Dram::new(DramConfig::gtx480());
        let first = d.access(0, 128, 0);
        // Same row, later in time so the bank is free again.
        let t = first + 1000;
        let hit = d.access(64, 128, t) - t;
        // Different row, same bank.
        let t2 = t + 2000;
        let other_row = DramConfig::gtx480().row_size * 16; // same bank, next row
        let miss = d.access(other_row, 128, t2) - t2;
        assert!(hit < miss, "row hit ({hit}) should be faster than row miss ({miss})");
    }

    #[test]
    fn bank_parallelism_beats_single_bank() {
        let cfg = DramConfig::gtx480();
        // 8 requests across 8 different banks.
        let mut d1 = Dram::new(cfg);
        let parallel_done = (0..8u64).map(|i| d1.access(i * cfg.row_size, 128, 0)).max().unwrap();
        // 8 requests to the same bank, different rows.
        let mut d2 = Dram::new(cfg);
        let serial_done = (0..8u64)
            .map(|i| d2.access(i * cfg.row_size * cfg.num_banks as u64, 128, 0))
            .max()
            .unwrap();
        assert!(parallel_done < serial_done);
    }

    #[test]
    fn bandwidth_limits_throughput() {
        let slow = DramConfig::gtx480();
        let fast = DramConfig::gtx480_2x_bandwidth();
        let run = |cfg: DramConfig| {
            let mut d = Dram::new(cfg);
            let mut last = 0;
            // Stream of row hits to one bank: bus-bound.
            for i in 0..256u64 {
                last = d.access(i * 128 % cfg.row_size, 128, 0);
            }
            last
        };
        assert!(run(fast) < run(slow), "doubled bandwidth must finish the stream sooner");
    }

    #[test]
    fn utilization_saturates_at_one() {
        let mut d = Dram::new(DramConfig::gtx480());
        for i in 0..1000u64 {
            d.access(i * 128, 128, 0);
        }
        let u = d.bandwidth_utilization(10);
        assert!(u <= 1.0 && u > 0.9);
        assert!(d.bandwidth_utilization(0) == 0.0);
    }

    #[test]
    fn access_outcome_reports_row_hits() {
        let mut d = Dram::new(DramConfig::gtx480());
        let (_, first_hit) = d.access_outcome(0, 128, 0);
        assert!(!first_hit, "cold bank cannot row-hit");
        let (_, second_hit) = d.access_outcome(64, 128, 10_000);
        assert!(second_hit, "same row must hit the open row buffer");
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_misses, 1);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = Dram::new(DramConfig::gtx480());
        d.access(0, 128, 0);
        d.access(0, 128, 1000);
        let s = d.stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.bytes_transferred, 256);
        assert_eq!(s.row_hits + s.row_misses, 2);
        assert!(s.row_hit_rate() > 0.0);
        d.reset();
        assert_eq!(d.stats().accesses, 0);
    }

    proptest! {
        /// Completion time is always after the request time by at least the
        /// base latency plus CAS, and monotone in the request time for a
        /// fixed address stream.
        #[test]
        fn completion_after_request(addr in 0u64..(1 << 30), now in 0u64..1_000_000) {
            let mut d = Dram::new(DramConfig::gtx480());
            let done = d.access(addr, 128, now);
            prop_assert!(done >= now + DramConfig::gtx480().base_latency + DramConfig::gtx480().t_cl);
        }

        /// Bytes transferred equals 128 × number of accesses.
        #[test]
        fn byte_accounting(addrs in proptest::collection::vec(0u64..(1 << 24), 1..100)) {
            let mut d = Dram::new(DramConfig::gtx480());
            for (i, a) in addrs.iter().enumerate() {
                d.access(*a, 128, i as Cycle * 10);
            }
            prop_assert_eq!(d.stats().bytes_transferred, 128 * addrs.len() as u64);
        }
    }
}
