//! # gpu-mem — GPU memory-hierarchy substrate
//!
//! This crate implements the on-chip and off-chip memory system of a
//! Fermi-class GPU streaming multiprocessor (SM), sufficient to reproduce the
//! evaluation of *CIAO: Cache Interference-Aware Throughput-Oriented
//! Architecture and Scheduling for GPUs* (IPDPS 2018):
//!
//! * [`addr`] — address arithmetic, 128-byte block math and the XOR-based
//!   set-index hashing the paper layers on top of the baseline GPGPU-Sim
//!   configuration.
//! * [`cache`] — a generic set-associative cache with per-line warp-ID
//!   tracking (needed by the Victim Tag Array and the interference detector),
//!   configurable replacement and write policies; used for both the 16 KB L1D
//!   and the 768 KB L2 of Table I.
//! * [`mshr`] — miss-status holding registers, including the extra
//!   translated-shared-memory-address field CIAO adds (§IV-B).
//! * [`shared_memory`] — the 32-bank scratchpad with a bank-conflict model and
//!   the per-CTA Shared Memory Management Table ([`smmt`]).
//! * [`dram`] — a GDDR5-like DRAM model (banked timing, finite bandwidth).
//! * [`l2`] — memory partition: L2 slice plus its DRAM channel.
//! * [`queues`] — bounded response/write queues used on the L1D↔L2 datapath.
//! * [`interconnect`] — the SM↔partition interconnect (latency + bandwidth).
//!
//! All components are deterministic and cycle-based: methods take the current
//! cycle and return completion cycles, so a simulator driver (the `gpu-sim`
//! crate) can schedule events without this crate owning a clock.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod addr;
pub mod cache;
pub mod dram;
pub mod interconnect;
pub mod l2;
pub mod mshr;
pub mod queues;
pub mod shared_memory;
pub mod smmt;

pub use addr::{block_addr, block_index, Addr, SetIndexFunction, LINE_SIZE};
pub use cache::{
    AccessOutcome, CacheAccess, CacheConfig, CacheStats, EvictedLine, ReplacementPolicy,
    SetAssocCache, WriteAllocPolicy, WritePolicy,
};
pub use dram::{Dram, DramConfig, DramStats};
pub use interconnect::{
    Crossbar, CrossbarFabric, CrossbarStats, FabricDirectionStats, FabricStats, Interconnect,
};
pub use l2::{
    merge_tenant_stats, BankedMemorySystem, MemoryPartition, PartitionConfig, PartitionObs,
    PartitionStats, TenantMemStats,
};
pub use mshr::{Mshr, MshrAllocation, MshrEntry, MshrError};
pub use queues::{BoundedQueue, ResponseEntry, ResponseSource};
pub use shared_memory::{SharedMemory, SharedMemoryConfig};
pub use smmt::{Smmt, SmmtEntry, SmmtError, SmmtPurpose};

/// A simulation cycle index.
pub type Cycle = u64;

/// A tenant (kernel-stream) identifier, unique within one chip run. Memory
/// components use it to attribute shared-resource usage (L2 accesses, DRAM
/// traffic, interconnect bytes) to the co-running kernel that caused it.
pub type TenantId = u32;

/// A warp identifier (unique within one SM).
pub type WarpId = u32;

/// A cooperative-thread-array (thread block) identifier.
pub type CtaId = u32;
