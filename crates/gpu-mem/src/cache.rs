//! Generic set-associative cache with per-line warp-ID tracking.
//!
//! The same structure backs both caches of the GTX 480 configuration in
//! Table I of the paper:
//!
//! * **L1D**: 16 KB, 128-byte lines, 4-way, write-no-allocate, local
//!   write-back / global write-through, 1-cycle access latency, LRU.
//! * **L2**: 768 KB, 128-byte lines, 8-way, write-allocate, write-back, LRU.
//!
//! Every line additionally records the warp that brought it in (its *owner*
//! warp ID). On eviction the owner is reported back to the caller so the
//! Victim Tag Array (`ciao-schedulers::vta`) and the CIAO interference
//! detector can attribute the eviction to an (interfering, interfered) warp
//! pair — the mechanism of §II-C / §III-A.

use crate::addr::{Addr, SetIndexFunction};
use crate::{Cycle, WarpId};
use serde::{Deserialize, Serialize};

/// Replacement policy for a cache set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// Least-recently-used (Table I: L1D and L2).
    Lru,
    /// First-in-first-out (Table I: the Victim Tag Array uses FIFO).
    Fifo,
}

/// Write-miss allocation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WriteAllocPolicy {
    /// Allocate the line on a write miss (L2).
    WriteAllocate,
    /// Do not allocate on a write miss; forward the write downstream (L1D).
    WriteNoAllocate,
}

/// Write-hit propagation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WritePolicy {
    /// Mark the line dirty and write it back on eviction (L2, local data in L1D).
    WriteBack,
    /// Propagate every write downstream immediately (global data in L1D).
    WriteThrough,
}

/// Static geometry and policy configuration of a cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line (block) size in bytes.
    pub line_size: u64,
    /// Number of ways per set.
    pub associativity: usize,
    /// Replacement policy.
    pub replacement: ReplacementPolicy,
    /// Write-miss allocation policy.
    pub write_alloc: WriteAllocPolicy,
    /// Write-hit policy.
    pub write_policy: WritePolicy,
    /// Set-index mapping function.
    pub set_index: SetIndexFunction,
    /// Access latency in cycles (hit latency).
    pub latency: Cycle,
}

impl CacheConfig {
    /// The 16 KB / 4-way / 128 B L1D cache of Table I, with the XOR set-index
    /// hashing enhancement of §V-A.
    pub fn l1d_gtx480() -> Self {
        CacheConfig {
            size_bytes: 16 * 1024,
            line_size: 128,
            associativity: 4,
            replacement: ReplacementPolicy::Lru,
            write_alloc: WriteAllocPolicy::WriteNoAllocate,
            write_policy: WritePolicy::WriteThrough,
            set_index: SetIndexFunction::XorHash,
            latency: 1,
        }
    }

    /// The enlarged 48 KB L1D used by the `GTO-cap` configuration of Fig. 12a
    /// (L1D grown to 48 KB, shared memory shrunk to 16 KB).
    pub fn l1d_48k() -> Self {
        CacheConfig { size_bytes: 48 * 1024, ..Self::l1d_gtx480() }
    }

    /// The 8-way L1D used by the `GTO-8way` configuration of Fig. 12a.
    pub fn l1d_8way() -> Self {
        CacheConfig { associativity: 8, ..Self::l1d_gtx480() }
    }

    /// The 768 KB / 8-way / 128 B L2 cache of Table I.
    pub fn l2_gtx480() -> Self {
        CacheConfig {
            size_bytes: 768 * 1024,
            line_size: 128,
            associativity: 8,
            replacement: ReplacementPolicy::Lru,
            write_alloc: WriteAllocPolicy::WriteAllocate,
            write_policy: WritePolicy::WriteBack,
            set_index: SetIndexFunction::XorHash,
            latency: 120,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        let lines = self.size_bytes / self.line_size;
        (lines as usize / self.associativity).max(1)
    }

    /// Total number of lines.
    pub fn num_lines(&self) -> usize {
        (self.size_bytes / self.line_size) as usize
    }
}

/// One cache line's bookkeeping state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    /// Block-aligned global address held by the line (kept so evictions can
    /// report the victim address without reconstructing it from tag bits).
    block_addr: Addr,
    /// Warp that brought the data into the cache (§II-C: WID stored in tag).
    owner: WarpId,
    /// LRU timestamp (monotonic access counter).
    last_use: u64,
    /// FIFO timestamp (allocation counter).
    alloc_seq: u64,
}

impl Line {
    fn invalid() -> Self {
        Line {
            valid: false,
            dirty: false,
            tag: 0,
            block_addr: 0,
            owner: 0,
            last_use: 0,
            alloc_seq: 0,
        }
    }
}

/// Description of a line evicted to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvictedLine {
    /// Block-aligned address of the evicted data.
    pub block_addr: Addr,
    /// Warp that originally brought the evicted data into the cache.
    pub owner: WarpId,
    /// Whether the evicted line was dirty (needs a write-back downstream).
    pub dirty: bool,
}

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessOutcome {
    /// The block was present.
    Hit,
    /// The block was absent; the caller must fetch it downstream.
    Miss,
    /// The block was absent and a write with write-no-allocate policy:
    /// nothing was allocated, the write is simply forwarded downstream.
    MissNoAllocate,
}

impl AccessOutcome {
    /// True for any kind of miss.
    pub fn is_miss(self) -> bool {
        !matches!(self, AccessOutcome::Hit)
    }
}

/// Result of [`SetAssocCache::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// Hit/miss outcome.
    pub outcome: AccessOutcome,
    /// Line evicted by the allocation performed for this access, if any.
    pub evicted: Option<EvictedLine>,
    /// Warp that owned the line that was hit (for hit-ownership statistics).
    pub hit_owner: Option<WarpId>,
}

/// Aggregate hit/miss statistics for one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Read hits.
    pub read_hits: u64,
    /// Write hits.
    pub write_hits: u64,
    /// Lines evicted (capacity/conflict victims).
    pub evictions: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
    /// Fills performed (lines allocated).
    pub fills: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.read_hits + self.write_hits
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.accesses() - self.hits()
    }

    /// Hit rate over all accesses (0.0 when there were no accesses).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits() as f64 / self.accesses() as f64
        }
    }

    /// Merge another stats block into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.read_hits += other.read_hits;
        self.write_hits += other.write_hits;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.fills += other.fills;
    }
}

/// A set-associative cache with warp-ID ownership tracking.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    num_sets: usize,
    sets: Vec<Vec<Line>>,
    /// Monotonic counter driving LRU ordering.
    access_seq: u64,
    /// Monotonic counter driving FIFO ordering.
    alloc_seq: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Builds an empty cache from `config`.
    pub fn new(config: CacheConfig) -> Self {
        let num_sets = config.num_sets();
        let sets = vec![vec![Line::invalid(); config.associativity]; num_sets];
        SetAssocCache {
            config,
            num_sets,
            sets,
            access_seq: 0,
            alloc_seq: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the statistics counters (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_and_tag(&self, addr: Addr) -> (usize, u64) {
        let set = self.config.set_index.set_index(addr, self.num_sets, self.config.line_size);
        let tag = self.config.set_index.tag(addr, self.num_sets, self.config.line_size);
        (set, tag)
    }

    /// Probes the cache without updating replacement state or statistics.
    pub fn probe(&self, addr: Addr) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.sets[set].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Returns the owner warp of the line holding `addr`, if present.
    pub fn owner_of(&self, addr: Addr) -> Option<WarpId> {
        let (set, tag) = self.set_and_tag(addr);
        self.sets[set].iter().find(|l| l.valid && l.tag == tag).map(|l| l.owner)
    }

    /// Performs a read or write access on behalf of warp `wid`.
    ///
    /// On a read miss (or a write miss under write-allocate) the line is
    /// allocated immediately ("fill on miss"); the caller is responsible for
    /// modelling the downstream latency of actually fetching the data. The
    /// evicted victim, if any, is reported so the caller can update the VTA
    /// and issue a write-back for dirty victims.
    pub fn access(&mut self, addr: Addr, wid: WarpId, is_write: bool) -> CacheAccess {
        self.access_seq += 1;
        let (set, tag) = self.set_and_tag(addr);
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }

        // Hit path.
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_use = self.access_seq;
            if is_write {
                self.stats.write_hits += 1;
                if self.config.write_policy == WritePolicy::WriteBack {
                    line.dirty = true;
                }
            } else {
                self.stats.read_hits += 1;
            }
            let hit_owner = Some(line.owner);
            return CacheAccess { outcome: AccessOutcome::Hit, evicted: None, hit_owner };
        }

        // Miss path.
        if is_write && self.config.write_alloc == WriteAllocPolicy::WriteNoAllocate {
            return CacheAccess {
                outcome: AccessOutcome::MissNoAllocate,
                evicted: None,
                hit_owner: None,
            };
        }
        let evicted = self.fill_internal(
            addr,
            wid,
            is_write && self.config.write_policy == WritePolicy::WriteBack,
        );
        CacheAccess { outcome: AccessOutcome::Miss, evicted, hit_owner: None }
    }

    /// Allocates (fills) the line for `addr` on behalf of `wid` and returns
    /// the evicted victim if a valid line had to be replaced.
    pub fn fill(&mut self, addr: Addr, wid: WarpId) -> Option<EvictedLine> {
        self.access_seq += 1;
        self.fill_internal(addr, wid, false)
    }

    fn fill_internal(&mut self, addr: Addr, wid: WarpId, dirty: bool) -> Option<EvictedLine> {
        let (set, tag) = self.set_and_tag(addr);
        let block = crate::addr::block_addr_for(addr, self.config.line_size);
        self.alloc_seq += 1;
        self.stats.fills += 1;

        // Already present (e.g. fill racing with an earlier fill): refresh.
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_use = self.access_seq;
            line.dirty |= dirty;
            return None;
        }

        let way = self.pick_victim(set);
        let line = &mut self.sets[set][way];
        let evicted = if line.valid {
            self.stats.evictions += 1;
            if line.dirty {
                self.stats.writebacks += 1;
            }
            Some(EvictedLine { block_addr: line.block_addr, owner: line.owner, dirty: line.dirty })
        } else {
            None
        };
        *line = Line {
            valid: true,
            dirty,
            tag,
            block_addr: block,
            owner: wid,
            last_use: self.access_seq,
            alloc_seq: self.alloc_seq,
        };
        evicted
    }

    fn pick_victim(&self, set: usize) -> usize {
        // Prefer an invalid way.
        if let Some(i) = self.sets[set].iter().position(|l| !l.valid) {
            return i;
        }
        match self.config.replacement {
            ReplacementPolicy::Lru => self.sets[set]
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_use)
                .map(|(i, _)| i)
                .expect("set has at least one way"),
            ReplacementPolicy::Fifo => self.sets[set]
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.alloc_seq)
                .map(|(i, _)| i)
                .expect("set has at least one way"),
        }
    }

    /// Invalidates the line holding `addr`, returning its descriptor if it
    /// was present. Used by CIAO's L1D→shared-memory migration path (§IV-B):
    /// the L1D copy is evicted to the response queue and invalidated so a
    /// single copy of the data exists.
    pub fn invalidate(&mut self, addr: Addr) -> Option<EvictedLine> {
        let (set, tag) = self.set_and_tag(addr);
        for line in &mut self.sets[set] {
            if line.valid && line.tag == tag {
                let out = EvictedLine {
                    block_addr: line.block_addr,
                    owner: line.owner,
                    dirty: line.dirty,
                };
                *line = Line::invalid();
                return Some(out);
            }
        }
        None
    }

    /// Invalidates the entire cache (used between kernel launches).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for line in set {
                *line = Line::invalid();
            }
        }
    }

    /// Number of currently valid lines (for occupancy assertions).
    pub fn valid_lines(&self) -> usize {
        self.sets.iter().flatten().filter(|l| l.valid).count()
    }

    /// Iterates over the block addresses of all valid lines.
    pub fn resident_blocks(&self) -> impl Iterator<Item = Addr> + '_ {
        self.sets.iter().flatten().filter(|l| l.valid).map(|l| l.block_addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::LINE_SIZE;
    use proptest::prelude::*;

    fn tiny_cache(assoc: usize, lines: usize, repl: ReplacementPolicy) -> SetAssocCache {
        SetAssocCache::new(CacheConfig {
            size_bytes: (lines as u64) * LINE_SIZE,
            line_size: LINE_SIZE,
            associativity: assoc,
            replacement: repl,
            write_alloc: WriteAllocPolicy::WriteAllocate,
            write_policy: WritePolicy::WriteBack,
            set_index: SetIndexFunction::Linear,
            latency: 1,
        })
    }

    #[test]
    fn geometry_of_table1_l1d() {
        let c = CacheConfig::l1d_gtx480();
        assert_eq!(c.num_lines(), 128);
        assert_eq!(c.num_sets(), 32);
    }

    #[test]
    fn geometry_of_table1_l2() {
        let c = CacheConfig::l2_gtx480();
        assert_eq!(c.num_lines(), 6144);
        assert_eq!(c.num_sets(), 768);
    }

    #[test]
    fn read_miss_then_hit() {
        let mut c = tiny_cache(2, 8, ReplacementPolicy::Lru);
        let a = 0x1000;
        assert_eq!(c.access(a, 0, false).outcome, AccessOutcome::Miss);
        assert_eq!(c.access(a, 0, false).outcome, AccessOutcome::Hit);
        assert_eq!(c.stats().reads, 2);
        assert_eq!(c.stats().read_hits, 1);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // 2-way, 1 set: addresses 0, S, 2S conflict (S = set span).
        let mut c = tiny_cache(2, 2, ReplacementPolicy::Lru);
        let span = LINE_SIZE; // 1 set => consecutive blocks conflict
        c.access(0, 0, false);
        c.access(span, 1, false);
        // Touch 0 so `span` becomes the LRU victim.
        c.access(0, 0, false);
        let res = c.access(2 * span, 2, false);
        let ev = res.evicted.expect("must evict");
        assert_eq!(ev.block_addr, span);
        assert_eq!(ev.owner, 1);
        assert!(c.probe(0));
        assert!(!c.probe(span));
    }

    #[test]
    fn fifo_evicts_oldest_allocation() {
        let mut c = tiny_cache(2, 2, ReplacementPolicy::Fifo);
        let span = LINE_SIZE;
        c.access(0, 0, false);
        c.access(span, 1, false);
        // Re-touching 0 must NOT save it under FIFO.
        c.access(0, 0, false);
        let res = c.access(2 * span, 2, false);
        assert_eq!(res.evicted.unwrap().block_addr, 0);
    }

    #[test]
    fn write_no_allocate_does_not_fill() {
        let mut c = SetAssocCache::new(CacheConfig::l1d_gtx480());
        let r = c.access(0x4000, 3, true);
        assert_eq!(r.outcome, AccessOutcome::MissNoAllocate);
        assert!(!c.probe(0x4000));
        assert_eq!(c.valid_lines(), 0);
    }

    #[test]
    fn write_back_marks_dirty_and_reports_writeback() {
        let mut c = tiny_cache(1, 1, ReplacementPolicy::Lru);
        c.access(0, 0, true); // write-allocate, dirty
        let res = c.access(LINE_SIZE, 1, false); // evicts dirty line
        let ev = res.evicted.unwrap();
        assert!(ev.dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_through_hit_does_not_mark_dirty() {
        let mut c = SetAssocCache::new(CacheConfig {
            write_policy: WritePolicy::WriteThrough,
            write_alloc: WriteAllocPolicy::WriteAllocate,
            ..CacheConfig::l1d_gtx480()
        });
        c.access(0x80, 0, false);
        c.access(0x80, 0, true);
        // Evict it and verify no write-back was counted.
        c.flush();
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny_cache(4, 16, ReplacementPolicy::Lru);
        c.access(0x100, 7, false);
        assert!(c.probe(0x100));
        let ev = c.invalidate(0x100).unwrap();
        assert_eq!(ev.owner, 7);
        assert!(!c.probe(0x100));
        assert!(c.invalidate(0x100).is_none());
    }

    #[test]
    fn owner_tracking_follows_filler() {
        let mut c = tiny_cache(4, 16, ReplacementPolicy::Lru);
        c.access(0x200, 11, false);
        assert_eq!(c.owner_of(0x200), Some(11));
        // A hit by another warp does not transfer ownership.
        c.access(0x200, 12, false);
        assert_eq!(c.owner_of(0x200), Some(11));
    }

    #[test]
    fn hit_owner_reported() {
        let mut c = tiny_cache(4, 16, ReplacementPolicy::Lru);
        c.access(0x200, 11, false);
        let res = c.access(0x200, 3, false);
        assert_eq!(res.hit_owner, Some(11));
    }

    #[test]
    fn conflicting_warps_thrash_small_cache() {
        // Reproduces the Figure 3a scenario: two warps ping-pong on the same
        // set of a direct-mapped region and never hit.
        let mut c = tiny_cache(1, 1, ReplacementPolicy::Lru);
        let (d0, d4) = (0u64, LINE_SIZE);
        let mut hits = 0;
        for _ in 0..8 {
            if c.access(d0, 0, false).outcome == AccessOutcome::Hit {
                hits += 1;
            }
            if c.access(d4, 1, false).outcome == AccessOutcome::Hit {
                hits += 1;
            }
        }
        assert_eq!(hits, 0, "interfering warps should thrash the shared set");
    }

    proptest! {
        /// The number of valid lines never exceeds the configured capacity,
        /// and every resident block maps to the set it is stored in.
        #[test]
        fn capacity_and_placement_invariants(
            addrs in proptest::collection::vec(0u64..(1 << 20), 1..512),
            assoc in 1usize..8,
        ) {
            let lines = assoc * 8;
            let mut c = tiny_cache(assoc, lines, ReplacementPolicy::Lru);
            for (i, a) in addrs.iter().enumerate() {
                c.access(*a, (i % 48) as WarpId, i % 3 == 0);
                prop_assert!(c.valid_lines() <= lines);
            }
            let cfg = c.config().clone();
            for block in c.resident_blocks().collect::<Vec<_>>() {
                prop_assert!(c.probe(block));
                let set = cfg.set_index.set_index(block, c.num_sets(), cfg.line_size);
                prop_assert!(set < c.num_sets());
            }
        }

        /// Statistics are conserved: hits + misses == accesses, and fills are
        /// at least the number of read misses under write-allocate.
        #[test]
        fn stats_conservation(addrs in proptest::collection::vec(0u64..(1 << 18), 1..256)) {
            let mut c = tiny_cache(4, 32, ReplacementPolicy::Lru);
            for a in &addrs {
                c.access(*a, 0, false);
            }
            let s = *c.stats();
            prop_assert_eq!(s.hits() + s.misses(), s.accesses());
            prop_assert_eq!(s.accesses(), addrs.len() as u64);
            prop_assert_eq!(s.fills, s.misses());
        }

        /// After accessing an address it is always resident (read, write-allocate).
        #[test]
        fn read_allocates(addr in 0u64..(1 << 30)) {
            let mut c = tiny_cache(4, 64, ReplacementPolicy::Lru);
            c.access(addr, 0, false);
            prop_assert!(c.probe(addr));
        }
    }
}
