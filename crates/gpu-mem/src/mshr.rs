//! Miss-Status Holding Registers (MSHRs).
//!
//! The L1D of the modelled SM tracks outstanding misses in a small MSHR file.
//! Requests to a block that already has an outstanding miss are *merged* into
//! the existing entry instead of generating new downstream traffic.
//!
//! CIAO extends each MSHR entry with the *translated shared-memory address*
//! of the request (§IV-B, "Datapath connection"): when the unused shared
//! memory space serves as a cache for an isolated warp, a shared-memory miss
//! reserves an MSHR entry carrying both the global address and the translated
//! shared-memory address, so the L2 response can be steered directly into the
//! shared-memory data array. The same entry also carries an optional pointer
//! into the response queue used by the L1D→shared-memory migration path.

use crate::addr::Addr;
use crate::{Cycle, WarpId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifies where the fill data for an entry should be placed on return.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FillTarget {
    /// Normal path: fill the L1D cache.
    L1d,
    /// CIAO path: fill the shared-memory cache at the translated address.
    SharedMemory {
        /// Translated shared-memory byte address produced by the CIAO
        /// address-translation unit.
        shared_addr: u32,
    },
}

/// A single outstanding miss.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MshrEntry {
    /// Block-aligned global address being fetched.
    pub block_addr: Addr,
    /// Warps whose requests merged into this entry, in arrival order.
    pub waiting_warps: Vec<WarpId>,
    /// Where the data should be placed when the response arrives.
    pub fill_target: FillTarget,
    /// Cycle at which the first (allocating) request arrived.
    pub issue_cycle: Cycle,
    /// Set when the data is being migrated out of the L1D through the
    /// response queue rather than fetched from L2 (§IV-B, coherence path).
    pub response_queue_slot: Option<usize>,
}

/// Outcome of [`Mshr::allocate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MshrAllocation {
    /// A new entry was created; the caller must send a fetch downstream.
    New,
    /// The request was merged into an existing entry; no new fetch needed.
    Merged,
}

/// Reasons an allocation can fail (structural hazards).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MshrError {
    /// All MSHR entries are in use.
    Full,
    /// The entry for this block exists but its merge list is full.
    MergeListFull,
}

impl std::fmt::Display for MshrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MshrError::Full => write!(f, "all MSHR entries are in use"),
            MshrError::MergeListFull => write!(f, "MSHR merge list is full for this block"),
        }
    }
}

impl std::error::Error for MshrError {}

/// Aggregate MSHR statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MshrStats {
    /// New entries allocated.
    pub allocations: u64,
    /// Requests merged into existing entries.
    pub merges: u64,
    /// Allocation failures due to a full MSHR file.
    pub full_stalls: u64,
    /// Allocation failures due to a full merge list.
    pub merge_stalls: u64,
}

/// The MSHR file.
#[derive(Debug, Clone)]
pub struct Mshr {
    max_entries: usize,
    max_merged: usize,
    entries: HashMap<Addr, MshrEntry>,
    stats: MshrStats,
}

impl Mshr {
    /// Creates an MSHR file with `max_entries` entries, each able to merge up
    /// to `max_merged` requests (including the allocating one).
    pub fn new(max_entries: usize, max_merged: usize) -> Self {
        assert!(max_entries > 0 && max_merged > 0);
        Mshr { max_entries, max_merged, entries: HashMap::new(), stats: MshrStats::default() }
    }

    /// The default Fermi-like configuration: 32 entries, 8 merged requests.
    pub fn fermi_l1d() -> Self {
        Mshr::new(32, 8)
    }

    /// Number of entries currently in flight.
    pub fn in_flight(&self) -> usize {
        self.entries.len()
    }

    /// True when no more entries can be allocated.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.max_entries
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MshrStats {
        &self.stats
    }

    /// True if a miss to `block_addr` is already outstanding.
    pub fn probe(&self, block_addr: Addr) -> bool {
        self.entries.contains_key(&block_addr)
    }

    /// Returns the entry for `block_addr`, if outstanding.
    pub fn entry(&self, block_addr: Addr) -> Option<&MshrEntry> {
        self.entries.get(&block_addr)
    }

    /// Registers a miss for `block_addr` by warp `wid`.
    ///
    /// Returns whether a new downstream fetch must be generated or the
    /// request merged into an existing one, or an error when a structural
    /// hazard prevents the allocation (the caller should then replay the
    /// access on a later cycle, which is how the SM models MSHR back-pressure).
    pub fn allocate(
        &mut self,
        block_addr: Addr,
        wid: WarpId,
        now: Cycle,
        fill_target: FillTarget,
    ) -> Result<MshrAllocation, MshrError> {
        if let Some(entry) = self.entries.get_mut(&block_addr) {
            if entry.waiting_warps.len() >= self.max_merged {
                self.stats.merge_stalls += 1;
                return Err(MshrError::MergeListFull);
            }
            entry.waiting_warps.push(wid);
            self.stats.merges += 1;
            return Ok(MshrAllocation::Merged);
        }
        if self.entries.len() >= self.max_entries {
            self.stats.full_stalls += 1;
            return Err(MshrError::Full);
        }
        self.entries.insert(
            block_addr,
            MshrEntry {
                block_addr,
                waiting_warps: vec![wid],
                fill_target,
                issue_cycle: now,
                response_queue_slot: None,
            },
        );
        self.stats.allocations += 1;
        Ok(MshrAllocation::New)
    }

    /// Records the response-queue slot holding data being migrated from the
    /// L1D for this block (CIAO coherence path, §IV-B).
    pub fn set_response_queue_slot(&mut self, block_addr: Addr, slot: usize) -> bool {
        if let Some(e) = self.entries.get_mut(&block_addr) {
            e.response_queue_slot = Some(slot);
            true
        } else {
            false
        }
    }

    /// Completes the outstanding miss for `block_addr`, removing and
    /// returning its entry (with the full list of warps to wake up).
    pub fn fill(&mut self, block_addr: Addr) -> Option<MshrEntry> {
        self.entries.remove(&block_addr)
    }

    /// Drops every outstanding entry (used between kernels).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn allocate_then_merge_then_fill() {
        let mut m = Mshr::new(4, 4);
        assert_eq!(m.allocate(0x100, 1, 10, FillTarget::L1d).unwrap(), MshrAllocation::New);
        assert_eq!(m.allocate(0x100, 2, 11, FillTarget::L1d).unwrap(), MshrAllocation::Merged);
        assert!(m.probe(0x100));
        assert_eq!(m.in_flight(), 1);
        let e = m.fill(0x100).unwrap();
        assert_eq!(e.waiting_warps, vec![1, 2]);
        assert_eq!(e.issue_cycle, 10);
        assert!(!m.probe(0x100));
        assert_eq!(m.stats().allocations, 1);
        assert_eq!(m.stats().merges, 1);
    }

    #[test]
    fn full_mshr_rejects() {
        let mut m = Mshr::new(2, 2);
        m.allocate(0x000, 0, 0, FillTarget::L1d).unwrap();
        m.allocate(0x080, 0, 0, FillTarget::L1d).unwrap();
        assert_eq!(m.allocate(0x100, 0, 0, FillTarget::L1d), Err(MshrError::Full));
        assert!(m.is_full());
        assert_eq!(m.stats().full_stalls, 1);
    }

    #[test]
    fn merge_list_limit_enforced() {
        let mut m = Mshr::new(2, 2);
        m.allocate(0x000, 0, 0, FillTarget::L1d).unwrap();
        m.allocate(0x000, 1, 0, FillTarget::L1d).unwrap();
        assert_eq!(m.allocate(0x000, 2, 0, FillTarget::L1d), Err(MshrError::MergeListFull));
        assert_eq!(m.stats().merge_stalls, 1);
    }

    #[test]
    fn shared_memory_fill_target_preserved() {
        let mut m = Mshr::fermi_l1d();
        m.allocate(0x2000, 5, 3, FillTarget::SharedMemory { shared_addr: 0x440 }).unwrap();
        let e = m.entry(0x2000).unwrap();
        assert_eq!(e.fill_target, FillTarget::SharedMemory { shared_addr: 0x440 });
    }

    #[test]
    fn response_queue_slot_recorded() {
        let mut m = Mshr::fermi_l1d();
        m.allocate(0x2000, 5, 3, FillTarget::L1d).unwrap();
        assert!(m.set_response_queue_slot(0x2000, 7));
        assert_eq!(m.entry(0x2000).unwrap().response_queue_slot, Some(7));
        assert!(!m.set_response_queue_slot(0x3000, 1));
    }

    #[test]
    fn fill_unknown_block_returns_none() {
        let mut m = Mshr::fermi_l1d();
        assert!(m.fill(0xdead_0000).is_none());
    }

    proptest! {
        /// The MSHR never leaks entries: after filling every allocated block
        /// the file is empty, and in-flight never exceeds the capacity.
        #[test]
        fn no_leaks(blocks in proptest::collection::vec(0u64..64, 1..200)) {
            let mut m = Mshr::new(16, 8);
            let mut outstanding = std::collections::HashSet::new();
            for (i, b) in blocks.iter().enumerate() {
                let addr = b * 128;
                if m.allocate(addr, (i % 48) as WarpId, i as Cycle, FillTarget::L1d).is_ok() { outstanding.insert(addr); }
                prop_assert!(m.in_flight() <= 16);
            }
            for addr in &outstanding {
                prop_assert!(m.fill(*addr).is_some());
            }
            prop_assert_eq!(m.in_flight(), 0);
        }

        /// Merged warps are returned in arrival order and never exceed the
        /// merge capacity.
        #[test]
        fn merge_order_preserved(warps in proptest::collection::vec(0u32..48, 1..20)) {
            let mut m = Mshr::new(4, 64);
            let mut expected = Vec::new();
            for (i, w) in warps.iter().enumerate() {
                if m.allocate(0x80, *w, i as Cycle, FillTarget::L1d).is_ok() {
                    expected.push(*w);
                }
            }
            let entry = m.fill(0x80).unwrap();
            prop_assert_eq!(entry.waiting_warps, expected);
        }
    }
}
