//! Shared Memory Management Table (SMMT).
//!
//! §II-A: each SM keeps an independent SMMT where each CTA reserves one entry
//! recording the base address and size of its shared-memory allocation.
//!
//! §IV-B ("Determination of unused shared memory space"): when a CTA is
//! launched, CIAO consults the SMMT to find how much scratchpad is unused and
//! inserts an additional entry reserving that space for its own tag+data
//! blocks, making the repurposing transparent to the programmer. This module
//! implements both the baseline CTA allocation bookkeeping and the CIAO
//! reservation entry.

use crate::CtaId;
use serde::{Deserialize, Serialize};

/// What an SMMT entry's space is used for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SmmtPurpose {
    /// Programmer-visible per-CTA shared memory.
    Cta(CtaId),
    /// Space reserved by CIAO to hold redirected cache blocks and their tags.
    CiaoCache,
}

/// One SMMT entry: a contiguous region of the scratchpad.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmmtEntry {
    /// Purpose of the reservation.
    pub purpose: SmmtPurpose,
    /// Base byte address within the scratchpad.
    pub base: u32,
    /// Size in bytes.
    pub size: u32,
}

impl SmmtEntry {
    /// Exclusive end address of the region.
    pub fn end(&self) -> u32 {
        self.base + self.size
    }
}

/// Errors returned by SMMT operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SmmtError {
    /// Not enough contiguous free space for the requested allocation.
    OutOfSpace,
    /// The CTA already holds an allocation.
    AlreadyAllocated,
    /// No allocation found for the CTA / for the CIAO reservation.
    NotFound,
}

impl std::fmt::Display for SmmtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SmmtError::OutOfSpace => write!(f, "insufficient free shared memory"),
            SmmtError::AlreadyAllocated => write!(f, "CTA already has a shared-memory allocation"),
            SmmtError::NotFound => write!(f, "no matching SMMT entry"),
        }
    }
}

impl std::error::Error for SmmtError {}

/// The Shared Memory Management Table of one SM.
#[derive(Debug, Clone, Default)]
pub struct Smmt {
    total_size: u32,
    entries: Vec<SmmtEntry>,
}

impl Smmt {
    /// Creates an SMMT managing a scratchpad of `total_size` bytes.
    pub fn new(total_size: u32) -> Self {
        Smmt { total_size, entries: Vec::new() }
    }

    /// Total scratchpad capacity managed by this table.
    pub fn total_size(&self) -> u32 {
        self.total_size
    }

    /// Current entries (CTA allocations plus at most one CIAO reservation).
    pub fn entries(&self) -> &[SmmtEntry] {
        &self.entries
    }

    /// Bytes currently allocated (all purposes).
    pub fn allocated(&self) -> u32 {
        self.entries.iter().map(|e| e.size).sum()
    }

    /// Bytes currently allocated to CTAs (programmer-visible usage). This is
    /// the quantity behind the `Fsmem` column of Table II.
    pub fn cta_allocated(&self) -> u32 {
        self.entries
            .iter()
            .filter(|e| matches!(e.purpose, SmmtPurpose::Cta(_)))
            .map(|e| e.size)
            .sum()
    }

    /// Bytes not allocated to anything.
    pub fn unused(&self) -> u32 {
        self.total_size - self.allocated()
    }

    /// Finds the lowest free contiguous region of at least `size` bytes.
    fn find_free(&self, size: u32) -> Option<u32> {
        if size == 0 {
            return Some(0);
        }
        let mut regions: Vec<(u32, u32)> = self.entries.iter().map(|e| (e.base, e.end())).collect();
        regions.sort_unstable();
        let mut cursor = 0u32;
        for (base, end) in regions {
            if base >= cursor && base - cursor >= size {
                return Some(cursor);
            }
            cursor = cursor.max(end);
        }
        if self.total_size >= cursor && self.total_size - cursor >= size {
            Some(cursor)
        } else {
            None
        }
    }

    /// Allocates `size` bytes of shared memory for CTA `cta` (kernel launch).
    pub fn allocate_cta(&mut self, cta: CtaId, size: u32) -> Result<SmmtEntry, SmmtError> {
        if self.entries.iter().any(|e| e.purpose == SmmtPurpose::Cta(cta)) {
            return Err(SmmtError::AlreadyAllocated);
        }
        let base = self.find_free(size).ok_or(SmmtError::OutOfSpace)?;
        let entry = SmmtEntry { purpose: SmmtPurpose::Cta(cta), base, size };
        self.entries.push(entry);
        Ok(entry)
    }

    /// Releases the allocation of CTA `cta` (CTA completion).
    pub fn free_cta(&mut self, cta: CtaId) -> Result<SmmtEntry, SmmtError> {
        let idx = self
            .entries
            .iter()
            .position(|e| e.purpose == SmmtPurpose::Cta(cta))
            .ok_or(SmmtError::NotFound)?;
        Ok(self.entries.swap_remove(idx))
    }

    /// Reserves *all* currently unused space for the CIAO shared-memory cache
    /// and returns the reservation entry (§IV-B). Any previous CIAO
    /// reservation is released first, so the reservation always reflects the
    /// current CTA occupancy.
    pub fn reserve_unused_for_ciao(&mut self) -> Result<SmmtEntry, SmmtError> {
        self.release_ciao().ok();
        let size = self.unused();
        if size == 0 {
            return Err(SmmtError::OutOfSpace);
        }
        let base = self.find_free(size).ok_or(SmmtError::OutOfSpace)?;
        let entry = SmmtEntry { purpose: SmmtPurpose::CiaoCache, base, size };
        self.entries.push(entry);
        Ok(entry)
    }

    /// Releases the CIAO reservation (e.g. before launching another CTA that
    /// needs programmer-visible shared memory).
    pub fn release_ciao(&mut self) -> Result<SmmtEntry, SmmtError> {
        let idx = self
            .entries
            .iter()
            .position(|e| e.purpose == SmmtPurpose::CiaoCache)
            .ok_or(SmmtError::NotFound)?;
        Ok(self.entries.swap_remove(idx))
    }

    /// Returns the current CIAO reservation, if any.
    pub fn ciao_reservation(&self) -> Option<SmmtEntry> {
        self.entries.iter().copied().find(|e| e.purpose == SmmtPurpose::CiaoCache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cta_allocation_and_free() {
        let mut t = Smmt::new(48 * 1024);
        let a = t.allocate_cta(0, 8 * 1024).unwrap();
        assert_eq!(a.base, 0);
        let b = t.allocate_cta(1, 4 * 1024).unwrap();
        assert_eq!(b.base, 8 * 1024);
        assert_eq!(t.cta_allocated(), 12 * 1024);
        assert_eq!(t.unused(), 36 * 1024);
        t.free_cta(0).unwrap();
        assert_eq!(t.unused(), 44 * 1024);
        // Freed space is reused.
        let c = t.allocate_cta(2, 6 * 1024).unwrap();
        assert_eq!(c.base, 0);
    }

    #[test]
    fn double_allocation_rejected() {
        let mut t = Smmt::new(1024);
        t.allocate_cta(3, 128).unwrap();
        assert_eq!(t.allocate_cta(3, 128), Err(SmmtError::AlreadyAllocated));
    }

    #[test]
    fn out_of_space() {
        let mut t = Smmt::new(1024);
        t.allocate_cta(0, 1000).unwrap();
        assert_eq!(t.allocate_cta(1, 100), Err(SmmtError::OutOfSpace));
    }

    #[test]
    fn ciao_reservation_takes_all_unused() {
        let mut t = Smmt::new(48 * 1024);
        t.allocate_cta(0, 16 * 1024).unwrap();
        let r = t.reserve_unused_for_ciao().unwrap();
        assert_eq!(r.size, 32 * 1024);
        assert_eq!(t.unused(), 0);
        // Re-reserving after a CTA frees re-sizes the reservation.
        t.free_cta(0).unwrap();
        let r2 = t.reserve_unused_for_ciao().unwrap();
        assert_eq!(r2.size, 48 * 1024);
        assert_eq!(t.ciao_reservation().unwrap().size, 48 * 1024);
    }

    #[test]
    fn ciao_reservation_fails_when_fully_used() {
        let mut t = Smmt::new(1024);
        t.allocate_cta(0, 1024).unwrap();
        assert_eq!(t.reserve_unused_for_ciao(), Err(SmmtError::OutOfSpace));
    }

    #[test]
    fn free_unknown_cta_is_error() {
        let mut t = Smmt::new(1024);
        assert_eq!(t.free_cta(9), Err(SmmtError::NotFound));
        assert_eq!(t.release_ciao(), Err(SmmtError::NotFound));
    }

    proptest! {
        /// Allocations never overlap and never exceed the scratchpad size.
        #[test]
        fn no_overlap(sizes in proptest::collection::vec(1u32..8 * 1024, 1..12)) {
            let mut t = Smmt::new(48 * 1024);
            for (i, s) in sizes.iter().enumerate() {
                let _ = t.allocate_cta(i as CtaId, *s);
            }
            let entries = t.entries().to_vec();
            for (i, a) in entries.iter().enumerate() {
                prop_assert!(a.end() <= 48 * 1024);
                for b in entries.iter().skip(i + 1) {
                    let disjoint = a.end() <= b.base || b.end() <= a.base;
                    prop_assert!(disjoint, "overlapping entries {a:?} {b:?}");
                }
            }
            prop_assert!(t.allocated() <= t.total_size());
        }

        /// unused() + allocated() always equals the total capacity.
        #[test]
        fn space_conservation(sizes in proptest::collection::vec(1u32..4096, 1..16)) {
            let mut t = Smmt::new(48 * 1024);
            for (i, s) in sizes.iter().enumerate() {
                let _ = t.allocate_cta(i as CtaId, *s);
            }
            let _ = t.reserve_unused_for_ciao();
            prop_assert_eq!(t.allocated() + t.unused(), t.total_size());
        }
    }
}
