//! Address arithmetic and set-index hashing.
//!
//! The GPU global address space is modelled as a flat 64-bit byte address
//! space. The L1D/L2 caches of the GTX 480 configuration (Table I of the
//! paper) use 128-byte lines; a *block address* is the byte address with the
//! intra-line offset stripped, and the *block index* is the block address
//! divided by the line size.
//!
//! The paper enhances the baseline L1D and L2 with an XOR-based set-index
//! hashing function (citing the reuse-distance cache model of Nugteren et
//! al., HPCA'14) to bring the baseline closer to real hardware, which spreads
//! power-of-two strides across sets. Both the linear and the XOR index
//! functions are provided here so the baseline-vs-hashed configurations can
//! be compared.

use serde::{Deserialize, Serialize};

/// Byte address in the flat global memory space.
pub type Addr = u64;

/// Cache line (block) size in bytes used throughout the Fermi-like model.
pub const LINE_SIZE: u64 = 128;

/// Returns the block-aligned address containing `addr` for a given line size.
#[inline]
pub fn block_addr_for(addr: Addr, line_size: u64) -> Addr {
    debug_assert!(line_size.is_power_of_two());
    addr & !(line_size - 1)
}

/// Returns the 128-byte block-aligned address containing `addr`.
#[inline]
pub fn block_addr(addr: Addr) -> Addr {
    block_addr_for(addr, LINE_SIZE)
}

/// Returns the 128-byte block index (block address divided by the line size).
#[inline]
pub fn block_index(addr: Addr) -> u64 {
    addr / LINE_SIZE
}

/// Returns the byte offset of `addr` within its 128-byte block.
#[inline]
pub fn block_offset(addr: Addr) -> u64 {
    addr & (LINE_SIZE - 1)
}

/// Set-index mapping function used by a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SetIndexFunction {
    /// Classic modulo indexing: the set is the low bits of the block index.
    Linear,
    /// XOR-based hashing: the set bits are XOR-folded with higher-order bits
    /// of the block index, which de-correlates power-of-two strides from set
    /// conflicts (the enhancement applied to the baseline in §V-A).
    XorHash,
}

impl SetIndexFunction {
    /// Computes the set index for `addr` given the cache geometry.
    ///
    /// `num_sets` may be any positive count (the 768-set L2 of Table I is not
    /// a power of two); power-of-two geometries use the fast masked path.
    #[inline]
    pub fn set_index(self, addr: Addr, num_sets: usize, line_size: u64) -> usize {
        debug_assert!(num_sets > 0);
        let block = addr / line_size;
        let n = num_sets as u64;
        match self {
            SetIndexFunction::Linear => (block % n) as usize,
            SetIndexFunction::XorHash => {
                // Fold three higher-order slices of the block index onto the
                // set bits before the final reduction. For power-of-two set
                // counts the slices are disjoint, so (tag, set) pairs stay a
                // bijection with block indices (verified by the property
                // tests); non-power-of-two counts fall back to a modulo
                // reduction of the folded value.
                let set_bits = (usize::BITS - num_sets.leading_zeros() - 1).max(1);
                let b0 = block;
                let b1 = block >> set_bits;
                let b2 = block >> (2 * set_bits);
                ((b0 ^ b1 ^ b2) % n) as usize
            }
        }
    }

    /// Computes the tag stored alongside a cache line for `addr`.
    ///
    /// The tag must uniquely identify the block given the set index. For the
    /// XOR hash the full block index (above the line offset) is kept as the
    /// tag so that distinct blocks mapping to the same set can never alias.
    #[inline]
    pub fn tag(self, addr: Addr, num_sets: usize, line_size: u64) -> u64 {
        match self {
            SetIndexFunction::Linear => addr / line_size / num_sets as u64,
            SetIndexFunction::XorHash => addr / line_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn block_math_basics() {
        assert_eq!(block_addr(0), 0);
        assert_eq!(block_addr(127), 0);
        assert_eq!(block_addr(128), 128);
        assert_eq!(block_addr(129), 128);
        assert_eq!(block_index(0), 0);
        assert_eq!(block_index(128), 1);
        assert_eq!(block_offset(130), 2);
        assert_eq!(block_addr_for(513, 256), 512);
    }

    #[test]
    fn linear_index_is_modulo() {
        let f = SetIndexFunction::Linear;
        for set in 0..32u64 {
            let addr = set * LINE_SIZE;
            assert_eq!(f.set_index(addr, 32, LINE_SIZE), set as usize);
        }
        // Wraps around after num_sets blocks.
        assert_eq!(f.set_index(32 * LINE_SIZE, 32, LINE_SIZE), 0);
    }

    #[test]
    fn xor_hash_spreads_power_of_two_strides() {
        // With a 32-set cache and a stride equal to num_sets * line_size,
        // linear indexing maps every access to set 0; the XOR hash must not.
        let f_lin = SetIndexFunction::Linear;
        let f_xor = SetIndexFunction::XorHash;
        let stride = 32 * LINE_SIZE;
        let lin: Vec<usize> = (0..64).map(|i| f_lin.set_index(i * stride, 32, LINE_SIZE)).collect();
        let xor: Vec<usize> = (0..64).map(|i| f_xor.set_index(i * stride, 32, LINE_SIZE)).collect();
        assert!(lin.iter().all(|&s| s == 0));
        let distinct: std::collections::HashSet<_> = xor.iter().collect();
        assert!(distinct.len() > 16, "xor hash should spread strided accesses, got {distinct:?}");
    }

    #[test]
    fn xor_hash_same_block_same_set() {
        let f = SetIndexFunction::XorHash;
        // Two addresses in the same 128-byte block must land in the same set.
        assert_eq!(
            f.set_index(0x1234_0000, 32, LINE_SIZE),
            f.set_index(0x1234_007f, 32, LINE_SIZE)
        );
    }

    proptest! {
        /// (tag, set) uniquely identifies a block for both index functions:
        /// two different blocks can never produce the same (tag, set) pair.
        #[test]
        fn tag_set_pair_is_injective(a in 0u64..1u64 << 40, b in 0u64..1u64 << 40) {
            for f in [SetIndexFunction::Linear, SetIndexFunction::XorHash] {
                let (na, nb) = (block_addr(a), block_addr(b));
                if na != nb {
                    let key_a = (f.tag(na, 64, LINE_SIZE), f.set_index(na, 64, LINE_SIZE));
                    let key_b = (f.tag(nb, 64, LINE_SIZE), f.set_index(nb, 64, LINE_SIZE));
                    prop_assert_ne!(key_a, key_b);
                }
            }
        }

        /// The set index is always in range.
        #[test]
        fn set_index_in_range(addr in any::<u64>(), sets_log2 in 1u32..12) {
            let num_sets = 1usize << sets_log2;
            for f in [SetIndexFunction::Linear, SetIndexFunction::XorHash] {
                prop_assert!(f.set_index(addr, num_sets, LINE_SIZE) < num_sets);
            }
        }

        /// All addresses within one block map to the same set.
        #[test]
        fn same_block_same_set(base in 0u64..1u64 << 40, off in 0u64..LINE_SIZE) {
            let base = block_addr(base);
            for f in [SetIndexFunction::Linear, SetIndexFunction::XorHash] {
                prop_assert_eq!(
                    f.set_index(base, 32, LINE_SIZE),
                    f.set_index(base + off, 32, LINE_SIZE)
                );
            }
        }
    }
}
