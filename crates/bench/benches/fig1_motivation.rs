//! Bench regenerating Fig. 1: Backprop inter-warp interference (1a) and the
//! Best-SWL vs CCWS comparison (1b).

use ciao_harness::experiments::fig1;
use ciao_harness::runner::{RunScale, Runner};
use ciao_harness::schedulers::SchedulerKind;
use ciao_workloads::Benchmark;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig1(c: &mut Criterion) {
    let runner = Runner::new(RunScale::Tiny);
    let mut group = c.benchmark_group("fig1_motivation");
    group.sample_size(10);
    group.bench_function("backprop/GTO_interference", |b| {
        b.iter(|| runner.run_one(Benchmark::Backprop, SchedulerKind::Gto).interference.total())
    });
    group.bench_function("backprop/BestSWL", |b| {
        b.iter(|| runner.record(Benchmark::Backprop, SchedulerKind::BestSwl).ipc)
    });
    group.bench_function("backprop/CCWS", |b| {
        b.iter(|| runner.record(Benchmark::Backprop, SchedulerKind::Ccws).ipc)
    });
    group.finish();

    let result = fig1::run(&Runner::new(RunScale::Quick), Benchmark::Backprop);
    println!("\n{}", fig1::render(&result));
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
