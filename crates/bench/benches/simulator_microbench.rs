//! Microbenchmarks of the substrate itself: cache access throughput, VTA
//! updates, DRAM timing, shared-memory-cache lookups and end-to-end simulator
//! cycles per second. These are not paper figures; they document the cost of
//! the reproduction infrastructure.

use ciao_core::SharedMemCache;
use ciao_schedulers::vta::{Vta, VtaConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gpu_mem::cache::{CacheConfig, SetAssocCache};
use gpu_mem::dram::{Dram, DramConfig};
use gpu_sim::redirect::RedirectCache;

fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");

    group.bench_function("l1d_access", |b| {
        let mut cache = SetAssocCache::new(CacheConfig::l1d_gtx480());
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(cache.access((i * 128) % (1 << 20), (i % 48) as u32, false))
        })
    });

    group.bench_function("vta_record_and_check", |b| {
        let mut vta = Vta::new(VtaConfig::ciao());
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            vta.record_eviction((i % 48) as u32, (i * 128) % (1 << 16), ((i + 1) % 48) as u32);
            black_box(vta.check_miss((i % 48) as u32, (i * 128) % (1 << 16)))
        })
    });

    group.bench_function("dram_access", |b| {
        let mut dram = Dram::new(DramConfig::gtx480());
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(dram.access((i * 128) % (1 << 24), 128, i))
        })
    });

    group.bench_function("shmem_cache_lookup_fill", |b| {
        let mut cache = SharedMemCache::gtx480();
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            let addr = (i * 128) % (1 << 18);
            if let gpu_sim::redirect::RedirectLookup::Miss =
                cache.lookup(addr, (i % 48) as u32, false)
            {
                cache.fill(addr, (i % 48) as u32);
            }
            black_box(cache.hits())
        })
    });

    group.finish();

    let mut end_to_end = c.benchmark_group("end_to_end");
    end_to_end.sample_size(10);
    end_to_end.bench_function("syrk_gto_tiny", |b| {
        let runner = ciao_harness::runner::Runner::new(ciao_harness::runner::RunScale::Tiny);
        b.iter(|| {
            runner
                .record(
                    ciao_workloads::Benchmark::Syrk,
                    ciao_harness::schedulers::SchedulerKind::Gto,
                )
                .cycles
        })
    });
    end_to_end.finish();
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
