//! Bench regenerating Fig. 12: L1D configuration variants and doubled DRAM
//! bandwidth.

use ciao_harness::experiments::fig12;
use ciao_harness::runner::{RunScale, Runner};
use ciao_harness::schedulers::SchedulerKind;
use ciao_workloads::Benchmark;
use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::GpuConfig;

fn bench_fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_configs");
    group.sample_size(10);
    let configs: [(&str, GpuConfig); 3] = [
        ("baseline", GpuConfig::gtx480()),
        ("cap48k", GpuConfig::gtx480_cap()),
        ("8way", GpuConfig::gtx480_8way()),
    ];
    for (label, cfg) in configs {
        let runner = Runner::new(RunScale::Tiny).with_config(cfg);
        group.bench_function(format!("syrk/GTO_{label}"), |b| {
            b.iter(|| runner.record(Benchmark::Syrk, SchedulerKind::Gto).ipc)
        });
    }
    group.finish();

    let result = fig12::run(
        &Runner::new(RunScale::Quick),
        &[Benchmark::Atax, Benchmark::Syrk, Benchmark::Gesummv, Benchmark::Kmn],
    );
    println!("\n{}", fig12::render(&result));
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
