//! Bench regenerating the §V-F overhead analysis.

use ciao_core::OverheadModel;
use ciao_harness::experiments::overhead;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("overhead_analysis");
    group.bench_function("report", |b| b.iter(|| OverheadModel::default().report()));
    group.finish();

    println!("\n{}", overhead::render(&overhead::run()));
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
