//! Bench regenerating Fig. 10: SYRK (SWS) and KMN (LWS) under CIAO-T/P/C.

use ciao_harness::experiments::fig10;
use ciao_harness::runner::{RunScale, Runner};
use ciao_workloads::Benchmark;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig10(c: &mut Criterion) {
    let runner = Runner::new(RunScale::Tiny);
    let mut group = c.benchmark_group("fig10_working_set");
    group.sample_size(10);
    for sched in fig10::fig10_schedulers() {
        for bench in [Benchmark::Syrk, Benchmark::Kmn] {
            group.bench_function(format!("{}/{}", bench.name(), sched.label()), |b| {
                b.iter(|| runner.record(bench, sched).ipc)
            });
        }
    }
    group.finish();

    let result = fig10::run(
        &Runner::new(RunScale::Quick),
        &fig10::fig10_benchmarks(),
        &fig10::fig10_schedulers(),
    );
    let text = fig10::render(&result);
    for block in text.split("==").filter(|b| b.contains("overall IPC")) {
        println!("=={block}");
    }
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
