//! Bench regenerating Fig. 11: sensitivity of CIAO-C to epoch length and
//! high-cutoff threshold.

use ciao_core::CiaoParams;
use ciao_harness::experiments::fig11;
use ciao_harness::runner::{RunScale, Runner};
use ciao_harness::schedulers::SchedulerKind;
use ciao_workloads::Benchmark;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_sensitivity");
    group.sample_size(10);
    for epoch in fig11::EPOCHS {
        let runner =
            Runner::new(RunScale::Tiny).with_params(CiaoParams::default().with_high_epoch(epoch));
        group.bench_function(format!("syrk/epoch_{epoch}"), |b| {
            b.iter(|| runner.record(Benchmark::Syrk, SchedulerKind::CiaoC).ipc)
        });
    }
    group.finish();

    let result = fig11::run(
        &Runner::new(RunScale::Quick),
        &[Benchmark::Atax, Benchmark::Syrk, Benchmark::Gesummv],
    );
    println!("\n{}", fig11::render(&result));
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
