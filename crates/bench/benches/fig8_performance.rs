//! Bench regenerating Fig. 8: IPC of the seven schedulers normalised to GTO,
//! plus per-class geometric means and shared-memory utilisation.
//!
//! Criterion times a representative subset (one benchmark per class under GTO
//! and CIAO-C); the full figure is emitted once at the end of the run so
//! `cargo bench` output contains the reproduced table.

use ciao_harness::experiments::fig8;
use ciao_harness::runner::{RunScale, Runner};
use ciao_harness::schedulers::SchedulerKind;
use ciao_workloads::Benchmark;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig8(c: &mut Criterion) {
    let runner = Runner::new(RunScale::Tiny);
    let mut group = c.benchmark_group("fig8_performance");
    group.sample_size(10);
    for bench in [Benchmark::Atax, Benchmark::Syrk, Benchmark::Backprop] {
        for sched in [SchedulerKind::Gto, SchedulerKind::CiaoC] {
            group.bench_function(format!("{}/{}", bench.name(), sched.label()), |b| {
                b.iter(|| runner.record(bench, sched).ipc)
            });
        }
    }
    group.finish();

    // Emit the reproduced figure (quick scale) once per bench invocation.
    let report_runner = Runner::new(RunScale::Quick);
    let benchmarks = [
        Benchmark::Atax,
        Benchmark::Kmn,
        Benchmark::Syrk,
        Benchmark::Gesummv,
        Benchmark::Backprop,
        Benchmark::Nn,
    ];
    let result = fig8::run(&report_runner, &benchmarks, &SchedulerKind::all());
    println!("\n{}", fig8::render(&result));
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
