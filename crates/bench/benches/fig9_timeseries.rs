//! Bench regenerating Fig. 9: ATAX and Backprop over time under Best-SWL,
//! CCWS and CIAO-T.

use ciao_harness::experiments::fig9;
use ciao_harness::runner::{RunScale, Runner};
use ciao_workloads::Benchmark;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig9(c: &mut Criterion) {
    let runner = Runner::new(RunScale::Tiny);
    let mut group = c.benchmark_group("fig9_timeseries");
    group.sample_size(10);
    for sched in fig9::fig9_schedulers() {
        group.bench_function(format!("atax/{}", sched.label()), |b| {
            b.iter(|| runner.record(Benchmark::Atax, sched).ipc)
        });
    }
    group.finish();

    let result = fig9::run(
        &Runner::new(RunScale::Quick),
        &fig9::fig9_benchmarks(),
        &fig9::fig9_schedulers(),
    );
    // The per-sample table is long; print only the overall-IPC summaries here.
    let text = fig9::render("Fig. 9", &result);
    for block in text.split("==").filter(|b| b.contains("overall IPC")) {
        println!("=={block}");
    }
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
