//! Bench regenerating Fig. 4: non-uniform interference characterisation.

use ciao_harness::experiments::fig4;
use ciao_harness::runner::{RunScale, Runner};
use ciao_harness::schedulers::SchedulerKind;
use ciao_workloads::Benchmark;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig4(c: &mut Criterion) {
    let runner = Runner::new(RunScale::Tiny);
    let mut group = c.benchmark_group("fig4_interference");
    group.sample_size(10);
    group.bench_function("kmn/interference_matrix", |b| {
        b.iter(|| runner.run_one(Benchmark::Kmn, SchedulerKind::Gto).interference.total())
    });
    group.finish();

    let result = fig4::run(
        &Runner::new(RunScale::Quick),
        Benchmark::Kmn,
        &[Benchmark::Kmn, Benchmark::Atax, Benchmark::Syrk, Benchmark::Gesummv],
    );
    println!("\n{}", fig4::render(&result));
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
