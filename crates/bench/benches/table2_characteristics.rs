//! Bench regenerating Table II: benchmark characteristics measured on the
//! synthetic workloads vs the paper's reported values.

use ciao_harness::experiments::table2;
use ciao_harness::runner::{RunScale, Runner};
use ciao_harness::schedulers::SchedulerKind;
use ciao_workloads::Benchmark;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table2(c: &mut Criterion) {
    let runner = Runner::new(RunScale::Tiny);
    let mut group = c.benchmark_group("table2_characteristics");
    group.sample_size(10);
    group.bench_function("characterise/GESUMMV", |b| {
        b.iter(|| runner.record(Benchmark::Gesummv, SchedulerKind::Gto).apki)
    });
    group.bench_function("characterise/Hotspot", |b| {
        b.iter(|| runner.record(Benchmark::Hotspot, SchedulerKind::Gto).apki)
    });
    group.finish();

    let result = table2::run(&Runner::new(RunScale::Quick), &Benchmark::all());
    println!("\n{}", table2::render(&result));
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
