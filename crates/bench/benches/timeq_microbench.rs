//! Microbenchmarks of [`gpu_sim::TimeQueue`], the min-heap at the heart of
//! the event-driven timing core. Not a paper figure: these document the cost
//! of the event engine's scheduling primitives at the unit counts the
//! simulator actually runs — 15 units (the paper's GTX 480 chip), 64 and 128
//! (the large-SM capacity points).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gpu_sim::TimeQueue;

/// Unit counts matching the chip configurations the harness simulates.
const UNIT_COUNTS: [usize; 3] = [15, 64, 128];

fn bench_timeq(c: &mut Criterion) {
    let mut group = c.benchmark_group("timeq");

    // Steady-state schedule + pop_next churn: every iteration pops the due
    // unit and reschedules it a pseudo-random distance ahead — the event
    // loop's boundary pattern with all units busy.
    for units in UNIT_COUNTS {
        group.bench_function(format!("schedule_pop_{units}u"), |b| {
            let mut q = TimeQueue::new(units);
            for u in 0..units {
                q.schedule(u, u as u64);
            }
            let mut i = 0u64;
            b.iter(|| {
                let (t, u) = q.pop_next().expect("queue stays full");
                i = i.wrapping_add(1);
                q.schedule(u, t + 1 + (i.wrapping_mul(2654435761) % 97));
                black_box((t, u))
            })
        });
    }

    // Lazy-invalidation churn: each iteration reschedules a unit several
    // times before popping, leaving stale heap nodes for skim/pop to
    // discard — the reply-delivery `schedule_min` pattern under load.
    for units in UNIT_COUNTS {
        group.bench_function(format!("reschedule_churn_{units}u"), |b| {
            let mut q = TimeQueue::new(units);
            for u in 0..units {
                q.schedule(u, u as u64);
            }
            let mut i = 0u64;
            b.iter(|| {
                let (t, u) = q.pop_next().expect("queue stays full");
                i = i.wrapping_add(1);
                // Three supersessions per pop: schedule far, pull forward
                // twice. Only the last entry stays live.
                q.schedule(u, t + 1000);
                q.schedule_min(u, t + 100 + (i % 31));
                q.schedule_min(u, t + 1 + (i.wrapping_mul(2654435761) % 97));
                black_box((t, u))
            })
        });
    }

    // Horizon scans: pop_due draining a mostly-parked queue, the per-boundary
    // pattern of the event loop when few SMs are due (the common case that
    // makes parking pay).
    for units in UNIT_COUNTS {
        group.bench_function(format!("pop_due_sparse_{units}u"), |b| {
            let mut now = 0u64;
            b.iter(|| {
                let mut q = TimeQueue::new(units);
                // One unit in eight is due this boundary; the rest park far
                // in the future.
                for u in 0..units {
                    q.schedule(u, if u % 8 == 0 { now + 1 } else { now + 1_000_000 });
                }
                now += 64;
                let mut popped = 0usize;
                while let Some((t, u)) = q.pop_due(now) {
                    popped += 1;
                    black_box((t, u));
                }
                black_box(popped)
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_timeq);
criterion_main!(benches);
