//! Criterion benchmark crate for the CIAO reproduction (see `benches/`).
//!
//! The library target is intentionally empty: every benchmark lives in
//! `benches/*.rs` and reuses the experiment definitions from `ciao-harness`.
