//! # gpu-sim — cycle-approximate GPU SM simulator
//!
//! A trace-driven, cycle-approximate model of a Fermi-class GPU streaming
//! multiprocessor (SM), built on the memory-hierarchy substrate of `gpu-mem`.
//! It is the substrate standing in for GPGPU-Sim 3.2.2 in this reproduction
//! of the CIAO paper (IPDPS 2018): the experiments of the paper depend on
//! which warps' requests reach the L1D, in what order, where the misses go,
//! and how long the warps stall — all of which this simulator models — rather
//! than on the exact micro-operations of the SIMT pipeline.
//!
//! Main pieces:
//!
//! * [`config`] — the Table I machine configuration (GTX 480-like) and its
//!   Fig. 12 variants.
//! * [`trace`] — warp-level operation streams ([`trace::WarpOp`]) produced by
//!   workload generators (`ciao-workloads`) through the
//!   [`trace::WarpProgram`] trait.
//! * [`coalescer`] — lane addresses → 128-byte block transactions.
//! * [`warp`], [`kernel`] — warp/CTA/kernel state machines and launch rules.
//! * [`scheduler`] — the [`scheduler::WarpScheduler`] policy interface plus
//!   the baseline GTO and loose-round-robin schedulers. CCWS, Best-SWL,
//!   statPCAL (crate `ciao-schedulers`) and CIAO-T/P/C (crate `ciao-core`)
//!   implement the same interface.
//! * [`redirect`] — the [`redirect::RedirectCache`] interface through which
//!   CIAO's shared-memory-as-cache plugs into the SM datapath.
//! * [`sm`] — the per-cycle SM model: issue, scoreboarding, L1D/MSHR/L2/DRAM
//!   traversal, barriers, CTA launch/retire.
//! * [`dispatch`] — multi-tenant CTA dispatch: kernel streams with dynamic
//!   arrival cycles, the `Exclusive` / `SpatialPartition` /
//!   `SharedRoundRobin` static SM partitioning policies, the adaptive
//!   `InterferenceAware` policy ([`dispatch::AdaptiveDispatcher`], the
//!   chip-level analogue of CIAO-T), and the chip-level
//!   [`dispatch::KernelQueue`].
//! * [`gpu`] — the multi-SM chip engine: per-SM crossbar/memory ports and
//!   the deterministic barrier-synchronised epoch loop driving the SMs in
//!   parallel against a shared banked L2/DRAM backend with per-tenant
//!   attribution.
//! * [`stats`] — counters, per-SM → chip reduction, per-tenant counters and
//!   the STP/ANTT co-execution metrics, time series (Figs. 9/10) and the
//!   inter-warp interference matrix (Figs. 1a/4a).
//! * [`event`], [`timeq`] — the timing backends: the [`event::TimingBackend`]
//!   strategy interface over the cycle-stepping epoch oracle and the
//!   event-driven core (next-event advancement ordered by a
//!   [`timeq::TimeQueue`], bulk idle-cycle skipping), selectable by
//!   [`event::BackendKind`] and bit-identical to each other.
//! * [`simulator`] — one-call driver: describe a run with a
//!   [`simulator::SimRequest`] (streams, arrivals, policy, SM count, timing
//!   backend) and execute it with [`simulator::Simulator::execute`] to get a
//!   [`simulator::SimResult`].

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod coalescer;
pub mod config;
pub mod dispatch;
pub mod event;
pub mod gpu;
pub mod kernel;
pub mod redirect;
pub mod scheduler;
pub mod simulator;
pub mod sm;
pub mod stats;
pub mod timeq;
pub mod trace;
pub mod warp;

pub use coalescer::coalesce;
pub use config::GpuConfig;
pub use dispatch::{
    dispatch_round_robin, spatial_sm_sets, AdaptiveDispatcher, CtaWork, DispatchPolicy,
    KernelQueue, KernelStream, LatencyClass, QosSpec, TenantSignal,
};
pub use event::{BackendKind, EpochBackend, EventBackend, TimingBackend};
pub use gpu::{Gpu, MemRequest, MemoryPort, SmUnit};
pub use kernel::{Kernel, KernelInfo, OffsetKernel};
pub use redirect::{RedirectCache, RedirectLookup};
pub use scheduler::{
    CacheEvent, CacheEventOutcome, CacheKind, GtoScheduler, LrrScheduler, MemRoute, SchedulerCtx,
    SchedulerMetrics, WarpScheduler,
};
pub use simulator::{SimRequest, SimResult, Simulator, TenantResult, SCHEMA_VERSION};
pub use sm::{ResponseEvent, Sm};
pub use stats::{
    avg_normalized_turnaround, system_throughput, DispatchAction, DispatchDecision, DispatchLog,
    DispatchSummary, DispatchTenantSummary, InterferenceMatrix, SmImbalance, SmStats, TenantClass,
    TenantStats, TimeSeries, TimeSeriesPoint,
};
pub use timeq::TimeQueue;
pub use trace::{MemPattern, MemSpace, VecProgram, WarpOp, WarpProgram};
pub use warp::{Warp, WarpState};

/// Re-export of the global address type.
pub use gpu_mem::Addr;
/// Re-export of the CTA identifier type.
pub use gpu_mem::CtaId;
/// Re-export of the cycle type used across the simulator.
pub use gpu_mem::Cycle;
/// Re-export of the warp identifier type.
pub use gpu_mem::WarpId;
/// Re-export of the shared crossbar-fabric statistics carried by
/// [`SimResult`].
pub use gpu_mem::{FabricDirectionStats, FabricStats};
/// Re-export of the observability surface consumed through
/// [`simulator::SimRequest::obs`] / [`simulator::Simulator::execute_observed`]
/// (levels, reports, and the pieces needed to post-process them).
pub use sim_obs::{MetricsRegistry, ObsLevel, ObsReport, PhaseProfiler, TraceEvent};
