//! Machine configuration (Table I of the paper) and its evaluation variants.

use gpu_mem::cache::CacheConfig;
use gpu_mem::l2::PartitionConfig;
use gpu_mem::shared_memory::SharedMemoryConfig;
use gpu_mem::Cycle;
use serde::{Deserialize, Serialize};

/// Full configuration of the simulated GPU (one SM plus its slice of the
/// memory system).
///
/// Defaults mirror Table I: 15 SMs with up to 1536 threads (48 warps of 32
/// threads) each, a 16 KB 4-way L1D with 128-byte lines, 48 KB of shared
/// memory with 32 banks, a 768 KB 8-way L2, and GDDR5 DRAM with 16 banks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Number of SMs on the chip (15 on the GTX 480). A single-SM request
    /// models one SM with a per-SM slice of memory bandwidth (the legacy
    /// per-SM-IPC × `num_sms` extrapolation); multi-SM requests instantiate
    /// this many [`crate::Sm`] engines against a shared banked L2/DRAM
    /// backend and model inter-SM contention directly.
    pub num_sms: usize,
    /// Number of address-interleaved banks of the shared chip L2/DRAM backend
    /// used by multi-SM runs. Defaults to 6 — the GTX 480 has six 64-bit
    /// GDDR5 channels, i.e. six L2-slice + DRAM-channel partitions. The
    /// engine clamps the bank count to one per two SMs (the GTX 480's
    /// SM-to-partition ratio), so small chips keep sensibly wide per-channel
    /// buses. Single-SM runs ignore it entirely (the SM owns an unbanked
    /// private partition, which is what keeps a 1-SM chip bit-identical to
    /// the legacy path).
    pub l2_banks: usize,
    /// Number of cycles every SM advances per barrier-synchronised epoch in
    /// multi-SM runs. The engine clamps this to *half* the minimum SM→L2
    /// round trip (see [`GpuConfig::effective_epoch_cycles`]) so that the
    /// barrier service of one epoch's requests can overlap the next epoch's
    /// parallel SM phase: every response computed while epoch `k+1` runs
    /// still completes at or after the *following* epoch's start. Results are
    /// deterministic and independent of worker-thread count either way.
    pub epoch_cycles: Cycle,
    /// Aggregate chip-wide crossbar bandwidth *per direction* (SM→L2
    /// requests, L2→SM replies) in bytes per cycle — the shared-fabric budget
    /// concurrent SMs queue against once past their private injection ports.
    /// Default 480 = 15 SMs × 32 B/cycle/SM (Table I aggregate).
    pub xbar_chip_bytes_per_cycle: f64,
    /// Worker threads for the barrier-phase bank-sharded memory service
    /// (`0` = auto-size from host parallelism). Purely a wall-clock knob:
    /// results are bit-identical for every value.
    pub service_threads: usize,
    /// Maximum number of late-arriving requests carried across an epoch
    /// boundary by the cross-epoch reorder window (requests whose
    /// interconnect arrival lands beyond the barrier's merge horizon are held
    /// so they interleave with the next epoch's batch in true arrival order).
    /// Overflow beyond the bound falls back to batch-major service.
    pub reorder_window: usize,
    /// Maximum resident warps per SM (1536 threads / 32 lanes = 48).
    pub max_warps_per_sm: usize,
    /// Threads per warp.
    pub warp_size: usize,
    /// L1D cache configuration.
    pub l1d: CacheConfig,
    /// Shared-memory scratchpad configuration.
    pub shared_mem: SharedMemoryConfig,
    /// Memory partition (L2 + DRAM) configuration.
    pub partition: PartitionConfig,
    /// Number of L1D MSHR entries.
    pub mshr_entries: usize,
    /// Maximum requests merged per MSHR entry.
    pub mshr_merge: usize,
    /// SM↔L2 interconnect latency in cycles.
    pub interconnect_latency: Cycle,
    /// SM↔L2 interconnect bandwidth in bytes per cycle.
    pub interconnect_bytes_per_cycle: f64,
    /// Response-queue capacity (entries).
    pub response_queue_entries: usize,
    /// Time-series sampling interval, in dynamic instructions (the x-axis of
    /// Figs. 9 and 10 is instruction count).
    pub sample_interval_insts: u64,
    /// Hard cap on simulated dynamic instructions (`None` = run to completion).
    pub max_instructions: Option<u64>,
    /// Hard cap on simulated cycles (`None` = run to completion).
    pub max_cycles: Option<u64>,
}

impl GpuConfig {
    /// The baseline GTX 480-like configuration of Table I (with the XOR
    /// set-index hashing enhancement of §V-A).
    pub fn gtx480() -> Self {
        GpuConfig {
            num_sms: 15,
            l2_banks: 6,
            epoch_cycles: 64,
            xbar_chip_bytes_per_cycle: 480.0,
            service_threads: 0,
            reorder_window: 4096,
            max_warps_per_sm: 48,
            warp_size: 32,
            l1d: CacheConfig::l1d_gtx480(),
            shared_mem: SharedMemoryConfig::gtx480(),
            partition: PartitionConfig::gtx480(),
            mshr_entries: 32,
            mshr_merge: 8,
            interconnect_latency: 20,
            interconnect_bytes_per_cycle: 32.0,
            response_queue_entries: 64,
            sample_interval_insts: 10_000,
            max_instructions: None,
            max_cycles: Some(50_000_000),
        }
    }

    /// `GTO-cap` of Fig. 12a: L1D grown to 48 KB, shared memory shrunk to 16 KB.
    pub fn gtx480_cap() -> Self {
        GpuConfig {
            l1d: CacheConfig::l1d_48k(),
            shared_mem: SharedMemoryConfig::gtx480_small(),
            ..Self::gtx480()
        }
    }

    /// `GTO-8way` of Fig. 12a: L1D associativity raised to 8.
    pub fn gtx480_8way() -> Self {
        GpuConfig { l1d: CacheConfig::l1d_8way(), ..Self::gtx480() }
    }

    /// The doubled-DRAM-bandwidth machine of Fig. 12b (177 → 340 GB/s).
    pub fn gtx480_2x_bandwidth() -> Self {
        GpuConfig { partition: PartitionConfig::gtx480_2x_bandwidth(), ..Self::gtx480() }
    }

    /// Maximum number of resident threads per SM.
    pub fn max_threads_per_sm(&self) -> usize {
        self.max_warps_per_sm * self.warp_size
    }

    /// Returns a copy with the dynamic-instruction cap set, which the
    /// experiment harness uses to bound simulation time.
    pub fn with_max_instructions(mut self, n: u64) -> Self {
        self.max_instructions = Some(n);
        self
    }

    /// Returns a copy with the time-series sampling interval set.
    pub fn with_sample_interval(mut self, insts: u64) -> Self {
        self.sample_interval_insts = insts.max(1);
        self
    }

    /// Returns a copy with the number of simulated SMs set (the `--sms N`
    /// axis of the harness).
    pub fn with_num_sms(mut self, n: usize) -> Self {
        self.num_sms = n.max(1);
        self
    }

    /// Returns a copy with the shared-L2 bank count set.
    pub fn with_l2_banks(mut self, banks: usize) -> Self {
        self.l2_banks = banks.max(1);
        self
    }

    /// The epoch length actually used by the multi-SM engine: the configured
    /// [`GpuConfig::epoch_cycles`] clamped to *half* the minimum SM→L2 round
    /// trip. The round trip floors at the cheaper of the L2-hit path
    /// (`l2_latency`) and the L2-bypass path (`dram.base_latency + t_cl`), on
    /// top of the interconnect traversal. Halving it is what lets the engine
    /// pipeline: requests drained at epoch boundary `k` are served *while*
    /// epoch `k+1` runs and delivered at boundary `k+1`, and any response
    /// still completes at or after epoch `k+2`'s start — never in an SM's
    /// past.
    pub fn effective_epoch_cycles(&self) -> Cycle {
        let min_service = self
            .partition
            .l2_latency
            .min(self.partition.dram.base_latency + self.partition.dram.t_cl);
        let round_trip = self.interconnect_latency + min_service;
        self.epoch_cycles.clamp(1, (round_trip / 2).max(1))
    }

    /// The number of worker threads the epoch-barrier bank service uses:
    /// [`GpuConfig::service_threads`], or an auto-sized value from host
    /// parallelism when it is `0`. Purely a wall-clock knob — service results
    /// are bit-identical for every value.
    pub fn effective_service_threads(&self) -> usize {
        if self.service_threads > 0 {
            self.service_threads
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
        }
    }

    /// Returns a copy with the barrier-service worker-thread count set.
    pub fn with_service_threads(mut self, threads: usize) -> Self {
        self.service_threads = threads;
        self
    }

    /// Returns a copy with the cross-epoch reorder-window bound set.
    pub fn with_reorder_window(mut self, window: usize) -> Self {
        self.reorder_window = window;
        self
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::gtx480()
    }
}

/// Renders the configuration as the rows of Table I (used by the harness's
/// `table1` command so the reproduced configuration is auditable).
pub fn table1_rows(cfg: &GpuConfig) -> Vec<(String, String)> {
    vec![
        (
            "# of SMs/threads".into(),
            format!("{}, max {} per SM", cfg.num_sms, cfg.max_threads_per_sm()),
        ),
        (
            "L1D cache".into(),
            format!(
                "{}KB w/ {}B lines, {} ways, write no-allocate, {}-cycle latency and LRU",
                cfg.l1d.size_bytes / 1024,
                cfg.l1d.line_size,
                cfg.l1d.associativity,
                cfg.l1d.latency
            ),
        ),
        (
            "Shared memory".into(),
            format!(
                "{}KB, {}-cycle latency and {} banks",
                cfg.shared_mem.size_bytes / 1024,
                cfg.shared_mem.latency,
                cfg.shared_mem.num_banks
            ),
        ),
        (
            "L2 cache".into(),
            format!(
                "{}KB w/ {}B lines, {} ways, write allocation, write-back and LRU",
                cfg.partition.l2.size_bytes / 1024,
                cfg.partition.l2.line_size,
                cfg.partition.l2.associativity
            ),
        ),
        (
            "DRAM".into(),
            format!(
                "GDDR5 w/ {} banks, tCL={}, tRCD={}, and tRAS={}",
                cfg.partition.dram.num_banks,
                cfg.partition.dram.t_cl,
                cfg.partition.dram.t_rcd,
                cfg.partition.dram.t_ras
            ),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_baseline_values() {
        let c = GpuConfig::gtx480();
        assert_eq!(c.num_sms, 15);
        assert_eq!(c.max_threads_per_sm(), 1536);
        assert_eq!(c.l1d.size_bytes, 16 * 1024);
        assert_eq!(c.l1d.associativity, 4);
        assert_eq!(c.shared_mem.size_bytes, 48 * 1024);
        assert_eq!(c.partition.l2.size_bytes, 768 * 1024);
        assert_eq!(c.partition.dram.num_banks, 16);
        assert_eq!(c.partition.dram.t_cl, 12);
        assert_eq!(c.partition.dram.t_rcd, 12);
        assert_eq!(c.partition.dram.t_ras, 28);
    }

    #[test]
    fn fig12_variants() {
        let cap = GpuConfig::gtx480_cap();
        assert_eq!(cap.l1d.size_bytes, 48 * 1024);
        assert_eq!(cap.shared_mem.size_bytes, 16 * 1024);
        let w8 = GpuConfig::gtx480_8way();
        assert_eq!(w8.l1d.associativity, 8);
        assert_eq!(w8.l1d.size_bytes, 16 * 1024);
        let bw = GpuConfig::gtx480_2x_bandwidth();
        assert!(
            bw.partition.dram.bytes_per_cycle
                > GpuConfig::gtx480().partition.dram.bytes_per_cycle * 1.5
        );
    }

    #[test]
    fn builders_apply() {
        let c = GpuConfig::gtx480()
            .with_max_instructions(1000)
            .with_sample_interval(0)
            .with_num_sms(4)
            .with_l2_banks(6);
        assert_eq!(c.max_instructions, Some(1000));
        assert_eq!(c.sample_interval_insts, 1);
        assert_eq!(c.num_sms, 4);
        assert_eq!(c.l2_banks, 6);
        assert_eq!(GpuConfig::gtx480().with_num_sms(0).num_sms, 1);
    }

    #[test]
    fn epoch_clamped_to_half_the_round_trip() {
        let c = GpuConfig::gtx480();
        // Default 64 exceeds half the (20 + 90)-cycle round trip, so the
        // pipelined engine runs 55-cycle epochs.
        assert_eq!(c.effective_epoch_cycles(), 55);
        let mut short = c.clone();
        short.epoch_cycles = 40;
        assert_eq!(short.effective_epoch_cycles(), 40, "short epochs pass through unclamped");
        // A bypass path cheaper than the L2 hit tightens the clamp: responses
        // computed one epoch ahead must never land in an SM's past.
        let mut cheap_bypass = c.clone();
        cheap_bypass.partition.dram.base_latency = 10;
        cheap_bypass.partition.dram.t_cl = 4;
        assert_eq!(cheap_bypass.effective_epoch_cycles(), (20 + 14) / 2);
        let mut zero = c;
        zero.epoch_cycles = 0;
        assert_eq!(zero.effective_epoch_cycles(), 1);
    }

    #[test]
    fn service_threads_auto_sizes_but_never_zero() {
        let auto = GpuConfig::gtx480();
        assert!(auto.effective_service_threads() >= 1);
        assert_eq!(auto.with_service_threads(3).effective_service_threads(), 3);
        assert_eq!(GpuConfig::gtx480().with_reorder_window(16).reorder_window, 16);
    }

    #[test]
    fn table1_rows_render() {
        let rows = table1_rows(&GpuConfig::gtx480());
        assert_eq!(rows.len(), 5);
        assert!(rows[1].1.contains("16KB"));
        assert!(rows[4].1.contains("tCL=12"));
    }
}
