//! Kernel and CTA launch model.
//!
//! A [`Kernel`] describes a grid of CTAs (thread blocks); each CTA contributes
//! a fixed number of warps and may reserve shared memory. The SM launches as
//! many CTAs as fit its warp and shared-memory capacity; when a CTA's warps
//! all finish, the next pending CTA is launched in its place. This is the
//! mechanism behind the varying "number of active warps" curves of Figs. 9
//! and 10 and behind the `Fsmem` (fraction of shared memory used) column of
//! Table II.

use crate::trace::{MemSpace, WarpOp, WarpProgram};
use gpu_mem::{Addr, CtaId};
use std::sync::Arc;

/// Static description of a kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelInfo {
    /// Human-readable benchmark/kernel name.
    pub name: String,
    /// Total number of CTAs in the grid.
    pub num_ctas: usize,
    /// Warps per CTA.
    pub warps_per_cta: usize,
    /// Programmer-allocated shared memory per CTA, in bytes.
    pub shared_mem_per_cta: u32,
}

impl KernelInfo {
    /// Total warps launched by the kernel.
    pub fn total_warps(&self) -> usize {
        self.num_ctas * self.warps_per_cta
    }
}

/// A kernel: static launch geometry plus a factory for per-warp programs.
///
/// Kernels are `Sync` because a multi-SM run shares one kernel across all SM
/// worker threads (each SM builds the programs of the CTAs dispatched to it).
pub trait Kernel: Send + Sync {
    /// Launch geometry and metadata.
    fn info(&self) -> KernelInfo;

    /// Builds the operation stream of warp `warp_in_cta` of CTA `cta`.
    ///
    /// Must be deterministic so that re-simulating under a different
    /// scheduler replays identical traces.
    fn warp_program(&self, cta: CtaId, warp_in_cta: usize) -> Box<dyn WarpProgram>;
}

/// Wraps a kernel, shifting every *global-memory* address its warps issue by
/// a fixed byte offset (wrapping mod 2⁶⁴). Shared-memory accesses, compute
/// and barriers pass through untouched.
///
/// Multi-tenant mixes use one offset per tenant to give co-running kernels
/// disjoint global address spaces: without it, two instances of benchmark
/// suites that hard-code their region bases would alias each other's data in
/// the shared caches, and the "interference" experiments would measure
/// constructive sharing instead (visible as STP above the tenant count).
pub struct OffsetKernel {
    inner: Arc<dyn Kernel>,
    offset: Addr,
}

impl OffsetKernel {
    /// Wraps `inner`, shifting its global addresses by `offset` bytes.
    pub fn new(inner: Arc<dyn Kernel>, offset: Addr) -> Self {
        OffsetKernel { inner, offset }
    }

    /// The configured address offset.
    pub fn offset(&self) -> Addr {
        self.offset
    }
}

impl Kernel for OffsetKernel {
    fn info(&self) -> KernelInfo {
        self.inner.info()
    }

    fn warp_program(&self, cta: CtaId, warp_in_cta: usize) -> Box<dyn WarpProgram> {
        Box::new(OffsetProgram {
            inner: self.inner.warp_program(cta, warp_in_cta),
            offset: self.offset,
        })
    }
}

struct OffsetProgram {
    inner: Box<dyn WarpProgram>,
    offset: Addr,
}

impl WarpProgram for OffsetProgram {
    fn next_op(&mut self) -> Option<WarpOp> {
        let offset = self.offset;
        self.inner.next_op().map(|op| match op {
            WarpOp::Load { space: MemSpace::Global, pattern } => {
                WarpOp::Load { space: MemSpace::Global, pattern: offset_pattern(pattern, offset) }
            }
            WarpOp::Store { space: MemSpace::Global, pattern } => {
                WarpOp::Store { space: MemSpace::Global, pattern: offset_pattern(pattern, offset) }
            }
            other => other,
        })
    }

    fn remaining_hint(&self) -> Option<u64> {
        self.inner.remaining_hint()
    }
}

fn offset_pattern(pattern: crate::trace::MemPattern, offset: Addr) -> crate::trace::MemPattern {
    use crate::trace::MemPattern;
    match pattern {
        MemPattern::Strided { base, stride, lanes } => {
            MemPattern::Strided { base: base.wrapping_add(offset), stride, lanes }
        }
        MemPattern::Scatter(addrs) => {
            MemPattern::Scatter(addrs.into_iter().map(|a| a.wrapping_add(offset)).collect())
        }
    }
}

/// A kernel built from a closure, convenient for tests and examples.
pub struct ClosureKernel<F>
where
    F: Fn(CtaId, usize) -> Box<dyn WarpProgram> + Send + Sync,
{
    info: KernelInfo,
    factory: F,
}

impl<F> ClosureKernel<F>
where
    F: Fn(CtaId, usize) -> Box<dyn WarpProgram> + Send + Sync,
{
    /// Creates a kernel from launch geometry and a warp-program factory.
    pub fn new(info: KernelInfo, factory: F) -> Self {
        ClosureKernel { info, factory }
    }
}

impl<F> Kernel for ClosureKernel<F>
where
    F: Fn(CtaId, usize) -> Box<dyn WarpProgram> + Send + Sync,
{
    fn info(&self) -> KernelInfo {
        self.info.clone()
    }

    fn warp_program(&self, cta: CtaId, warp_in_cta: usize) -> Box<dyn WarpProgram> {
        (self.factory)(cta, warp_in_cta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{VecProgram, WarpOp};

    #[test]
    fn kernel_info_totals() {
        let info = KernelInfo {
            name: "test".into(),
            num_ctas: 6,
            warps_per_cta: 8,
            shared_mem_per_cta: 1024,
        };
        assert_eq!(info.total_warps(), 48);
    }

    #[test]
    fn offset_kernel_shifts_global_addresses_only() {
        let info =
            KernelInfo { name: "o".into(), num_ctas: 1, warps_per_cta: 1, shared_mem_per_cta: 64 };
        let inner: Arc<dyn Kernel> = Arc::new(ClosureKernel::new(info, |_c, _w| {
            Box::new(VecProgram::new(vec![
                WarpOp::coalesced_load(0x1000),
                WarpOp::Load {
                    space: MemSpace::Shared,
                    pattern: crate::trace::MemPattern::Strided { base: 0, stride: 4, lanes: 8 },
                },
                WarpOp::Store {
                    space: MemSpace::Global,
                    pattern: crate::trace::MemPattern::Scatter(vec![10, 20]),
                },
                WarpOp::alu(),
            ]))
        }));
        let wrapped = OffsetKernel::new(Arc::clone(&inner), 1 << 40);
        assert_eq!(wrapped.offset(), 1 << 40);
        assert_eq!(wrapped.info(), inner.info());
        let mut p = wrapped.warp_program(0, 0);
        assert_eq!(p.remaining_hint(), Some(4));
        match p.next_op().unwrap() {
            WarpOp::Load { space: MemSpace::Global, pattern } => {
                assert_eq!(pattern.lane_addresses()[0], 0x1000 + (1u64 << 40));
            }
            other => panic!("expected global load, got {other:?}"),
        }
        // Shared-memory pattern is untouched.
        match p.next_op().unwrap() {
            WarpOp::Load { space: MemSpace::Shared, pattern } => {
                assert_eq!(pattern.lane_addresses()[0], 0);
            }
            other => panic!("expected shared load, got {other:?}"),
        }
        match p.next_op().unwrap() {
            WarpOp::Store { space: MemSpace::Global, pattern } => {
                assert_eq!(pattern.lane_addresses(), vec![10 + (1u64 << 40), 20 + (1u64 << 40)]);
            }
            other => panic!("expected global store, got {other:?}"),
        }
        assert!(matches!(p.next_op().unwrap(), WarpOp::Compute { .. }));
        // Offset 0 is the identity.
        let identity = OffsetKernel::new(inner, 0);
        match identity.warp_program(0, 0).next_op().unwrap() {
            WarpOp::Load { pattern, .. } => assert_eq!(pattern.lane_addresses()[0], 0x1000),
            other => panic!("expected load, got {other:?}"),
        }
    }

    #[test]
    fn closure_kernel_builds_programs() {
        let info =
            KernelInfo { name: "k".into(), num_ctas: 2, warps_per_cta: 1, shared_mem_per_cta: 0 };
        let k = ClosureKernel::new(info.clone(), |cta, _w| {
            Box::new(VecProgram::new(vec![WarpOp::coalesced_load(cta as u64 * 4096)]))
        });
        assert_eq!(k.info(), info);
        let mut p0 = k.warp_program(0, 0);
        let mut p1 = k.warp_program(1, 0);
        match (p0.next_op().unwrap(), p1.next_op().unwrap()) {
            (WarpOp::Load { pattern: a, .. }, WarpOp::Load { pattern: b, .. }) => {
                assert_ne!(a, b, "different CTAs should get different traces");
            }
            _ => panic!("expected loads"),
        }
    }
}
