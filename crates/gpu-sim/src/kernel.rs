//! Kernel and CTA launch model.
//!
//! A [`Kernel`] describes a grid of CTAs (thread blocks); each CTA contributes
//! a fixed number of warps and may reserve shared memory. The SM launches as
//! many CTAs as fit its warp and shared-memory capacity; when a CTA's warps
//! all finish, the next pending CTA is launched in its place. This is the
//! mechanism behind the varying "number of active warps" curves of Figs. 9
//! and 10 and behind the `Fsmem` (fraction of shared memory used) column of
//! Table II.

use crate::trace::WarpProgram;
use gpu_mem::CtaId;

/// Static description of a kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelInfo {
    /// Human-readable benchmark/kernel name.
    pub name: String,
    /// Total number of CTAs in the grid.
    pub num_ctas: usize,
    /// Warps per CTA.
    pub warps_per_cta: usize,
    /// Programmer-allocated shared memory per CTA, in bytes.
    pub shared_mem_per_cta: u32,
}

impl KernelInfo {
    /// Total warps launched by the kernel.
    pub fn total_warps(&self) -> usize {
        self.num_ctas * self.warps_per_cta
    }
}

/// A kernel: static launch geometry plus a factory for per-warp programs.
///
/// Kernels are `Sync` because a multi-SM run shares one kernel across all SM
/// worker threads (each SM builds the programs of the CTAs dispatched to it).
pub trait Kernel: Send + Sync {
    /// Launch geometry and metadata.
    fn info(&self) -> KernelInfo;

    /// Builds the operation stream of warp `warp_in_cta` of CTA `cta`.
    ///
    /// Must be deterministic so that re-simulating under a different
    /// scheduler replays identical traces.
    fn warp_program(&self, cta: CtaId, warp_in_cta: usize) -> Box<dyn WarpProgram>;
}

/// A kernel built from a closure, convenient for tests and examples.
pub struct ClosureKernel<F>
where
    F: Fn(CtaId, usize) -> Box<dyn WarpProgram> + Send + Sync,
{
    info: KernelInfo,
    factory: F,
}

impl<F> ClosureKernel<F>
where
    F: Fn(CtaId, usize) -> Box<dyn WarpProgram> + Send + Sync,
{
    /// Creates a kernel from launch geometry and a warp-program factory.
    pub fn new(info: KernelInfo, factory: F) -> Self {
        ClosureKernel { info, factory }
    }
}

impl<F> Kernel for ClosureKernel<F>
where
    F: Fn(CtaId, usize) -> Box<dyn WarpProgram> + Send + Sync,
{
    fn info(&self) -> KernelInfo {
        self.info.clone()
    }

    fn warp_program(&self, cta: CtaId, warp_in_cta: usize) -> Box<dyn WarpProgram> {
        (self.factory)(cta, warp_in_cta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{VecProgram, WarpOp};

    #[test]
    fn kernel_info_totals() {
        let info = KernelInfo {
            name: "test".into(),
            num_ctas: 6,
            warps_per_cta: 8,
            shared_mem_per_cta: 1024,
        };
        assert_eq!(info.total_warps(), 48);
    }

    #[test]
    fn closure_kernel_builds_programs() {
        let info =
            KernelInfo { name: "k".into(), num_ctas: 2, warps_per_cta: 1, shared_mem_per_cta: 0 };
        let k = ClosureKernel::new(info.clone(), |cta, _w| {
            Box::new(VecProgram::new(vec![WarpOp::coalesced_load(cta as u64 * 4096)]))
        });
        assert_eq!(k.info(), info);
        let mut p0 = k.warp_program(0, 0);
        let mut p1 = k.warp_program(1, 0);
        match (p0.next_op().unwrap(), p1.next_op().unwrap()) {
            (WarpOp::Load { pattern: a, .. }, WarpOp::Load { pattern: b, .. }) => {
                assert_ne!(a, b, "different CTAs should get different traces");
            }
            _ => panic!("expected loads"),
        }
    }
}
