//! One-call simulation driver.
//!
//! Wraps [`Sm`] construction and the run loop, and packages everything the
//! experiment harness needs (aggregate stats, time series, interference
//! matrix, scheduler metrics) into a [`SimResult`].

use crate::config::GpuConfig;
use crate::kernel::Kernel;
use crate::redirect::RedirectCache;
use crate::scheduler::{SchedulerMetrics, WarpScheduler};
use crate::sm::Sm;
use crate::stats::{InterferenceMatrix, SmStats, TimeSeries};
use gpu_mem::Cycle;
use serde::{Deserialize, Serialize};

/// Everything produced by one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// Name of the scheduler that produced this result.
    pub scheduler: String,
    /// Name of the kernel / benchmark simulated.
    pub kernel: String,
    /// Cycles simulated.
    pub cycles: Cycle,
    /// Aggregate SM statistics.
    pub stats: SmStats,
    /// Instruction-indexed time series (Figs. 9, 10).
    pub time_series: TimeSeries,
    /// Inter-warp interference matrix (Figs. 1a, 4a).
    pub interference: InterferenceMatrix,
    /// Scheduler-specific counters at the end of the run.
    pub scheduler_metrics: SchedulerMetrics,
    /// Whether the run ended because it hit an instruction/cycle cap rather
    /// than finishing the kernel.
    pub capped: bool,
}

impl SimResult {
    /// Instructions per cycle of the run.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }

    /// L1D hit rate of the run.
    pub fn l1d_hit_rate(&self) -> f64 {
        self.stats.l1d.hit_rate()
    }
}

/// Builder-style simulation front end.
pub struct Simulator {
    config: GpuConfig,
}

impl Simulator {
    /// Creates a simulator with the given machine configuration.
    pub fn new(config: GpuConfig) -> Self {
        Simulator { config }
    }

    /// The machine configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Runs `kernel` under `scheduler` (and an optional redirect cache) and
    /// returns the collected results.
    pub fn run(
        &self,
        kernel: Box<dyn Kernel>,
        scheduler: Box<dyn WarpScheduler>,
        redirect: Option<Box<dyn RedirectCache>>,
    ) -> SimResult {
        let kernel_name = kernel.info().name.clone();
        let scheduler_name = scheduler.name().to_string();
        let mut sm = Sm::new(self.config.clone(), kernel, scheduler, redirect);
        sm.run();
        let capped = !sm.is_done();
        SimResult {
            scheduler: scheduler_name,
            kernel: kernel_name,
            cycles: sm.cycle(),
            stats: sm.stats().clone(),
            time_series: sm.time_series().clone(),
            interference: sm.interference_matrix().clone(),
            scheduler_metrics: sm.scheduler().metrics(),
            capped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ClosureKernel, KernelInfo};
    use crate::scheduler::{GtoScheduler, LrrScheduler};
    use crate::trace::{VecProgram, WarpOp};

    fn kernel(n_ops: usize) -> Box<dyn Kernel> {
        let info =
            KernelInfo { name: "drv".into(), num_ctas: 2, warps_per_cta: 4, shared_mem_per_cta: 0 };
        Box::new(ClosureKernel::new(info, move |cta, w| {
            let ops = (0..n_ops)
                .map(|i| {
                    WarpOp::coalesced_load(
                        ((cta as u64 * 29 + w as u64 * 7 + i as u64) % 4096) * 128,
                    )
                })
                .collect();
            Box::new(VecProgram::new(ops))
        }))
    }

    #[test]
    fn simulator_produces_result() {
        let sim = Simulator::new(GpuConfig::gtx480().with_sample_interval(20));
        let res = sim.run(kernel(20), Box::new(GtoScheduler::new()), None);
        assert_eq!(res.scheduler, "GTO");
        assert_eq!(res.kernel, "drv");
        assert!(!res.capped);
        assert_eq!(res.stats.instructions, 2 * 4 * 20);
        assert!(res.ipc() > 0.0);
        assert!(res.l1d_hit_rate() >= 0.0 && res.l1d_hit_rate() <= 1.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let sim = Simulator::new(GpuConfig::gtx480());
        let a = sim.run(kernel(30), Box::new(GtoScheduler::new()), None);
        let b = sim.run(kernel(30), Box::new(GtoScheduler::new()), None);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.stats.l1d, b.stats.l1d);
        assert_eq!(a.stats.instructions, b.stats.instructions);
    }

    #[test]
    fn different_schedulers_can_differ() {
        let sim = Simulator::new(GpuConfig::gtx480());
        let a = sim.run(kernel(30), Box::new(GtoScheduler::new()), None);
        let b = sim.run(kernel(30), Box::new(LrrScheduler::new()), None);
        // Same work is executed regardless of order.
        assert_eq!(a.stats.instructions, b.stats.instructions);
        assert_eq!(a.stats.mem_transactions, b.stats.mem_transactions);
    }
}
