//! One-call simulation driver.
//!
//! Wraps [`Sm`] / [`Gpu`] construction and the run loop, and packages
//! everything the experiment harness needs (aggregate stats, per-SM
//! breakdowns, time series, interference matrix, scheduler metrics) into a
//! [`SimResult`]. [`Simulator::run`] is the legacy single-SM entry point;
//! [`Simulator::run_chip`] simulates `config.num_sms` SMs in parallel
//! against the shared banked L2/DRAM backend.

use std::sync::Arc;

use crate::config::GpuConfig;
use crate::gpu::Gpu;
use crate::kernel::Kernel;
use crate::redirect::RedirectCache;
use crate::scheduler::{SchedulerMetrics, WarpScheduler};
use crate::sm::Sm;
use crate::stats::{InterferenceMatrix, SmStats, TimeSeries};
use gpu_mem::interconnect::{Crossbar, CrossbarStats};
use gpu_mem::Cycle;
use serde::{Deserialize, Serialize};

/// Everything produced by one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// Name of the scheduler that produced this result.
    pub scheduler: String,
    /// Name of the kernel / benchmark simulated.
    pub kernel: String,
    /// Cycles simulated.
    pub cycles: Cycle,
    /// Aggregate SM statistics.
    pub stats: SmStats,
    /// Instruction-indexed time series (Figs. 9, 10).
    pub time_series: TimeSeries,
    /// Inter-warp interference matrix (Figs. 1a, 4a).
    pub interference: InterferenceMatrix,
    /// Scheduler-specific counters at the end of the run.
    pub scheduler_metrics: SchedulerMetrics,
    /// Whether the run ended because it hit an instruction/cycle cap rather
    /// than finishing the kernel (on a multi-SM chip: any SM hit a cap).
    pub capped: bool,
    /// Number of SMs simulated (1 for the legacy single-SM path).
    pub num_sms: usize,
    /// Per-SM statistics, indexed by SM; `stats` is their
    /// [`SmStats::reduce`] aggregate.
    pub per_sm: Vec<SmStats>,
    /// SM↔L2 interconnect traffic aggregated over every SM's crossbar port.
    pub interconnect: CrossbarStats,
}

impl SimResult {
    /// Instructions per cycle of the run.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }

    /// L1D hit rate of the run.
    pub fn l1d_hit_rate(&self) -> f64 {
        self.stats.l1d.hit_rate()
    }
}

/// Builder-style simulation front end.
pub struct Simulator {
    config: GpuConfig,
}

impl Simulator {
    /// Creates a simulator with the given machine configuration.
    pub fn new(config: GpuConfig) -> Self {
        Simulator { config }
    }

    /// The machine configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Runs `kernel` under `scheduler` (and an optional redirect cache) on a
    /// single SM with a private memory partition — the legacy configuration
    /// every recorded number in EXPERIMENTS-style baselines comes from — and
    /// returns the collected results.
    pub fn run(
        &self,
        kernel: Box<dyn Kernel>,
        scheduler: Box<dyn WarpScheduler>,
        redirect: Option<Box<dyn RedirectCache>>,
    ) -> SimResult {
        let kernel_name = kernel.info().name.clone();
        let scheduler_name = scheduler.name().to_string();
        let mut sm = Sm::new(self.config.clone(), kernel, scheduler, redirect);
        sm.run();
        let capped = !sm.is_done();
        let stats = sm.stats().clone();
        SimResult {
            scheduler: scheduler_name,
            kernel: kernel_name,
            cycles: sm.cycle(),
            per_sm: vec![stats.clone()],
            stats,
            time_series: sm.time_series().clone(),
            interference: sm.interference_matrix().clone(),
            scheduler_metrics: sm.scheduler().metrics(),
            capped,
            num_sms: 1,
            interconnect: Crossbar::aggregate([sm.interconnect()]),
        }
    }

    /// Runs `kernel` on a chip of `config.num_sms` SMs executing in parallel
    /// against the shared banked L2/DRAM backend. `build_unit` is called once
    /// per SM index to construct that SM's scheduler (and optional redirect
    /// cache) — multi-SM chips need one policy instance per SM because
    /// schedulers carry per-SM state (VTAs, interference lists, throttle
    /// sets) even though results are reported chip-wide.
    ///
    /// With `config.num_sms == 1` this reproduces [`Simulator::run`]
    /// bit-exactly (same engine, private partition, serial loop) — the
    /// correctness anchor for the multi-SM path.
    pub fn run_chip<F>(&self, kernel: Arc<dyn Kernel>, mut build_unit: F) -> SimResult
    where
        F: FnMut(usize) -> crate::gpu::SmUnit,
    {
        let num_sms = self.config.num_sms.max(1);
        let units = (0..num_sms).map(&mut build_unit).collect();
        let mut gpu = Gpu::new(self.config.clone(), kernel, units);
        gpu.run();
        gpu.into_result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ClosureKernel, KernelInfo};
    use crate::scheduler::{GtoScheduler, LrrScheduler};
    use crate::trace::{VecProgram, WarpOp};

    fn kernel(n_ops: usize) -> Box<dyn Kernel> {
        let info =
            KernelInfo { name: "drv".into(), num_ctas: 2, warps_per_cta: 4, shared_mem_per_cta: 0 };
        Box::new(ClosureKernel::new(info, move |cta, w| {
            let ops = (0..n_ops)
                .map(|i| {
                    WarpOp::coalesced_load(
                        ((cta as u64 * 29 + w as u64 * 7 + i as u64) % 4096) * 128,
                    )
                })
                .collect();
            Box::new(VecProgram::new(ops))
        }))
    }

    #[test]
    fn simulator_produces_result() {
        let sim = Simulator::new(GpuConfig::gtx480().with_sample_interval(20));
        let res = sim.run(kernel(20), Box::new(GtoScheduler::new()), None);
        assert_eq!(res.scheduler, "GTO");
        assert_eq!(res.kernel, "drv");
        assert!(!res.capped);
        assert_eq!(res.stats.instructions, 2 * 4 * 20);
        assert!(res.ipc() > 0.0);
        assert!(res.l1d_hit_rate() >= 0.0 && res.l1d_hit_rate() <= 1.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let sim = Simulator::new(GpuConfig::gtx480());
        let a = sim.run(kernel(30), Box::new(GtoScheduler::new()), None);
        let b = sim.run(kernel(30), Box::new(GtoScheduler::new()), None);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.stats.l1d, b.stats.l1d);
        assert_eq!(a.stats.instructions, b.stats.instructions);
    }

    #[test]
    fn different_schedulers_can_differ() {
        let sim = Simulator::new(GpuConfig::gtx480());
        let a = sim.run(kernel(30), Box::new(GtoScheduler::new()), None);
        let b = sim.run(kernel(30), Box::new(LrrScheduler::new()), None);
        // Same work is executed regardless of order.
        assert_eq!(a.stats.instructions, b.stats.instructions);
        assert_eq!(a.stats.mem_transactions, b.stats.mem_transactions);
    }
}
