//! One-call simulation driver.
//!
//! Wraps [`Sm`] / [`Gpu`] construction and the run loop, and packages
//! everything the experiment harness needs (aggregate stats, per-SM
//! breakdowns, time series, interference matrix, scheduler metrics) into a
//! [`SimResult`]. [`Simulator::run`] is the legacy single-SM entry point;
//! [`Simulator::run_chip`] simulates `config.num_sms` SMs in parallel
//! against the shared banked L2/DRAM backend.

use std::sync::Arc;

use crate::config::GpuConfig;
use crate::dispatch::{DispatchPolicy, KernelQueue};
use crate::gpu::Gpu;
use crate::kernel::Kernel;
use crate::redirect::RedirectCache;
use crate::scheduler::{SchedulerMetrics, WarpScheduler};
use crate::sm::Sm;
use crate::stats::{DispatchLog, InterferenceMatrix, SmImbalance, SmStats, TimeSeries};
use gpu_mem::interconnect::{Crossbar, CrossbarStats, FabricStats};
use gpu_mem::{Cycle, TenantId, TenantMemStats};
use serde::{Deserialize, Serialize};

/// One tenant's (kernel stream's) share of a chip run: its own progress
/// counters plus the shared-resource usage attributed to it throughout the
/// memory system. `Σ` over tenants of every counter equals the corresponding
/// chip total.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantResult {
    /// Tenant identity (dense, `0..num_tenants`).
    pub tenant: TenantId,
    /// Name of the tenant's kernel / benchmark.
    pub kernel: String,
    /// Dynamic warp instructions the tenant executed.
    pub instructions: u64,
    /// Chip cycle at which the tenant's last warp finished (its turnaround
    /// time; under the serial `exclusive` policy this includes queueing
    /// behind earlier kernels).
    pub finish_cycle: Cycle,
    /// Whether the tenant was cut short by an instruction/cycle cap.
    pub capped: bool,
    /// L1D lookups performed for the tenant's warps (across all its SMs).
    pub l1d_accesses: u64,
    /// Of those, the lookups that hit.
    pub l1d_hits: u64,
    /// Bytes the tenant injected into its SMs' crossbar injection ports.
    pub xbar_bytes: u64,
    /// Bytes the tenant pushed through the shared request-direction fabric
    /// (0 on single-SM runs, which have no shared fabric).
    pub fabric_request_bytes: u64,
    /// Bytes returned to the tenant through the shared reply-direction
    /// fabric (0 on single-SM runs).
    pub fabric_reply_bytes: u64,
    /// Shared L2/DRAM usage attributed to the tenant.
    pub mem: TenantMemStats,
}

impl TenantResult {
    /// The tenant's own instructions-per-cycle over its turnaround time.
    pub fn ipc(&self) -> f64 {
        if self.finish_cycle == 0 {
            0.0
        } else {
            self.instructions as f64 / self.finish_cycle as f64
        }
    }

    /// L1D hit rate of the tenant's accesses.
    pub fn l1d_hit_rate(&self) -> f64 {
        if self.l1d_accesses == 0 {
            0.0
        } else {
            self.l1d_hits as f64 / self.l1d_accesses as f64
        }
    }

    /// The tenant's share of `total` chip L2 misses — the "L2-contention
    /// share" the mix reports use to show who is flooding the shared cache.
    pub fn l2_miss_share(&self, total_l2_misses: u64) -> f64 {
        if total_l2_misses == 0 {
            0.0
        } else {
            self.mem.l2_misses() as f64 / total_l2_misses as f64
        }
    }
}

/// Everything produced by one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// Name of the scheduler that produced this result.
    pub scheduler: String,
    /// Name of the kernel / benchmark simulated (co-execution runs join the
    /// tenant kernel names with `+`).
    pub kernel: String,
    /// Label of the [`DispatchPolicy`] that placed CTAs on SMs.
    pub policy: String,
    /// Cycles simulated.
    pub cycles: Cycle,
    /// Aggregate SM statistics.
    pub stats: SmStats,
    /// Instruction-indexed time series (Figs. 9, 10).
    pub time_series: TimeSeries,
    /// Inter-warp interference matrix (Figs. 1a, 4a).
    pub interference: InterferenceMatrix,
    /// Scheduler-specific counters at the end of the run.
    pub scheduler_metrics: SchedulerMetrics,
    /// Whether the run ended because it hit an instruction/cycle cap rather
    /// than finishing the kernel (on a multi-SM chip: any SM hit a cap).
    pub capped: bool,
    /// Number of SMs simulated (1 for the legacy single-SM path).
    pub num_sms: usize,
    /// Per-SM statistics, indexed by SM; `stats` is their
    /// [`SmStats::reduce`] aggregate.
    pub per_sm: Vec<SmStats>,
    /// Per-tenant breakdown, indexed by tenant; single-kernel runs have
    /// exactly one entry covering the whole run.
    pub per_tenant: Vec<TenantResult>,
    /// SM↔L2 interconnect traffic aggregated over every SM's crossbar
    /// injection port.
    pub interconnect: CrossbarStats,
    /// Shared crossbar-fabric traffic (request and reply directions, with
    /// queueing cycles and per-tenant bytes). Empty/zero for single-SM runs,
    /// which have no shared fabric.
    pub fabric: FabricStats,
    /// Epoch-boundary decision log of the `interference-aware` dispatch
    /// policy (per-tenant hit-rate windows, classifications, throttle /
    /// restore actions); empty for static policies.
    pub dispatch_log: DispatchLog,
}

impl SimResult {
    /// Instructions per cycle of the run.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }

    /// L1D hit rate of the run.
    pub fn l1d_hit_rate(&self) -> f64 {
        self.stats.l1d.hit_rate()
    }

    /// Spread of per-SM IPC (min/max/stddev) — the partitioning-skew signal.
    pub fn sm_imbalance(&self) -> SmImbalance {
        SmImbalance::of(&self.per_sm)
    }

    /// Per-tenant IPCs in tenant order (inputs to the STP/ANTT metrics).
    pub fn tenant_ipcs(&self) -> Vec<f64> {
        self.per_tenant.iter().map(|t| t.ipc()).collect()
    }
}

/// Builder-style simulation front end.
pub struct Simulator {
    config: GpuConfig,
}

impl Simulator {
    /// Creates a simulator with the given machine configuration.
    pub fn new(config: GpuConfig) -> Self {
        Simulator { config }
    }

    /// The machine configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Runs `kernel` under `scheduler` (and an optional redirect cache) on a
    /// single SM with a private memory partition — the legacy configuration
    /// every recorded number in EXPERIMENTS-style baselines comes from — and
    /// returns the collected results.
    pub fn run(
        &self,
        kernel: Box<dyn Kernel>,
        scheduler: Box<dyn WarpScheduler>,
        redirect: Option<Box<dyn RedirectCache>>,
    ) -> SimResult {
        let kernel_name = kernel.info().name.clone();
        let scheduler_name = scheduler.name().to_string();
        let mut sm = Sm::new(self.config.clone(), kernel, scheduler, redirect);
        sm.run();
        let capped = !sm.is_done();
        let stats = sm.stats().clone();
        let totals = sm.tenant_stats().first().copied().unwrap_or_default();
        let mem = sm.partition_tenant_stats().and_then(|t| t.first().copied()).unwrap_or_default();
        let per_tenant = vec![TenantResult {
            tenant: 0,
            kernel: kernel_name.clone(),
            instructions: totals.instructions,
            finish_cycle: totals.finish_cycle,
            capped: !totals.done,
            l1d_accesses: totals.l1d_accesses,
            l1d_hits: totals.l1d_hits,
            xbar_bytes: totals.xbar_bytes,
            fabric_request_bytes: 0,
            fabric_reply_bytes: 0,
            mem,
        }];
        SimResult {
            scheduler: scheduler_name,
            kernel: kernel_name,
            policy: DispatchPolicy::Exclusive.label().to_string(),
            cycles: sm.cycle(),
            per_sm: vec![stats.clone()],
            stats,
            time_series: sm.time_series().clone(),
            interference: sm.interference_matrix().clone(),
            scheduler_metrics: sm.scheduler().metrics(),
            capped,
            num_sms: 1,
            per_tenant,
            interconnect: Crossbar::aggregate([sm.interconnect()]),
            fabric: FabricStats::default(),
            dispatch_log: DispatchLog::default(),
        }
    }

    /// Runs `kernel` on a chip of `config.num_sms` SMs executing in parallel
    /// against the shared banked L2/DRAM backend. `build_unit` is called once
    /// per SM index to construct that SM's scheduler (and optional redirect
    /// cache) — multi-SM chips need one policy instance per SM because
    /// schedulers carry per-SM state (VTAs, interference lists, throttle
    /// sets) even though results are reported chip-wide.
    ///
    /// With `config.num_sms == 1` this reproduces [`Simulator::run`]
    /// bit-exactly (same engine, private partition, serial loop) — the
    /// correctness anchor for the multi-SM path.
    pub fn run_chip<F>(&self, kernel: Arc<dyn Kernel>, mut build_unit: F) -> SimResult
    where
        F: FnMut(usize) -> crate::gpu::SmUnit,
    {
        let num_sms = self.config.num_sms.max(1);
        let units = (0..num_sms).map(&mut build_unit).collect();
        let mut gpu = Gpu::new(self.config.clone(), kernel, units);
        gpu.run();
        gpu.into_result()
    }

    /// Co-runs `kernels` as one tenant each (tenant ids follow submission
    /// order) on a chip of `config.num_sms` SMs under `policy`, returning the
    /// combined result with per-tenant attribution. See
    /// [`KernelQueue::run`] for the exact policy semantics.
    pub fn run_mix<F>(
        &self,
        kernels: Vec<Arc<dyn Kernel>>,
        policy: DispatchPolicy,
        build_unit: F,
    ) -> SimResult
    where
        F: FnMut(usize) -> crate::gpu::SmUnit,
    {
        KernelQueue::from_kernels(kernels).run(&self.config, policy, build_unit)
    }

    /// [`Simulator::run_mix`] with *dynamic arrivals*: `arrivals[k]` is the
    /// chip cycle at which kernel `k` enters the queue (admitted at the first
    /// epoch boundary at or after it; missing entries arrive at cycle 0).
    /// With all arrivals 0 this is exactly [`Simulator::run_mix`].
    pub fn run_mix_at<F>(
        &self,
        kernels: Vec<Arc<dyn Kernel>>,
        arrivals: &[Cycle],
        policy: DispatchPolicy,
        build_unit: F,
    ) -> SimResult
    where
        F: FnMut(usize) -> crate::gpu::SmUnit,
    {
        let mut queue = KernelQueue::new();
        for (k, kernel) in kernels.into_iter().enumerate() {
            queue.push_at(kernel, arrivals.get(k).copied().unwrap_or(0));
        }
        queue.run(&self.config, policy, build_unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ClosureKernel, KernelInfo};
    use crate::scheduler::{GtoScheduler, LrrScheduler};
    use crate::trace::{VecProgram, WarpOp};

    fn kernel(n_ops: usize) -> Box<dyn Kernel> {
        let info =
            KernelInfo { name: "drv".into(), num_ctas: 2, warps_per_cta: 4, shared_mem_per_cta: 0 };
        Box::new(ClosureKernel::new(info, move |cta, w| {
            let ops = (0..n_ops)
                .map(|i| {
                    WarpOp::coalesced_load(
                        ((cta as u64 * 29 + w as u64 * 7 + i as u64) % 4096) * 128,
                    )
                })
                .collect();
            Box::new(VecProgram::new(ops))
        }))
    }

    #[test]
    fn simulator_produces_result() {
        let sim = Simulator::new(GpuConfig::gtx480().with_sample_interval(20));
        let res = sim.run(kernel(20), Box::new(GtoScheduler::new()), None);
        assert_eq!(res.scheduler, "GTO");
        assert_eq!(res.kernel, "drv");
        assert!(!res.capped);
        assert_eq!(res.stats.instructions, 2 * 4 * 20);
        assert!(res.ipc() > 0.0);
        assert!(res.l1d_hit_rate() >= 0.0 && res.l1d_hit_rate() <= 1.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let sim = Simulator::new(GpuConfig::gtx480());
        let a = sim.run(kernel(30), Box::new(GtoScheduler::new()), None);
        let b = sim.run(kernel(30), Box::new(GtoScheduler::new()), None);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.stats.l1d, b.stats.l1d);
        assert_eq!(a.stats.instructions, b.stats.instructions);
    }

    #[test]
    fn different_schedulers_can_differ() {
        let sim = Simulator::new(GpuConfig::gtx480());
        let a = sim.run(kernel(30), Box::new(GtoScheduler::new()), None);
        let b = sim.run(kernel(30), Box::new(LrrScheduler::new()), None);
        // Same work is executed regardless of order.
        assert_eq!(a.stats.instructions, b.stats.instructions);
        assert_eq!(a.stats.mem_transactions, b.stats.mem_transactions);
    }
}
