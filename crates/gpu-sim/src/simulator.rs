//! One-call simulation driver.
//!
//! Describe a run with a [`SimRequest`] — kernel streams with arrival
//! cycles, the [`DispatchPolicy`], the SM count, and the
//! [`BackendKind`] timing backend — then hand it to
//! [`Simulator::execute`], which wraps [`Sm`] / [`crate::gpu::Gpu`]
//! construction and the
//! run loop and packages everything the experiment harness needs (aggregate
//! stats, per-SM breakdowns, time series, interference matrix, scheduler
//! metrics) into a [`SimResult`]. `SimRequest` + `execute` is the *only*
//! entry point — the legacy `run` / `run_chip` / `run_mix` / `run_mix_at`
//! quartet it subsumed is gone.

use std::sync::Arc;

use crate::config::GpuConfig;
use crate::dispatch::{DispatchPolicy, KernelQueue, QosSpec};
use crate::event::BackendKind;
use crate::gpu::SmUnit;
use crate::kernel::Kernel;
use crate::redirect::RedirectCache;
use crate::scheduler::{SchedulerMetrics, WarpScheduler};
use crate::sm::Sm;
use crate::stats::{DispatchLog, InterferenceMatrix, SmImbalance, SmStats, TimeSeries};
use gpu_mem::interconnect::{Crossbar, CrossbarStats, FabricStats, Interconnect};
use gpu_mem::{Cycle, TenantId, TenantMemStats};
use serde::{Deserialize, Serialize};
use sim_obs::{ObsLevel, ObsReport, PhaseProfiler};

/// Version of the [`SimResult`] JSON shape.
///
/// * **v1** (implicit, never serialised) — everything up to and including
///   the pipelined shared-memory backend.
/// * **v2** — adds `schema_version` itself and `backend` (the label of the
///   timing backend that produced the result).
/// * **v3** — adds per-tenant `qos` (the [`crate::dispatch::LatencyClass`]
///   label of the stream's [`QosSpec`]) for the fleet tier's SLO reports.
pub const SCHEMA_VERSION: u32 = 3;

/// One tenant's (kernel stream's) share of a chip run: its own progress
/// counters plus the shared-resource usage attributed to it throughout the
/// memory system. `Σ` over tenants of every counter equals the corresponding
/// chip total.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantResult {
    /// Tenant identity (dense, `0..num_tenants`).
    pub tenant: TenantId,
    /// Name of the tenant's kernel / benchmark.
    pub kernel: String,
    /// Latency-class label of the stream's [`QosSpec`] (`"batch"` /
    /// `"interactive"`) — the SLO tier fleet reports group by.
    pub qos: String,
    /// Dynamic warp instructions the tenant executed.
    pub instructions: u64,
    /// Chip cycle at which the tenant's last warp finished (its turnaround
    /// time; under the serial `exclusive` policy this includes queueing
    /// behind earlier kernels).
    pub finish_cycle: Cycle,
    /// Whether the tenant was cut short by an instruction/cycle cap.
    pub capped: bool,
    /// L1D lookups performed for the tenant's warps (across all its SMs).
    pub l1d_accesses: u64,
    /// Of those, the lookups that hit.
    pub l1d_hits: u64,
    /// Bytes the tenant injected into its SMs' crossbar injection ports.
    pub xbar_bytes: u64,
    /// Bytes the tenant pushed through the shared request-direction fabric
    /// (0 on single-SM runs, which have no shared fabric).
    pub fabric_request_bytes: u64,
    /// Bytes returned to the tenant through the shared reply-direction
    /// fabric (0 on single-SM runs).
    pub fabric_reply_bytes: u64,
    /// Shared L2/DRAM usage attributed to the tenant.
    pub mem: TenantMemStats,
}

impl TenantResult {
    /// The tenant's own instructions-per-cycle over its turnaround time.
    pub fn ipc(&self) -> f64 {
        if self.finish_cycle == 0 {
            0.0
        } else {
            self.instructions as f64 / self.finish_cycle as f64
        }
    }

    /// L1D hit rate of the tenant's accesses.
    pub fn l1d_hit_rate(&self) -> f64 {
        if self.l1d_accesses == 0 {
            0.0
        } else {
            self.l1d_hits as f64 / self.l1d_accesses as f64
        }
    }

    /// The tenant's share of `total` chip L2 misses — the "L2-contention
    /// share" the mix reports use to show who is flooding the shared cache.
    pub fn l2_miss_share(&self, total_l2_misses: u64) -> f64 {
        if total_l2_misses == 0 {
            0.0
        } else {
            self.mem.l2_misses() as f64 / total_l2_misses as f64
        }
    }
}

/// Everything produced by one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// Version of this JSON shape; see [`SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Label of the timing backend that produced the result
    /// ([`BackendKind::label`]: `"epoch"` or `"event"`). Both backends are
    /// bit-identical in every other field.
    pub backend: String,
    /// Name of the scheduler that produced this result.
    pub scheduler: String,
    /// Name of the kernel / benchmark simulated (co-execution runs join the
    /// tenant kernel names with `+`).
    pub kernel: String,
    /// Label of the [`DispatchPolicy`] that placed CTAs on SMs.
    pub policy: String,
    /// Cycles simulated.
    pub cycles: Cycle,
    /// Aggregate SM statistics.
    pub stats: SmStats,
    /// Instruction-indexed time series (Figs. 9, 10).
    pub time_series: TimeSeries,
    /// Inter-warp interference matrix (Figs. 1a, 4a).
    pub interference: InterferenceMatrix,
    /// Scheduler-specific counters at the end of the run.
    pub scheduler_metrics: SchedulerMetrics,
    /// Whether the run ended because it hit an instruction/cycle cap rather
    /// than finishing the kernel (on a multi-SM chip: any SM hit a cap).
    pub capped: bool,
    /// Number of SMs simulated (1 for the legacy single-SM path).
    pub num_sms: usize,
    /// Per-SM statistics, indexed by SM; `stats` is their
    /// [`SmStats::reduce`] aggregate.
    pub per_sm: Vec<SmStats>,
    /// Per-tenant breakdown, indexed by tenant; single-kernel runs have
    /// exactly one entry covering the whole run.
    pub per_tenant: Vec<TenantResult>,
    /// SM↔L2 interconnect traffic aggregated over every SM's crossbar
    /// injection port.
    pub interconnect: CrossbarStats,
    /// Shared crossbar-fabric traffic (request and reply directions, with
    /// queueing cycles and per-tenant bytes). Empty/zero for single-SM runs,
    /// which have no shared fabric.
    pub fabric: FabricStats,
    /// Epoch-boundary decision log of the `interference-aware` dispatch
    /// policy (per-tenant hit-rate windows, classifications, throttle /
    /// restore actions); empty for static policies.
    pub dispatch_log: DispatchLog,
}

impl SimResult {
    /// Instructions per cycle of the run.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }

    /// L1D hit rate of the run.
    pub fn l1d_hit_rate(&self) -> f64 {
        self.stats.l1d.hit_rate()
    }

    /// Spread of per-SM IPC (min/max/stddev) — the partitioning-skew signal.
    pub fn sm_imbalance(&self) -> SmImbalance {
        SmImbalance::of(&self.per_sm)
    }

    /// Per-tenant IPCs in tenant order (inputs to the STP/ANTT metrics).
    pub fn tenant_ipcs(&self) -> Vec<f64> {
        self.per_tenant.iter().map(|t| t.ipc()).collect()
    }
}

/// A builder-style description of one simulation run: which kernel streams
/// to co-execute (with their arrival cycles and [`QosSpec`] contracts),
/// under which [`DispatchPolicy`], on how many SMs, driven by which
/// [`BackendKind`] timing backend. Consumed by [`Simulator::execute`].
#[derive(Clone)]
pub struct SimRequest {
    kernels: Vec<Arc<dyn Kernel>>,
    arrivals: Vec<Cycle>,
    qos: Vec<QosSpec>,
    policy: DispatchPolicy,
    backend: BackendKind,
    num_sms: Option<usize>,
    obs: ObsLevel,
}

impl Default for SimRequest {
    fn default() -> Self {
        SimRequest {
            kernels: Vec::new(),
            arrivals: Vec::new(),
            qos: Vec::new(),
            policy: DispatchPolicy::Exclusive,
            backend: BackendKind::default(),
            num_sms: None,
            obs: ObsLevel::Off,
        }
    }
}

impl SimRequest {
    /// An empty request: no streams yet, [`DispatchPolicy::Exclusive`], the
    /// default (event) backend, and the configuration's SM count.
    pub fn new() -> Self {
        SimRequest::default()
    }

    /// A single-stream request for `kernel` arriving at cycle 0.
    pub fn kernel(kernel: Arc<dyn Kernel>) -> Self {
        SimRequest::new().stream(kernel)
    }

    /// Appends a kernel stream arriving at cycle 0. Tenant ids follow
    /// submission order.
    pub fn stream(self, kernel: Arc<dyn Kernel>) -> Self {
        self.stream_at(kernel, 0)
    }

    /// Appends a kernel stream arriving at chip cycle `arrival` (admitted at
    /// the first epoch boundary at or after it; the serial `Exclusive`
    /// policy starts it no earlier than both its arrival and the previous
    /// kernel's completion).
    pub fn stream_at(self, kernel: Arc<dyn Kernel>, arrival: Cycle) -> Self {
        self.stream_qos_at(kernel, arrival, QosSpec::default())
    }

    /// Appends a kernel stream arriving at `arrival` with an explicit
    /// [`QosSpec`]: the interference-aware dispatcher enforces its floors
    /// and reserved SMs, and every policy reports its latency class in
    /// [`TenantResult::qos`].
    pub fn stream_qos_at(mut self, kernel: Arc<dyn Kernel>, arrival: Cycle, qos: QosSpec) -> Self {
        self.kernels.push(kernel);
        self.arrivals.push(arrival);
        self.qos.push(qos);
        self
    }

    /// Sets the CTA dispatch policy (default [`DispatchPolicy::Exclusive`]).
    pub fn policy(mut self, policy: DispatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the timing backend (default [`BackendKind::Event`]; `epoch` is
    /// the bit-exact reference oracle).
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Overrides the SM count (default: the simulator configuration's
    /// `num_sms`). A count of 1 selects the legacy single-SM engine with a
    /// private memory partition.
    pub fn num_sms(mut self, num_sms: usize) -> Self {
        self.num_sms = Some(num_sms);
        self
    }

    /// Sets the observability level (default [`ObsLevel::Off`]). Anything
    /// above `Off` makes [`Simulator::execute_observed`] return a populated
    /// [`ObsReport`]; plain [`Simulator::execute`] discards it.
    pub fn obs(mut self, obs: ObsLevel) -> Self {
        self.obs = obs;
        self
    }

    /// The streams submitted so far.
    pub fn streams(&self) -> usize {
        self.kernels.len()
    }
}

/// Builder-style simulation front end.
pub struct Simulator {
    config: GpuConfig,
}

impl Simulator {
    /// Creates a simulator with the given machine configuration.
    pub fn new(config: GpuConfig) -> Self {
        Simulator { config }
    }

    /// The machine configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Executes `req` and returns the collected results. `build_unit` is
    /// called once per SM per engine (per kernel for the serial `Exclusive`
    /// policy) to construct that SM's scheduler and optional redirect cache.
    ///
    /// Routing, all bit-identical to the legacy entry points it subsumed:
    ///
    /// * one stream, one SM, arrival 0, `Exclusive` — the single-SM engine
    ///   with a private memory partition (the legacy configuration every
    ///   recorded baseline number comes from);
    /// * everything else — a chip of `num_sms` SMs against the shared banked
    ///   L2/DRAM backend via [`KernelQueue`] (see [`KernelQueue::run`] for
    ///   the policy semantics).
    ///
    /// The [`BackendKind`] chooses the timing core; `epoch` and `event`
    /// produce bit-identical results, differing only in wall-clock time.
    ///
    /// # Panics
    ///
    /// Panics when `req` has no streams.
    pub fn execute<F>(&self, req: SimRequest, build_unit: F) -> SimResult
    where
        F: FnMut(usize) -> SmUnit,
    {
        self.execute_observed(req, build_unit).0
    }

    /// [`Simulator::execute`] plus the run's [`ObsReport`]: sim-time trace
    /// events, the metrics registry and the wall-clock phase profile, at the
    /// request's [`SimRequest::obs`] level. The simulation result is
    /// byte-identical to what [`Simulator::execute`] returns for the same
    /// request — collection is strictly passive.
    pub fn execute_observed<F>(&self, req: SimRequest, mut build_unit: F) -> (SimResult, ObsReport)
    where
        F: FnMut(usize) -> SmUnit,
    {
        assert!(!req.kernels.is_empty(), "a SimRequest needs at least one kernel stream");
        let num_sms = req.num_sms.unwrap_or(self.config.num_sms).max(1);
        let static_single = req.kernels.len() == 1
            && num_sms == 1
            && req.arrivals.iter().all(|&a| a == 0)
            && matches!(req.policy, DispatchPolicy::Exclusive);
        if static_single {
            let kernel = req.kernels.into_iter().next().expect("one stream");
            let qos = req.qos.into_iter().next().unwrap_or_default();
            let (scheduler, redirect) = build_unit(0);
            return self.run_single(kernel, scheduler, redirect, req.backend, req.obs, qos);
        }
        let config = if num_sms == self.config.num_sms {
            self.config.clone()
        } else {
            self.config.clone().with_num_sms(num_sms)
        };
        let mut queue = KernelQueue::new();
        for ((kernel, arrival), qos) in req.kernels.into_iter().zip(req.arrivals).zip(req.qos) {
            queue.push_qos_at(kernel, arrival, qos);
        }
        queue.run_with_observed(&config, req.policy, req.backend, req.obs, build_unit)
    }

    /// The legacy single-SM path: one kernel, one SM, a private memory
    /// partition. Kept verbatim so `execute` reproduces historical baseline
    /// numbers bit for bit.
    fn run_single(
        &self,
        kernel: Arc<dyn Kernel>,
        scheduler: Box<dyn WarpScheduler>,
        redirect: Option<Box<dyn RedirectCache>>,
        backend: BackendKind,
        obs: ObsLevel,
        qos: QosSpec,
    ) -> (SimResult, ObsReport) {
        let kernel_name = kernel.info().name.clone();
        let scheduler_name = scheduler.name().to_string();
        let interconnect = Interconnect::new(
            self.config.interconnect_latency,
            self.config.interconnect_bytes_per_cycle,
        );
        let port = crate::gpu::MemoryPort::private(self.config.partition.clone());
        let work = Sm::work_of(kernel, 0);
        let mut sm =
            Sm::with_parts(self.config.clone(), work, scheduler, redirect, interconnect, port);
        let mut profiler =
            if obs.metrics_enabled() { PhaseProfiler::enabled() } else { PhaseProfiler::default() };
        if obs.metrics_enabled() {
            sm.enable_port_obs(obs.trace_enabled());
        }
        if obs.trace_enabled() {
            sm.set_trace(0);
        }
        profiler.enter("sm-run");
        match backend {
            BackendKind::Epoch => sm.run(),
            BackendKind::Event => sm.run_event(),
        };
        profiler.exit();
        let mut report = ObsReport::new(obs);
        report.tenants = vec![kernel_name.clone()];
        report.profile = profiler;
        if let Some(mut trace) = sm.take_trace() {
            report.dropped_events += trace.dropped();
            report.events.extend(trace.take());
        }
        if let Some(sink) = sm.take_port_obs() {
            if let Some(mut trace) = sink.trace {
                report.dropped_events += trace.dropped();
                report.events.extend(trace.take());
            }
            for (tenant, hist) in sink.latency.iter().enumerate() {
                if hist.count() > 0 {
                    report.metrics.histogram_merge("mem-latency", Some(tenant as u32), hist);
                }
            }
        }
        let capped = !sm.is_done();
        let stats = sm.stats().clone();
        let totals = sm.tenant_stats().first().copied().unwrap_or_default();
        let mem = sm.partition_tenant_stats().and_then(|t| t.first().copied()).unwrap_or_default();
        let per_tenant = vec![TenantResult {
            tenant: 0,
            kernel: kernel_name.clone(),
            qos: qos.latency.label().to_string(),
            instructions: totals.instructions,
            finish_cycle: totals.finish_cycle,
            capped: !totals.done,
            l1d_accesses: totals.l1d_accesses,
            l1d_hits: totals.l1d_hits,
            xbar_bytes: totals.xbar_bytes,
            fabric_request_bytes: 0,
            fabric_reply_bytes: 0,
            mem,
        }];
        let result = SimResult {
            schema_version: SCHEMA_VERSION,
            backend: backend.label().to_string(),
            scheduler: scheduler_name,
            kernel: kernel_name,
            policy: DispatchPolicy::Exclusive.label().to_string(),
            cycles: sm.cycle(),
            per_sm: vec![stats.clone()],
            stats,
            time_series: sm.time_series().clone(),
            interference: sm.interference_matrix().clone(),
            scheduler_metrics: sm.scheduler().metrics(),
            capped,
            num_sms: 1,
            per_tenant,
            interconnect: Crossbar::aggregate([sm.interconnect()]),
            fabric: FabricStats::default(),
            dispatch_log: DispatchLog::default(),
        };
        (result, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ClosureKernel, KernelInfo};
    use crate::scheduler::{GtoScheduler, LrrScheduler};
    use crate::trace::{VecProgram, WarpOp};

    fn kernel(n_ops: usize) -> Arc<dyn Kernel> {
        let info =
            KernelInfo { name: "drv".into(), num_ctas: 2, warps_per_cta: 4, shared_mem_per_cta: 0 };
        Arc::new(ClosureKernel::new(info, move |cta, w| {
            let ops = (0..n_ops)
                .map(|i| {
                    WarpOp::coalesced_load(
                        ((cta as u64 * 29 + w as u64 * 7 + i as u64) % 4096) * 128,
                    )
                })
                .collect();
            Box::new(VecProgram::new(ops))
        }))
    }

    fn gto(_sm: usize) -> SmUnit {
        (Box::new(GtoScheduler::new()), None)
    }

    #[test]
    fn simulator_produces_result() {
        let sim = Simulator::new(GpuConfig::gtx480().with_sample_interval(20));
        let res = sim.execute(SimRequest::kernel(kernel(20)).num_sms(1), gto);
        assert_eq!(res.schema_version, SCHEMA_VERSION);
        assert_eq!(res.backend, "event", "the event core is the default backend");
        assert_eq!(res.scheduler, "GTO");
        assert_eq!(res.kernel, "drv");
        assert!(!res.capped);
        assert_eq!(res.stats.instructions, 2 * 4 * 20);
        assert!(res.ipc() > 0.0);
        assert!(res.l1d_hit_rate() >= 0.0 && res.l1d_hit_rate() <= 1.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let sim = Simulator::new(GpuConfig::gtx480());
        let a = sim.execute(SimRequest::kernel(kernel(30)).num_sms(1), gto);
        let b = sim.execute(SimRequest::kernel(kernel(30)).num_sms(1), gto);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.stats.l1d, b.stats.l1d);
        assert_eq!(a.stats.instructions, b.stats.instructions);
    }

    #[test]
    fn different_schedulers_can_differ() {
        let sim = Simulator::new(GpuConfig::gtx480());
        let a = sim.execute(SimRequest::kernel(kernel(30)).num_sms(1), gto);
        let b = sim.execute(SimRequest::kernel(kernel(30)).num_sms(1), |_| {
            (Box::new(LrrScheduler::new()), None)
        });
        // Same work is executed regardless of order.
        assert_eq!(a.stats.instructions, b.stats.instructions);
        assert_eq!(a.stats.mem_transactions, b.stats.mem_transactions);
    }

    /// The QoS contract rides along every request path: the latency-class
    /// label lands in `TenantResult::qos` on both the single-SM route and
    /// the chip route, and defaults to `batch`.
    #[test]
    fn qos_labels_reach_tenant_results() {
        let sim = Simulator::new(GpuConfig::gtx480());
        let single = sim.execute(
            SimRequest::new().stream_qos_at(kernel(10), 0, QosSpec::interactive(2)).num_sms(1),
            gto,
        );
        assert_eq!(
            single.per_tenant[0].qos, "interactive",
            "1-SM exclusive ignores floors but the label rides along"
        );
        let sim4 = Simulator::new(GpuConfig::gtx480().with_num_sms(4));
        let res = sim4.execute(
            SimRequest::new()
                .stream_qos_at(kernel(20), 0, QosSpec::interactive(2))
                .stream(kernel(20))
                .policy(DispatchPolicy::SharedRoundRobin),
            gto,
        );
        assert_eq!(res.per_tenant[0].qos, "interactive");
        assert_eq!(res.per_tenant[1].qos, "batch");
    }

    #[test]
    fn event_backend_matches_epoch_on_single_sm() {
        let sim = Simulator::new(GpuConfig::gtx480());
        let epoch =
            sim.execute(SimRequest::kernel(kernel(30)).num_sms(1).backend(BackendKind::Epoch), gto);
        let mut event =
            sim.execute(SimRequest::kernel(kernel(30)).num_sms(1).backend(BackendKind::Event), gto);
        assert_eq!(epoch.backend, "epoch");
        assert_eq!(event.backend, "event");
        event.backend = epoch.backend.clone();
        assert_eq!(
            serde_json::to_string(&epoch).unwrap(),
            serde_json::to_string(&event).unwrap(),
            "event backend must be bit-identical to the epoch oracle"
        );
    }

    /// Pins the v3 JSON shape: `schema_version`, `backend` and the
    /// per-tenant `qos` label are plain, always-present fields (the vendored
    /// serde derive has no field defaults, so consumers rely on them being
    /// written out), and the result round-trips.
    #[test]
    fn schema_v3_round_trips_and_pins_new_fields() {
        let sim = Simulator::new(GpuConfig::gtx480().with_sample_interval(20));
        let res = sim.execute(SimRequest::kernel(kernel(10)).num_sms(1), gto);
        let json = serde_json::to_string(&res).unwrap();
        assert!(json.contains("\"schema_version\":3"), "v3 tag missing: {json}");
        assert!(json.contains("\"backend\":\"event\""), "backend label missing: {json}");
        assert!(json.contains("\"qos\":\"batch\""), "per-tenant qos label missing: {json}");
        let back: SimResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        assert_eq!(back.backend, res.backend);
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }
}
