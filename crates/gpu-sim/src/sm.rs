//! The streaming-multiprocessor (SM) model.
//!
//! One [`Sm`] owns the warp slots, the L1D, the shared-memory scratchpad and
//! its SMMT, the MSHR file, the interconnect slice and the memory partition,
//! plus the pluggable warp scheduler and (optionally) a redirect cache. Each
//! call to [`Sm::step`] advances the model by one cycle:
//!
//! 1. memory responses that completed by this cycle wake their warps and fill
//!    the L1D or the redirect cache,
//! 2. CTA-wide barriers whose warps all arrived are released,
//! 3. the scheduler picks one ready, non-throttled warp and its next
//!    operation is issued (compute, barrier, shared-memory access, or global
//!    memory access routed to the L1D, the redirect cache, or the bypass path
//!    according to the scheduler's routing decision),
//! 4. statistics and the instruction-indexed time series are updated.
//!
//! The SM reports every L1D / redirect-cache access to the scheduler as a
//! [`CacheEvent`] so locality- and interference-aware policies (CCWS, CIAO)
//! can maintain their Victim Tag Arrays without the SM knowing about them.
//!
//! Downstream memory is reached through a [`MemoryPort`]: a private L2+DRAM
//! partition in the legacy single-SM configuration, or a deferred port into
//! the chip's pipelined shared backend (reorder window → request fabric →
//! bank shards → reply fabric) when the SM is one of many driven by the
//! [`crate::gpu::Gpu`] engine — which then advances the SM in epochs via
//! [`Sm::run_epoch`], drains the port at epoch boundaries, and delivers the
//! pipeline's responses with [`Sm::deliver`].

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use crate::coalescer::coalesce;
use crate::config::GpuConfig;
use crate::dispatch::CtaWork;
use crate::gpu::{MemRequest, MemoryPort};
use crate::kernel::Kernel;
use crate::redirect::{RedirectCache, RedirectLookup};
use crate::scheduler::{
    CacheEvent, CacheEventOutcome, CacheKind, MemRoute, SchedulerCtx, WarpScheduler,
};
use crate::stats::{
    tenant_slot, InterferenceMatrix, SmStats, TenantStats, TimeSeries, TimeSeriesPoint,
};
use crate::trace::{MemPattern, MemSpace, WarpOp};
use crate::warp::{Warp, WarpState};
use gpu_mem::cache::SetAssocCache;
use gpu_mem::interconnect::Interconnect;
use gpu_mem::mshr::{FillTarget, Mshr};
use gpu_mem::shared_memory::SharedMemory;
use gpu_mem::smmt::Smmt;
use gpu_mem::{Addr, CtaId, Cycle, TenantId, WarpId};
use sim_obs::{TraceEvent, TraceRecorder, Tracer, Track};

/// A memory-system completion event scheduled for a future cycle (either
/// computed synchronously by a private port or delivered by the chip engine
/// at an epoch barrier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ResponseEvent {
    /// An outstanding MSHR miss for this block completed.
    MshrFill(Addr),
    /// A bypassed request for this warp completed (no MSHR entry).
    WakeWarp(WarpId),
}

/// A CTA currently resident on the SM. `key` is the SM-local launch ordinal
/// used as the SMMT allocation key — global CTA ids are not unique across
/// co-running kernels, launch ordinals are.
#[derive(Debug, Clone)]
struct ResidentCta {
    key: CtaId,
    tenant: TenantId,
    shared_mem: u32,
    warp_slots: Vec<usize>,
    launch_cycle: Cycle,
}

/// Snapshot used to compute per-interval time-series values.
#[derive(Debug, Clone, Copy, Default)]
struct SampleSnapshot {
    instructions: u64,
    cycle: Cycle,
    interference: u64,
    l1d_accesses: u64,
    l1d_hits: u64,
}

/// The streaming multiprocessor.
pub struct Sm {
    config: GpuConfig,
    scheduler: Box<dyn WarpScheduler>,
    redirect: Option<Box<dyn RedirectCache>>,

    l1d: SetAssocCache,
    shared_mem: SharedMemory,
    smmt: Smmt,
    mshr: Mshr,
    interconnect: Interconnect,
    port: MemoryPort,

    warps: Vec<Warp>,
    resident: Vec<ResidentCta>,
    work: Vec<CtaWork>,
    next_work: usize,
    launch_ordinal: u32,
    launch_seq: u64,
    tenant_of_slot: Vec<TenantId>,

    pending: BinaryHeap<Reverse<(Cycle, ResponseEvent)>>,
    cycle: Cycle,
    stats: SmStats,
    tenants: Vec<TenantStats>,
    time_series: TimeSeries,
    interference: InterferenceMatrix,
    snapshot: SampleSnapshot,
    ready_scratch: Vec<usize>,

    /// Sim-time trace sink (`None` below the full obs level — the hot path
    /// then pays one branch per would-be event).
    trace: Option<TraceRecorder>,
    /// The SM's chip-level index, used as its trace track id.
    trace_unit: u32,
    /// Start of the current contiguous issuing stretch, if one is open.
    busy_since: Option<Cycle>,
}

impl Sm {
    /// Builds an SM executing `kernel` under `scheduler`, with an optional
    /// redirect cache installed on the global-memory datapath. The SM owns a
    /// private memory partition (the legacy single-SM configuration).
    pub fn new(
        config: GpuConfig,
        kernel: Box<dyn Kernel>,
        scheduler: Box<dyn WarpScheduler>,
        redirect: Option<Box<dyn RedirectCache>>,
    ) -> Self {
        let interconnect =
            Interconnect::new(config.interconnect_latency, config.interconnect_bytes_per_cycle);
        let port = MemoryPort::private(config.partition.clone());
        let work = Self::work_of(Arc::from(kernel), 0);
        Self::with_parts(config, work, scheduler, redirect, interconnect, port)
    }

    /// Expands `kernel`'s whole grid into the work list of one SM running it
    /// alone, attributed to `tenant` (the single-SM view of
    /// [`crate::dispatch`]'s per-stream expansion).
    pub fn work_of(kernel: Arc<dyn Kernel>, tenant: TenantId) -> Vec<CtaWork> {
        crate::dispatch::stream_work(&crate::dispatch::KernelStream::new(tenant, kernel))
    }

    /// Builds an SM from explicit interconnect and memory-port parts — the
    /// constructor the multi-SM [`crate::gpu::Gpu`] engine uses to hand each
    /// SM its crossbar port, a deferred port into the shared backend, and the
    /// (possibly multi-kernel) work list the dispatch policy assigned to it.
    /// CTAs launch strictly in work-list order as capacity frees up.
    pub fn with_parts(
        config: GpuConfig,
        work: Vec<CtaWork>,
        scheduler: Box<dyn WarpScheduler>,
        redirect: Option<Box<dyn RedirectCache>>,
        interconnect: Interconnect,
        port: MemoryPort,
    ) -> Self {
        let l1d = SetAssocCache::new(config.l1d.clone());
        let shared_mem = SharedMemory::new(config.shared_mem);
        let smmt = Smmt::new(config.shared_mem.size_bytes);
        let mshr = Mshr::new(config.mshr_entries, config.mshr_merge);
        let interference = InterferenceMatrix::new(config.max_warps_per_sm);

        let mut sm = Sm {
            config,
            scheduler,
            redirect,
            l1d,
            shared_mem,
            smmt,
            mshr,
            interconnect,
            port,
            warps: Vec::new(),
            resident: Vec::new(),
            work,
            next_work: 0,
            launch_ordinal: 0,
            launch_seq: 0,
            tenant_of_slot: Vec::new(),
            pending: BinaryHeap::new(),
            cycle: 0,
            stats: SmStats::default(),
            tenants: Vec::new(),
            time_series: TimeSeries::default(),
            interference,
            snapshot: SampleSnapshot::default(),
            ready_scratch: Vec::new(),
            trace: None,
            trace_unit: 0,
            busy_since: None,
        };
        sm.launch_ctas();
        sm.update_redirect_capacity();
        sm
    }

    /// Current cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Attaches a sim-time trace recorder; the SM records on track
    /// `Sm(unit)`: `busy` spans over contiguous issuing stretches, `cta`
    /// lifetime spans, and (engine-category) `idle-skip` stretches.
    pub fn set_trace(&mut self, unit: u32) {
        self.trace_unit = unit;
        self.trace = Some(TraceRecorder::with_default_capacity());
    }

    /// Detaches and returns the trace recorder, closing any open busy span
    /// at the current cycle first.
    pub fn take_trace(&mut self) -> Option<TraceRecorder> {
        self.close_busy_span(self.cycle);
        self.trace.take()
    }

    /// Closes the open busy stretch (if any) as a `busy` span ending at
    /// `now`.
    fn close_busy_span(&mut self, now: Cycle) {
        if let (Some(start), Some(trace)) = (self.busy_since.take(), self.trace.as_mut()) {
            if now > start {
                trace.record(TraceEvent::span(
                    Track::Sm(self.trace_unit),
                    "busy",
                    start,
                    now - start,
                    None,
                ));
            }
        }
    }

    /// Aggregate statistics (finalised lazily; call after `run`).
    pub fn stats(&self) -> &SmStats {
        &self.stats
    }

    /// The instruction-indexed time series collected so far.
    pub fn time_series(&self) -> &TimeSeries {
        &self.time_series
    }

    /// The inter-warp interference matrix collected so far.
    pub fn interference_matrix(&self) -> &InterferenceMatrix {
        &self.interference
    }

    /// The installed scheduler (for metrics queries).
    pub fn scheduler(&self) -> &dyn WarpScheduler {
        self.scheduler.as_ref()
    }

    /// Per-tenant counters collected so far (indexed by [`TenantId`];
    /// finalised by [`Sm::finalize_stats`]).
    pub fn tenant_stats(&self) -> &[TenantStats] {
        &self.tenants
    }

    /// True when every work-list CTA has been launched and finished.
    pub fn is_done(&self) -> bool {
        self.next_work >= self.work.len() && self.resident.is_empty()
    }

    /// Appends work assigned at run time (dynamic kernel arrivals and the
    /// interference-aware dispatcher both feed SMs at epoch boundaries) and
    /// launches as much of it as capacity allows. An SM that had drained its
    /// work list froze its clock, so it is fast-forwarded to the boundary
    /// cycle `now` first — the idle gap counts in `cycles` but not in
    /// `idle_cycles`, which only measures cycles the SM had work it could not
    /// issue.
    pub fn push_work(&mut self, items: Vec<CtaWork>, now: Cycle) {
        if items.is_empty() {
            return;
        }
        if self.is_done() && !self.hit_cap() {
            self.cycle = self.cycle.max(now);
        }
        self.work.extend(items);
        self.launch_ctas();
        self.update_redirect_capacity();
    }

    /// Warp slots not taken by resident CTAs or by queued work that has not
    /// launched yet — what the adaptive dispatcher treats as this SM's free
    /// capacity when dealing CTAs.
    pub fn free_warp_slots(&self) -> usize {
        let resident: usize = self.resident.iter().map(|c| c.warp_slots.len()).sum();
        let queued: usize =
            self.work[self.next_work.min(self.work.len())..].iter().map(|w| w.warps.max(1)).sum();
        self.config.max_warps_per_sm.saturating_sub(resident + queued)
    }

    /// CTAs of each tenant that ran to completion on this SM so far, indexed
    /// by [`TenantId`] (shorter than the tenant count when a tenant never ran
    /// here).
    pub fn tenant_ctas_completed(&self) -> Vec<usize> {
        self.tenants.iter().map(|t| t.ctas_completed).collect()
    }

    /// True when a configured instruction or cycle cap has been reached.
    pub fn hit_cap(&self) -> bool {
        if let Some(max_i) = self.config.max_instructions {
            if self.stats.instructions >= max_i {
                return true;
            }
        }
        if let Some(max_c) = self.config.max_cycles {
            if self.cycle >= max_c {
                return true;
            }
        }
        false
    }

    /// Runs until the kernel finishes or a cap is reached, returning the
    /// number of cycles simulated.
    pub fn run(&mut self) -> Cycle {
        while !self.is_done() && !self.hit_cap() {
            self.step();
        }
        self.finalize_stats();
        self.cycle
    }

    /// Advances the SM to (at most) cycle `until` — one epoch of the chip
    /// engine's barrier-synchronised loop. Stops early when the kernel
    /// finishes or a cap is hit. Does not finalise statistics.
    pub fn run_epoch(&mut self, until: Cycle) {
        while self.cycle < until && !self.is_done() && !self.hit_cap() {
            self.step();
        }
    }

    /// Event-driven equivalent of [`Sm::run`]: produces bit-identical state
    /// and statistics, but fast-forwards over provably idle stretches (all
    /// warps stalled, no response due) instead of stepping them one cycle at
    /// a time. Returns the number of cycles simulated.
    pub fn run_event(&mut self) -> Cycle {
        while !self.is_done() && !self.hit_cap() {
            match self.idle_skip_target(Cycle::MAX) {
                Some(target) => self.skip_idle_to(target),
                None => self.step(),
            }
        }
        self.finalize_stats();
        self.cycle
    }

    /// Event-driven equivalent of [`Sm::run_epoch`]: advances to (at most)
    /// cycle `until`, fast-forwarding idle stretches. Bit-identical to
    /// stepping every cycle.
    pub fn run_epoch_event(&mut self, until: Cycle) {
        while self.cycle < until && !self.is_done() && !self.hit_cap() {
            match self.idle_skip_target(until) {
                Some(target) => self.skip_idle_to(target),
                None => self.step(),
            }
        }
    }

    /// The SM's next-event time: the cycle at which something observable can
    /// happen (a warp wakeup or a pending memory response), or `None` when
    /// the current cycle cannot be skipped (ready warps, due responses,
    /// pending CTA retires/launches or releasable barriers). Used by the
    /// event-driven engine to order SM advancement.
    pub fn next_event_time(&self) -> Option<Cycle> {
        self.idle_skip_target(Cycle::MAX)
    }

    /// Largest `target` in `(cycle, until]` such that every cycle in
    /// `[cycle, target)` is provably a no-op apart from idle-cycle
    /// accounting and empty-ready scheduler picks. `None` when the current
    /// cycle must be stepped normally.
    ///
    /// A cycle is skippable only when *all* of the following hold — each
    /// condition guards one phase of [`Sm::step`]:
    /// 1. no unfinished warp is ready (issue, warp-finish detection and
    ///    throttle accounting are all no-ops),
    /// 2. no pending memory response is due,
    /// 3. no resident CTA has every warp finished (retire + launch pending),
    /// 4. no CTA barrier is releasable,
    /// 5. the time-series sampler is not due (it is instruction-indexed, so
    ///    it cannot newly trigger while nothing issues).
    fn idle_skip_target(&self, until: Cycle) -> Option<Cycle> {
        let now = self.cycle;
        if until <= now {
            return None;
        }
        if self.stats.instructions >= self.snapshot.instructions + self.config.sample_interval_insts
        {
            return None;
        }
        for w in &self.warps {
            if !w.is_finished() && w.is_ready(now) {
                return None;
            }
        }
        if let Some(&Reverse((when, _))) = self.pending.peek() {
            if when <= now {
                return None;
            }
        }
        for cta in &self.resident {
            if cta.warp_slots.iter().all(|&s| self.warps[s].is_finished()) {
                return None;
            }
        }
        for cta in &self.resident {
            let all_arrived = cta.warp_slots.iter().all(|&s| {
                matches!(self.warps[s].state, WarpState::AtBarrier) || self.warps[s].is_finished()
            });
            let any_waiting =
                cta.warp_slots.iter().any(|&s| matches!(self.warps[s].state, WarpState::AtBarrier));
            if all_arrived && any_waiting {
                return None;
            }
        }
        // Jump to the earliest wakeup: the next due response or the earliest
        // `Executing` expiry, clamped to the epoch boundary and the cycle
        // cap. Conditions 1–2 guarantee every candidate is `> now`.
        let mut target = until;
        if let Some(&Reverse((when, _))) = self.pending.peek() {
            target = target.min(when);
        }
        for w in &self.warps {
            if w.is_finished() {
                continue;
            }
            if let WarpState::Executing { until: t } = w.state {
                target = target.min(t);
            }
        }
        if let Some(m) = self.config.max_cycles {
            target = target.min(m);
        }
        (target > now).then_some(target)
    }

    /// Fast-forwards the SM from `cycle` to `target`, accounting the skipped
    /// stretch exactly as `target - cycle` consecutive idle [`Sm::step`]s
    /// would: `idle_cycles` grows by the stretch length and the scheduler
    /// observes the equivalent of that many empty-ready picks (see
    /// [`WarpScheduler::on_idle_cycles`]).
    fn skip_idle_to(&mut self, target: Cycle) {
        let skipped = target - self.cycle;
        // A skippable stretch is idle by definition, so the busy span (if
        // open) ends where the stretch starts — exactly where the stepped
        // path would have closed it. The skip itself is engine mechanics:
        // only the event backend takes it, so the span is engine-category
        // and excluded from the canonical (backend-invariant) export.
        self.close_busy_span(self.cycle);
        if let Some(trace) = &mut self.trace {
            trace.record(
                TraceEvent::span(Track::Engine, "idle-skip", self.cycle, skipped, None).engine(),
            );
        }
        self.stats.idle_cycles += skipped;
        let last = target - 1;
        let ctx = SchedulerCtx {
            now: last,
            warps: &self.warps,
            ready: &[],
            instructions_executed: self.stats.instructions,
            active_warps: self.warps.iter().filter(|w| !w.is_finished()).count(),
            dram_utilization: self.port.dram_utilization(last.max(1)),
        };
        self.scheduler.on_idle_cycles(&ctx, skipped);
        self.cycle = target;
    }

    /// Drains the memory requests buffered by a deferred port during the
    /// last epoch (empty for an SM with a private partition).
    pub fn drain_requests(&mut self) -> Vec<MemRequest> {
        self.port.drain()
    }

    /// Schedules a memory response computed by the chip engine: `ev` fires
    /// at cycle `done`. Must not be called with `done` in the SM's past —
    /// the engine's epoch clamp guarantees this.
    pub fn deliver(&mut self, done: Cycle, ev: ResponseEvent) {
        debug_assert!(done >= self.cycle, "response delivered into the SM's past");
        self.pending.push(Reverse((done, ev)));
    }

    /// Updates the DRAM-utilisation snapshot a deferred port reports to the
    /// scheduler during the next epoch.
    pub fn set_dram_utilization(&mut self, util: f64) {
        self.port.set_dram_utilization(util);
    }

    /// The SM's interconnect port (for chip-level traffic aggregation).
    pub fn interconnect(&self) -> &Interconnect {
        &self.interconnect
    }

    /// Per-tenant L2/DRAM attribution of the SM's private partition, if it
    /// owns one (`None` on a deferred port — the shared backend holds the
    /// chip-level table instead).
    pub fn partition_tenant_stats(&self) -> Option<Vec<gpu_mem::TenantMemStats>> {
        self.port.partition_tenant_stats()
    }

    /// Arms the private partition's observability sink (no-op on a deferred
    /// port — the shared backend's banks carry their own sinks there).
    pub fn enable_port_obs(&mut self, trace_on: bool) {
        self.port.enable_obs(trace_on);
    }

    /// Detaches the private partition's observability sink, if one exists.
    pub fn take_port_obs(&mut self) -> Option<Box<gpu_mem::PartitionObs>> {
        self.port.take_obs()
    }

    /// Advances the SM by one cycle.
    pub fn step(&mut self) {
        let now = self.cycle;
        self.process_responses(now);
        self.release_barriers();
        self.retire_and_launch_ctas();

        // Collect issuable warps; detect warps whose program just ended.
        let mut finished_now: Vec<usize> = Vec::new();
        self.ready_scratch.clear();
        let mut any_ready_ignoring_throttle = false;
        for i in 0..self.warps.len() {
            if self.warps[i].is_finished() || !self.warps[i].is_ready(now) {
                continue;
            }
            let (next_is_global_mem, next_is_barrier) = match self.warps[i].peek_op() {
                None => {
                    finished_now.push(i);
                    continue;
                }
                Some(op) => (op.is_global_mem(), matches!(op, WarpOp::Barrier)),
            };
            any_ready_ignoring_throttle = true;
            let wid = self.warps[i].id;
            // Barrier instructions are never gated by throttling: stalling a
            // warp that its CTA is waiting for at a barrier would deadlock
            // the CTA (real schedulers are barrier-aware for the same reason).
            if !next_is_barrier
                && self.scheduler.is_throttled(wid)
                && (next_is_global_mem || !self.scheduler.throttles_loads_only())
            {
                self.warps[i].throttled_cycles += 1;
                continue;
            }
            self.ready_scratch.push(i);
        }
        for i in finished_now {
            self.finish_warp(i, now);
        }

        let picked = {
            let ready = std::mem::take(&mut self.ready_scratch);
            let ctx = SchedulerCtx {
                now,
                warps: &self.warps,
                ready: &ready,
                instructions_executed: self.stats.instructions,
                active_warps: self.warps.iter().filter(|w| !w.is_finished()).count(),
                dram_utilization: self.port.dram_utilization(now.max(1)),
            };
            // The scheduler is consulted even when nothing is ready: policies
            // that maintain throttle/token sets (Best-SWL, CCWS, statPCAL,
            // CIAO) use the call to refresh their state, otherwise an SM
            // whose only runnable warps are currently throttled would stay
            // idle forever.
            let picked = self.scheduler.pick(&ctx);
            // Defensive: only honour picks that were actually offered.
            let picked = picked.filter(|i| ready.contains(i));
            self.ready_scratch = ready;
            picked
        };

        match picked {
            Some(idx) => {
                if self.trace.is_some() && self.busy_since.is_none() {
                    self.busy_since = Some(now);
                }
                self.issue(idx, now);
            }
            None => {
                self.close_busy_span(now);
                if any_ready_ignoring_throttle {
                    self.stats.throttle_only_cycles += 1;
                }
                self.stats.idle_cycles += 1;
            }
        }

        self.maybe_sample(now);
        self.cycle += 1;
    }

    // ----- CTA management ---------------------------------------------------

    fn launch_ctas(&mut self) {
        while self.next_work < self.work.len() {
            let item = &self.work[self.next_work];
            let warps_per_cta = item.warps.max(1);
            let used_slots: usize = self.resident.iter().map(|c| c.warp_slots.len()).sum();
            if used_slots + warps_per_cta > self.config.max_warps_per_sm {
                break;
            }
            // The SMMT key is the launch ordinal: global CTA ids are only
            // unique within one kernel, ordinals are unique on the SM.
            let key = self.launch_ordinal as CtaId;
            if item.shared_mem > 0 && self.smmt.allocate_cta(key, item.shared_mem).is_err() {
                break;
            }
            let item = self.work[self.next_work].clone();
            let mut slots = Vec::with_capacity(warps_per_cta);
            for w in 0..warps_per_cta {
                let program = item.kernel.warp_program(item.cta, w);
                let slot = self.free_slot(&slots);
                let warp = Warp::new(slot as WarpId, key, self.launch_seq, program);
                self.launch_seq += 1;
                if slot == self.warps.len() {
                    self.warps.push(warp);
                } else {
                    self.warps[slot] = warp;
                }
                if self.tenant_of_slot.len() <= slot {
                    self.tenant_of_slot.resize(slot + 1, 0);
                }
                self.tenant_of_slot[slot] = item.tenant;
                self.scheduler.on_warp_launched(slot as WarpId, self.cycle);
                slots.push(slot);
            }
            self.resident.push(ResidentCta {
                key,
                tenant: item.tenant,
                shared_mem: item.shared_mem,
                warp_slots: slots,
                launch_cycle: self.cycle,
            });
            self.launch_ordinal += 1;
            self.next_work += 1;
        }
        self.stats.max_resident_ctas = self.stats.max_resident_ctas.max(self.resident.len());
        self.stats.peak_cta_shared_mem =
            self.stats.peak_cta_shared_mem.max(self.smmt.cta_allocated());
    }

    fn free_slot(&self, also_taken: &[usize]) -> usize {
        let occupied: std::collections::HashSet<usize> = self
            .resident
            .iter()
            .flat_map(|c| c.warp_slots.iter().copied())
            .chain(also_taken.iter().copied())
            .collect();
        (0..self.warps.len()).find(|i| !occupied.contains(i)).unwrap_or(self.warps.len())
    }

    fn retire_and_launch_ctas(&mut self) {
        let mut retired = false;
        let mut i = 0;
        while i < self.resident.len() {
            let all_done = self.resident[i].warp_slots.iter().all(|&s| self.warps[s].is_finished());
            if all_done {
                let cta = &self.resident[i];
                if cta.shared_mem > 0 {
                    let _ = self.smmt.free_cta(cta.key);
                }
                tenant_slot(&mut self.tenants, cta.tenant).ctas_completed += 1;
                if let Some(trace) = &mut self.trace {
                    trace.record(
                        TraceEvent::span(
                            Track::Sm(self.trace_unit),
                            "cta",
                            cta.launch_cycle,
                            self.cycle - cta.launch_cycle,
                            Some(cta.tenant),
                        )
                        .with_arg(cta.key as u64),
                    );
                }
                self.resident.swap_remove(i);
                retired = true;
            } else {
                i += 1;
            }
        }
        if retired {
            self.launch_ctas();
            self.update_redirect_capacity();
        }
    }

    fn update_redirect_capacity(&mut self) {
        if let Some(r) = self.redirect.as_mut() {
            let unused =
                self.config.shared_mem.size_bytes.saturating_sub(self.smmt.cta_allocated());
            r.set_capacity(unused as u64);
        }
    }

    fn finish_warp(&mut self, idx: usize, now: Cycle) {
        let wid = self.warps[idx].id;
        self.warps[idx].finish();
        let tenant = self.tenant_of(wid);
        let entry = tenant_slot(&mut self.tenants, tenant);
        entry.finish_cycle = entry.finish_cycle.max(now);
        self.scheduler.on_warp_finished(wid, now);
    }

    /// Tenant owning warp slot `wid` (slot indices and warp ids coincide).
    fn tenant_of(&self, wid: WarpId) -> TenantId {
        self.tenant_of_slot.get(wid as usize).copied().unwrap_or(0)
    }

    // ----- barriers -----------------------------------------------------------

    fn release_barriers(&mut self) {
        for cta_idx in 0..self.resident.len() {
            let slots = self.resident[cta_idx].warp_slots.clone();
            let all_arrived = slots.iter().all(|&s| {
                matches!(self.warps[s].state, WarpState::AtBarrier) || self.warps[s].is_finished()
            });
            let any_waiting =
                slots.iter().any(|&s| matches!(self.warps[s].state, WarpState::AtBarrier));
            if all_arrived && any_waiting {
                for &s in &slots {
                    if matches!(self.warps[s].state, WarpState::AtBarrier) {
                        self.warps[s].release_barrier();
                    }
                }
            }
        }
    }

    // ----- memory responses ---------------------------------------------------

    fn process_responses(&mut self, now: Cycle) {
        while let Some(&Reverse((when, _))) = self.pending.peek() {
            if when > now {
                break;
            }
            let Reverse((_, ev)) = self.pending.pop().expect("peeked");
            match ev {
                ResponseEvent::MshrFill(block) => {
                    if let Some(entry) = self.mshr.fill(block) {
                        if let FillTarget::SharedMemory { .. } = entry.fill_target {
                            if let Some(r) = self.redirect.as_mut() {
                                let wid = entry.waiting_warps.first().copied().unwrap_or(0);
                                if let Some(ev) = r.fill(block, wid) {
                                    if ev.owner != wid {
                                        self.stats.redirect_cross_warp_evictions += 1;
                                        self.interference.record(ev.owner, wid);
                                    }
                                    self.notify_event(CacheEvent {
                                        kind: CacheKind::Redirect,
                                        wid,
                                        block_addr: block,
                                        is_write: false,
                                        outcome: CacheEventOutcome::Miss,
                                        evicted: Some(ev),
                                        now,
                                    });
                                }
                            }
                        }
                        for wid in entry.waiting_warps {
                            if let Some(w) = self.warps.get_mut(wid as usize) {
                                w.complete_mem();
                            }
                        }
                    }
                }
                ResponseEvent::WakeWarp(wid) => {
                    if let Some(w) = self.warps.get_mut(wid as usize) {
                        w.complete_mem();
                    }
                }
            }
        }
    }

    fn notify_event(&mut self, ev: CacheEvent) {
        self.scheduler.on_cache_event(&ev);
    }

    // ----- issue --------------------------------------------------------------

    fn issue(&mut self, idx: usize, now: Cycle) {
        let op = match self.warps[idx].take_op() {
            Some(op) => op,
            None => return,
        };
        let wid = self.warps[idx].id;
        let tenant = self.tenant_of(wid);
        let is_mem = op.is_global_mem();
        self.stats.instructions += 1;
        tenant_slot(&mut self.tenants, tenant).instructions += 1;
        match op {
            WarpOp::Compute { cycles } => {
                self.warps[idx].start_compute(now + cycles.max(1) as Cycle);
            }
            WarpOp::Barrier => {
                self.stats.barriers += 1;
                self.warps[idx].enter_barrier();
            }
            WarpOp::Load { space: MemSpace::Shared, pattern }
            | WarpOp::Store { space: MemSpace::Shared, pattern } => {
                self.stats.shared_mem_instructions += 1;
                let lanes: Vec<u32> = pattern
                    .lane_addresses()
                    .iter()
                    .map(|&a| (a % self.config.shared_mem.size_bytes as u64) as u32)
                    .collect();
                let lat = self.shared_mem.access(&lanes);
                self.warps[idx].start_compute(now + lat);
            }
            WarpOp::Load { space: MemSpace::Global, pattern } => {
                self.issue_global(idx, wid, &pattern, false, now);
            }
            WarpOp::Store { space: MemSpace::Global, pattern } => {
                self.issue_global(idx, wid, &pattern, true, now);
            }
        }
        self.scheduler.on_issue(wid, is_mem, now);
    }

    fn issue_global(
        &mut self,
        idx: usize,
        wid: WarpId,
        pattern: &MemPattern,
        is_write: bool,
        now: Cycle,
    ) {
        let tenant = self.tenant_of(wid);
        self.stats.mem_instructions += 1;
        tenant_slot(&mut self.tenants, tenant).mem_instructions += 1;
        let blocks = coalesce(pattern);
        // Structural back-pressure: if the MSHR file cannot possibly hold the
        // worst case number of new entries, replay the whole instruction on a
        // later cycle (the warp keeps its pending op and stays ready).
        if !is_write {
            let free = self.config.mshr_entries - self.mshr.in_flight();
            if blocks.len() > free + blocks.iter().filter(|b| self.mshr.probe(**b)).count() {
                // Put the op back and charge one cycle of replay delay.
                self.stats.instructions -= 1;
                self.stats.mem_instructions -= 1;
                let entry = tenant_slot(&mut self.tenants, tenant);
                entry.instructions -= 1;
                entry.mem_instructions -= 1;
                self.warps[idx].state = WarpState::Executing { until: now + 1 };
                self.requeue_op(idx, pattern.clone(), is_write);
                return;
            }
        }

        self.stats.mem_transactions += blocks.len() as u64;
        tenant_slot(&mut self.tenants, tenant).mem_transactions += blocks.len() as u64;
        self.warps[idx].mem_transactions += blocks.len() as u64;

        let route = self.scheduler.route(wid);
        let mut outstanding = 0u32;
        let mut immediate_latency: Cycle = self.config.l1d.latency;

        for &block in &blocks {
            match (route, is_write) {
                (MemRoute::Bypass, false) => {
                    self.stats.bypassed_requests += 1;
                    let arrive =
                        self.interconnect.transfer_tagged(self.config.l1d.line_size, now, tenant);
                    self.mem_read(block, wid, tenant, arrive, true, ResponseEvent::WakeWarp(wid));
                    outstanding += 1;
                }
                (MemRoute::Bypass, true) => {
                    self.stats.bypassed_requests += 1;
                    let arrive =
                        self.interconnect.transfer_tagged(self.config.l1d.line_size, now, tenant);
                    self.port.write(block, wid, tenant, arrive, true);
                }
                (MemRoute::RedirectCache, w) if self.redirect.is_some() => {
                    if let Some(extra) = self.access_redirect(wid, block, w, now, &mut outstanding)
                    {
                        immediate_latency = immediate_latency.max(extra);
                    }
                }
                _ => {
                    let extra = self.access_l1d(wid, block, is_write, now, &mut outstanding);
                    immediate_latency = immediate_latency.max(extra);
                }
            }
        }
        self.warps[idx].start_mem(outstanding, now + immediate_latency);
    }

    /// Issues a read to the downstream port; a synchronous (private) port
    /// yields the completion immediately, a deferred one delivers `ev` after
    /// the epoch barrier.
    fn mem_read(
        &mut self,
        block: Addr,
        wid: WarpId,
        tenant: TenantId,
        arrive: Cycle,
        bypass: bool,
        ev: ResponseEvent,
    ) {
        if let Some(done) = self.port.read(block, wid, tenant, arrive, bypass, ev) {
            self.pending.push(Reverse((done, ev)));
        }
    }

    fn requeue_op(&mut self, idx: usize, pattern: MemPattern, is_write: bool) {
        // Reconstruct the op and stash it back as pending so it replays.
        let op = if is_write {
            WarpOp::Store { space: MemSpace::Global, pattern }
        } else {
            WarpOp::Load { space: MemSpace::Global, pattern }
        };
        // `take_op` already consumed the pending op; restore it.
        self.warps[idx].restore_op(op);
    }

    /// Normal L1D path for one block. Returns the immediate latency to charge
    /// if the access completes without an outstanding miss.
    fn access_l1d(
        &mut self,
        wid: WarpId,
        block: Addr,
        is_write: bool,
        now: Cycle,
        outstanding: &mut u32,
    ) -> Cycle {
        let tenant = self.tenant_of(wid);
        let res = self.l1d.access(block, wid, is_write);
        {
            // Mirror the L1D's own counters per tenant so Σ tenants == cache.
            let entry = tenant_slot(&mut self.tenants, tenant);
            entry.l1d_accesses += 1;
            if matches!(res.outcome, gpu_mem::cache::AccessOutcome::Hit) {
                entry.l1d_hits += 1;
            }
        }
        if let Some(ev) = res.evicted {
            if ev.owner != wid {
                self.stats.cross_warp_evictions += 1;
                self.interference.record(ev.owner, wid);
            }
        }
        let outcome = match res.outcome {
            gpu_mem::cache::AccessOutcome::Hit => {
                CacheEventOutcome::Hit { owner: res.hit_owner.unwrap_or(wid) }
            }
            _ => CacheEventOutcome::Miss,
        };
        self.notify_event(CacheEvent {
            kind: CacheKind::L1d,
            wid,
            block_addr: block,
            is_write,
            outcome,
            evicted: res.evicted,
            now,
        });

        match res.outcome {
            gpu_mem::cache::AccessOutcome::Hit => {
                if is_write {
                    // Write-through: the write still consumes downstream bandwidth,
                    // but does not block the warp.
                    let arrive =
                        self.interconnect.transfer_tagged(self.config.l1d.line_size, now, tenant);
                    self.port.write(block, wid, tenant, arrive, false);
                }
                self.config.l1d.latency
            }
            gpu_mem::cache::AccessOutcome::MissNoAllocate => {
                // Global store miss under write-no-allocate: forward downstream.
                let arrive =
                    self.interconnect.transfer_tagged(self.config.l1d.line_size, now, tenant);
                self.port.write(block, wid, tenant, arrive, false);
                self.config.l1d.latency
            }
            gpu_mem::cache::AccessOutcome::Miss => {
                match self.mshr.allocate(block, wid, now, FillTarget::L1d) {
                    Ok(gpu_mem::mshr::MshrAllocation::New) => {
                        let arrive = self.interconnect.transfer_tagged(
                            self.config.l1d.line_size,
                            now,
                            tenant,
                        );
                        self.mem_read(
                            block,
                            wid,
                            tenant,
                            arrive,
                            false,
                            ResponseEvent::MshrFill(block),
                        );
                        *outstanding += 1;
                    }
                    Ok(gpu_mem::mshr::MshrAllocation::Merged) => {
                        *outstanding += 1;
                    }
                    Err(_) => {
                        // Should be rare thanks to the pre-check; model as a
                        // pipeline bubble: charge a long immediate latency.
                        return self.config.l1d.latency + 20;
                    }
                }
                self.config.l1d.latency
            }
        }
    }

    /// CIAO redirect path for one block (§IV-B). Returns the immediate
    /// latency to charge when the access completes without an outstanding
    /// miss, or `None` if it fell back to the L1D path internally.
    fn access_redirect(
        &mut self,
        wid: WarpId,
        block: Addr,
        is_write: bool,
        now: Cycle,
        outstanding: &mut u32,
    ) -> Option<Cycle> {
        let tenant = self.tenant_of(wid);
        // Coherence: check the L1D tag array first; a resident copy is
        // migrated (evict to response queue, invalidate, fill the shared
        // memory), which hides the cold miss.
        if self.l1d.probe(block) {
            let _ = self.l1d.invalidate(block);
            self.stats.l1d_migrations += 1;
            if let Some(r) = self.redirect.as_mut() {
                if let Some(ev) = r.fill(block, wid) {
                    if ev.owner != wid {
                        self.stats.redirect_cross_warp_evictions += 1;
                        self.interference.record(ev.owner, wid);
                    }
                }
            }
            self.stats.redirect_hits += 1;
            self.notify_event(CacheEvent {
                kind: CacheKind::Redirect,
                wid,
                block_addr: block,
                is_write,
                outcome: CacheEventOutcome::Hit { owner: wid },
                evicted: None,
                now,
            });
            // Serialized tag check + scratchpad write.
            return Some(self.config.l1d.latency + self.config.shared_mem.latency);
        }

        let lookup = self.redirect.as_mut().expect("caller checked").lookup(block, wid, is_write);
        match lookup {
            RedirectLookup::Hit { latency } => {
                self.stats.redirect_hits += 1;
                self.notify_event(CacheEvent {
                    kind: CacheKind::Redirect,
                    wid,
                    block_addr: block,
                    is_write,
                    outcome: CacheEventOutcome::Hit { owner: wid },
                    evicted: None,
                    now,
                });
                if is_write {
                    // Write-through downstream, off the critical path.
                    let arrive =
                        self.interconnect.transfer_tagged(self.config.l1d.line_size, now, tenant);
                    self.port.write(block, wid, tenant, arrive, false);
                }
                Some(latency)
            }
            RedirectLookup::Miss => {
                self.stats.redirect_misses += 1;
                self.notify_event(CacheEvent {
                    kind: CacheKind::Redirect,
                    wid,
                    block_addr: block,
                    is_write,
                    outcome: CacheEventOutcome::Miss,
                    evicted: None,
                    now,
                });
                if is_write {
                    let arrive =
                        self.interconnect.transfer_tagged(self.config.l1d.line_size, now, tenant);
                    self.port.write(block, wid, tenant, arrive, false);
                    return Some(self.config.shared_mem.latency);
                }
                match self.mshr.allocate(
                    block,
                    wid,
                    now,
                    FillTarget::SharedMemory { shared_addr: 0 },
                ) {
                    Ok(gpu_mem::mshr::MshrAllocation::New) => {
                        let arrive = self.interconnect.transfer_tagged(
                            self.config.l1d.line_size,
                            now,
                            tenant,
                        );
                        self.mem_read(
                            block,
                            wid,
                            tenant,
                            arrive,
                            false,
                            ResponseEvent::MshrFill(block),
                        );
                        *outstanding += 1;
                    }
                    Ok(gpu_mem::mshr::MshrAllocation::Merged) => {
                        *outstanding += 1;
                    }
                    Err(_) => return Some(self.config.shared_mem.latency + 20),
                }
                Some(self.config.shared_mem.latency)
            }
            RedirectLookup::Unavailable => {
                // No capacity: fall back to the normal L1D path.
                Some(self.access_l1d(wid, block, is_write, now, outstanding))
            }
        }
    }

    // ----- sampling and finalisation -------------------------------------------

    fn maybe_sample(&mut self, now: Cycle) {
        let interval = self.config.sample_interval_insts;
        if self.stats.instructions < self.snapshot.instructions + interval {
            return;
        }
        let d_inst = self.stats.instructions - self.snapshot.instructions;
        let d_cycles = (now - self.snapshot.cycle).max(1);
        let interference_now =
            self.stats.cross_warp_evictions + self.stats.redirect_cross_warp_evictions;
        let d_interference = interference_now - self.snapshot.interference;
        let l1d = self.l1d.stats();
        let d_acc = l1d.accesses() - self.snapshot.l1d_accesses;
        let d_hits = l1d.hits() - self.snapshot.l1d_hits;
        let active = self
            .warps
            .iter()
            .filter(|w| !w.is_finished() && !self.scheduler.is_throttled(w.id))
            .count();
        self.time_series.push(TimeSeriesPoint {
            instructions: self.stats.instructions,
            cycle: now,
            ipc: d_inst as f64 / d_cycles as f64,
            active_warps: active,
            interference: d_interference,
            l1d_hit_rate: if d_acc == 0 { 0.0 } else { d_hits as f64 / d_acc as f64 },
        });
        self.snapshot = SampleSnapshot {
            instructions: self.stats.instructions,
            cycle: now,
            interference: interference_now,
            l1d_accesses: l1d.accesses(),
            l1d_hits: l1d.hits(),
        };
    }

    /// Copies end-of-run counters (cycle count, cache statistics, redirect
    /// utilisation) into [`Sm::stats`]. Idempotent; `run` calls it, and the
    /// chip engine calls it for epoch-driven SMs. An SM on a deferred port
    /// leaves its `l2`/`dram` fields empty — those live in the shared
    /// backend and are filled in at the chip level.
    pub fn finalize_stats(&mut self) {
        self.stats.cycles = self.cycle;
        self.stats.l1d = *self.l1d.stats();
        if let Some(pstats) = self.port.partition_stats() {
            self.stats.l2 = pstats.l2;
            self.stats.dram = pstats.dram;
        }
        if let Some(r) = self.redirect.as_ref() {
            self.stats.redirect_utilization = r.utilization();
        }
        // Per-tenant closing: a tenant is done when none of its work is
        // pending and none of its resident warps are unfinished; tenants cut
        // short (cap hit) report the SM's final cycle as their finish point.
        for entry in &mut self.tenants {
            entry.done = true;
        }
        for item in &self.work[self.next_work.min(self.work.len())..] {
            tenant_slot(&mut self.tenants, item.tenant).done = false;
        }
        for i in 0..self.resident.len() {
            let unfinished =
                self.resident[i].warp_slots.iter().any(|&s| !self.warps[s].is_finished());
            if unfinished {
                let tenant = self.resident[i].tenant;
                tenant_slot(&mut self.tenants, tenant).done = false;
            }
        }
        let cycle = self.cycle;
        for entry in &mut self.tenants {
            if !entry.done {
                entry.finish_cycle = cycle;
            }
        }
        for (t, &bytes) in self.interconnect.tenant_bytes().to_vec().iter().enumerate() {
            tenant_slot(&mut self.tenants, t as TenantId).xbar_bytes = bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ClosureKernel, KernelInfo};
    use crate::scheduler::GtoScheduler;
    use crate::trace::{VecProgram, WarpOp};

    fn simple_kernel(ctas: usize, warps: usize, ops_per_warp: usize) -> Box<dyn Kernel> {
        let info = KernelInfo {
            name: "unit".into(),
            num_ctas: ctas,
            warps_per_cta: warps,
            shared_mem_per_cta: 0,
        };
        Box::new(ClosureKernel::new(info, move |cta, w| {
            let mut ops = Vec::new();
            for i in 0..ops_per_warp {
                let addr = (cta as u64 * 64 + w as u64 * 8 + i as u64) * 128;
                ops.push(WarpOp::coalesced_load(addr));
                ops.push(WarpOp::alu());
            }
            Box::new(VecProgram::new(ops))
        }))
    }

    fn small_config() -> GpuConfig {
        GpuConfig::gtx480().with_sample_interval(50)
    }

    #[test]
    fn runs_to_completion() {
        let mut sm =
            Sm::new(small_config(), simple_kernel(2, 4, 10), Box::new(GtoScheduler::new()), None);
        sm.run();
        assert!(sm.is_done());
        let s = sm.stats();
        // 2 CTAs * 4 warps * 20 ops each
        assert_eq!(s.instructions, 2 * 4 * 20);
        assert_eq!(s.mem_instructions, 2 * 4 * 10);
        assert!(s.cycles > 0);
        assert!(s.ipc() > 0.0);
    }

    #[test]
    fn barrier_synchronises_cta() {
        let info =
            KernelInfo { name: "bar".into(), num_ctas: 1, warps_per_cta: 2, shared_mem_per_cta: 0 };
        let kernel = ClosureKernel::new(info, |_cta, w| {
            let mut ops = vec![];
            if w == 0 {
                // Warp 0 does a long memory op before the barrier.
                ops.push(WarpOp::coalesced_load(0x10000));
            }
            ops.push(WarpOp::Barrier);
            ops.push(WarpOp::alu());
            Box::new(VecProgram::new(ops))
        });
        let mut sm = Sm::new(small_config(), Box::new(kernel), Box::new(GtoScheduler::new()), None);
        sm.run();
        assert!(sm.is_done());
        assert_eq!(sm.stats().barriers, 2);
    }

    #[test]
    fn cta_launch_respects_warp_capacity() {
        // 4 CTAs of 24 warps each: only 2 fit at a time on a 48-warp SM.
        let mut sm =
            Sm::new(small_config(), simple_kernel(4, 24, 2), Box::new(GtoScheduler::new()), None);
        assert_eq!(sm.stats.max_resident_ctas.max(sm.resident.len()), 2);
        sm.run();
        assert!(sm.is_done());
        assert_eq!(sm.stats().instructions, 4 * 24 * 4);
    }

    #[test]
    fn shared_mem_limits_cta_residency() {
        let info = KernelInfo {
            name: "smem".into(),
            num_ctas: 4,
            warps_per_cta: 2,
            shared_mem_per_cta: 30 * 1024,
        };
        let kernel =
            ClosureKernel::new(info, |_c, _w| Box::new(VecProgram::new(vec![WarpOp::alu()])));
        let mut sm = Sm::new(small_config(), Box::new(kernel), Box::new(GtoScheduler::new()), None);
        // 30 KB per CTA on a 48 KB scratchpad: only one CTA resident at a time.
        assert_eq!(sm.resident.len(), 1);
        sm.run();
        assert!(sm.is_done());
        assert_eq!(sm.stats().peak_cta_shared_mem, 30 * 1024);
    }

    #[test]
    fn instruction_cap_stops_simulation() {
        let cfg = small_config().with_max_instructions(37);
        let mut sm = Sm::new(cfg, simple_kernel(1, 8, 1000), Box::new(GtoScheduler::new()), None);
        sm.run();
        assert!(!sm.is_done());
        assert!(sm.stats().instructions >= 37);
        assert!(sm.stats().instructions < 37 + 8);
    }

    #[test]
    fn repeated_loads_hit_in_l1d() {
        let info = KernelInfo {
            name: "hits".into(),
            num_ctas: 1,
            warps_per_cta: 1,
            shared_mem_per_cta: 0,
        };
        let kernel = ClosureKernel::new(info, |_c, _w| {
            let mut ops = Vec::new();
            for _ in 0..50 {
                ops.push(WarpOp::coalesced_load(0x8000));
            }
            Box::new(VecProgram::new(ops))
        });
        let mut sm = Sm::new(small_config(), Box::new(kernel), Box::new(GtoScheduler::new()), None);
        sm.run();
        let s = sm.stats();
        assert_eq!(s.l1d.misses(), 1);
        assert_eq!(s.l1d.hits(), 49);
    }

    #[test]
    fn thrashing_warps_record_interference() {
        // The Figure 3a scenario: warp 0 re-references a small block set (it
        // has data locality), while warp 1 streams a large array through the
        // same cache, evicting warp 0's lines; warp 0's refills in turn evict
        // warp 1's freshly inserted lines.
        let info = KernelInfo {
            name: "thrash".into(),
            num_ctas: 1,
            warps_per_cta: 2,
            shared_mem_per_cta: 0,
        };
        let kernel = ClosureKernel::new(info, |_c, w| {
            let mut ops = Vec::new();
            if w == 0 {
                for _rep in 0..64 {
                    for i in 0..64u64 {
                        ops.push(WarpOp::coalesced_load(i * 128));
                    }
                }
            } else {
                for i in 0..4096u64 {
                    ops.push(WarpOp::coalesced_load((1 << 20) + i * 128));
                }
            }
            Box::new(VecProgram::new(ops))
        });
        let mut sm = Sm::new(small_config(), Box::new(kernel), Box::new(GtoScheduler::new()), None);
        sm.run();
        let s = sm.stats();
        assert!(s.cross_warp_evictions > 0, "expected cross-warp evictions");
        assert!(sm.interference_matrix().total() > 0);
    }

    #[test]
    fn time_series_sampled() {
        let cfg = small_config().with_sample_interval(10);
        let mut sm = Sm::new(cfg, simple_kernel(1, 4, 50), Box::new(GtoScheduler::new()), None);
        sm.run();
        assert!(!sm.time_series().is_empty());
        let pts = sm.time_series().points();
        for w in pts.windows(2) {
            assert!(w[1].instructions > w[0].instructions);
            assert!(w[1].cycle >= w[0].cycle);
        }
    }

    #[test]
    fn stores_do_not_block_warp() {
        let info = KernelInfo {
            name: "stores".into(),
            num_ctas: 1,
            warps_per_cta: 1,
            shared_mem_per_cta: 0,
        };
        let kernel = ClosureKernel::new(info, |_c, _w| {
            let ops = (0..20u64).map(|i| WarpOp::coalesced_store(i * 128)).collect();
            Box::new(VecProgram::new(ops))
        });
        let mut sm = Sm::new(small_config(), Box::new(kernel), Box::new(GtoScheduler::new()), None);
        sm.run();
        // 20 stores with no load stalls should finish quickly (well under the
        // DRAM round-trip × 20 it would take if stores blocked).
        assert!(
            sm.stats().cycles < 500,
            "stores should not serialise on DRAM, took {}",
            sm.stats().cycles
        );
    }

    #[test]
    fn tracing_never_perturbs_execution_and_records_spans() {
        let run = |traced: bool| {
            let mut sm = Sm::new(
                small_config(),
                simple_kernel(2, 4, 10),
                Box::new(GtoScheduler::new()),
                None,
            );
            if traced {
                sm.set_trace(7);
            }
            sm.run();
            let events = sm.take_trace().map(|mut t| t.take()).unwrap_or_default();
            (sm.stats().clone(), sm.cycle(), events)
        };
        let (plain_stats, plain_cycle, plain_events) = run(false);
        let (traced_stats, traced_cycle, events) = run(true);
        assert_eq!(plain_cycle, traced_cycle, "tracing must not change timing");
        assert_eq!(plain_stats.instructions, traced_stats.instructions);
        assert_eq!(plain_stats.idle_cycles, traced_stats.idle_cycles);
        assert!(plain_events.is_empty());
        assert!(events.iter().all(|e| e.track == Track::Sm(7)));
        assert!(events.iter().any(|e| e.name == "busy" && e.dur > 0));
        let ctas: Vec<_> = events.iter().filter(|e| e.name == "cta").collect();
        assert_eq!(ctas.len(), 2, "one lifetime span per completed CTA");
        assert!(ctas.iter().all(|e| e.tenant == Some(0)));
    }

    #[test]
    fn event_and_stepped_runs_trace_identical_sim_spans() {
        let run = |event: bool| {
            let mut sm = Sm::new(
                small_config(),
                simple_kernel(2, 4, 10),
                Box::new(GtoScheduler::new()),
                None,
            );
            sm.set_trace(0);
            if event {
                sm.run_event();
            } else {
                sm.run();
            }
            sm.take_trace().expect("tracing on").take()
        };
        let stepped = run(false);
        let event = run(true);
        assert_eq!(
            sim_obs::chrome_trace_json(&stepped, &[], false),
            sim_obs::chrome_trace_json(&event, &[], false),
            "canonical (sim-category) trace must be backend-invariant"
        );
        assert!(
            event.iter().any(|e| e.name == "idle-skip"),
            "the event backend records engine-category skips"
        );
        assert!(stepped.iter().all(|e| e.name != "idle-skip"));
    }

    #[test]
    fn shared_memory_ops_execute() {
        let info = KernelInfo {
            name: "shmem".into(),
            num_ctas: 1,
            warps_per_cta: 1,
            shared_mem_per_cta: 1024,
        };
        let kernel = ClosureKernel::new(info, |_c, _w| {
            let ops = vec![
                WarpOp::Load {
                    space: MemSpace::Shared,
                    pattern: MemPattern::Strided { base: 0, stride: 4, lanes: 32 },
                },
                WarpOp::Store {
                    space: MemSpace::Shared,
                    pattern: MemPattern::Strided { base: 0, stride: 256, lanes: 8 },
                },
            ];
            Box::new(VecProgram::new(ops))
        });
        let mut sm = Sm::new(small_config(), Box::new(kernel), Box::new(GtoScheduler::new()), None);
        sm.run();
        assert_eq!(sm.stats().shared_mem_instructions, 2);
        assert_eq!(sm.stats().mem_instructions, 0);
    }
}
