//! The time-ordered event queue driving the event-driven timing core.
//!
//! [`TimeQueue`] tracks, for a fixed set of simulation units (the SMs of a
//! chip), the cycle at which each unit next has work to do — a warp wakeup, a
//! reply delivery, a dispatch boundary. The event engine pops units in
//! ascending `(time, unit, seq)` order, so advancement order is a pure
//! function of simulated time and unit index: results can never depend on
//! host thread scheduling, and ties always break the same way.
//!
//! Each unit has at most one *live* entry. Rescheduling a unit supersedes its
//! previous entry lazily: the stale heap node stays in place and is discarded
//! when popped (its sequence number no longer matches the unit's current
//! generation). This keeps [`TimeQueue::schedule`] at one heap push instead
//! of a linear scan.

use gpu_mem::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A min-heap of `(time, unit, seq)` wakeup entries with per-unit lazy
/// invalidation. See the module docs for the model.
#[derive(Debug, Default)]
pub struct TimeQueue {
    /// Min-heap over `(time, unit, seq)`.
    heap: BinaryHeap<Reverse<(Cycle, usize, u64)>>,
    /// Per-unit generation: the `seq` of the unit's live entry, or
    /// `NO_ENTRY` when the unit is not scheduled.
    live: Vec<u64>,
    /// Per-unit time of the live entry (meaningful only while the matching
    /// `live` slot is not `NO_ENTRY`) — makes [`TimeQueue::scheduled_at`] a
    /// plain array read instead of a heap scan.
    times: Vec<Cycle>,
    /// Monotonic sequence stamped onto every pushed entry.
    seq: u64,
}

/// Sentinel generation for "this unit has no live entry".
const NO_ENTRY: u64 = u64::MAX;

impl TimeQueue {
    /// An empty queue tracking `units` units (indices `0..units`).
    pub fn new(units: usize) -> Self {
        TimeQueue {
            heap: BinaryHeap::with_capacity(units),
            live: vec![NO_ENTRY; units],
            times: vec![0; units],
            seq: 0,
        }
    }

    /// Number of units with a live entry.
    pub fn len(&self) -> usize {
        self.live.iter().filter(|&&g| g != NO_ENTRY).count()
    }

    /// True when no unit is scheduled.
    pub fn is_empty(&self) -> bool {
        self.live.iter().all(|&g| g == NO_ENTRY)
    }

    /// Schedules (or reschedules) `unit` to wake at `time`, superseding any
    /// previous entry for the unit.
    pub fn schedule(&mut self, unit: usize, time: Cycle) {
        assert!(unit < self.live.len(), "unit {unit} out of range");
        let seq = self.seq;
        self.seq += 1;
        self.live[unit] = seq;
        self.times[unit] = time;
        self.heap.push(Reverse((time, unit, seq)));
    }

    /// Pulls `unit`'s wakeup *forward* to `time` if it is currently scheduled
    /// later (or not at all); a unit already due earlier keeps its slot. Used
    /// when an external event (a reply delivery, newly dealt work) may wake a
    /// unit before its self-reported next event.
    pub fn schedule_min(&mut self, unit: usize, time: Cycle) {
        match self.scheduled_at(unit) {
            Some(t) if t <= time => {}
            _ => self.schedule(unit, time),
        }
    }

    /// The time `unit` is currently scheduled for, if any.
    pub fn scheduled_at(&self, unit: usize) -> Option<Cycle> {
        let live = *self.live.get(unit)?;
        if live == NO_ENTRY {
            return None;
        }
        Some(self.times[unit])
    }

    /// The earliest scheduled time, if any unit is scheduled.
    pub fn peek_time(&mut self) -> Option<Cycle> {
        self.skim();
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Pops the earliest live entry, returning `(time, unit)`; `None` when no
    /// unit is scheduled. Ties (same time) break by ascending unit index.
    pub fn pop_next(&mut self) -> Option<(Cycle, usize)> {
        while let Some(Reverse((time, unit, seq))) = self.heap.pop() {
            if self.live[unit] == seq {
                self.live[unit] = NO_ENTRY;
                return Some((time, unit));
            }
        }
        None
    }

    /// Pops the earliest live entry due at or before `now`, or `None` when
    /// the earliest event lies beyond `now`.
    pub fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, usize)> {
        if self.peek_time()? > now {
            return None;
        }
        self.pop_next()
    }

    /// Discards stale entries sitting on top of the heap so `peek` reflects
    /// the earliest *live* entry.
    fn skim(&mut self) {
        while let Some(Reverse((_, unit, seq))) = self.heap.peek() {
            if self.live[*unit] == *seq {
                break;
            }
            self.heap.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_unit_order() {
        let mut q = TimeQueue::new(4);
        q.schedule(2, 10);
        q.schedule(0, 10);
        q.schedule(3, 5);
        q.schedule(1, 20);
        assert_eq!(q.pop_next(), Some((5, 3)));
        assert_eq!(q.pop_next(), Some((10, 0)), "ties break by unit index");
        assert_eq!(q.pop_next(), Some((10, 2)));
        assert_eq!(q.pop_next(), Some((20, 1)));
        assert_eq!(q.pop_next(), None);
    }

    #[test]
    fn reschedule_supersedes_previous_entry() {
        let mut q = TimeQueue::new(2);
        q.schedule(0, 100);
        q.schedule(1, 50);
        q.schedule(0, 10); // supersedes the entry at 100
        assert_eq!(q.pop_next(), Some((10, 0)));
        assert_eq!(q.pop_next(), Some((50, 1)));
        assert_eq!(q.pop_next(), None, "stale entry at 100 was discarded");
    }

    #[test]
    fn schedule_min_only_moves_wakeups_forward() {
        let mut q = TimeQueue::new(2);
        q.schedule(0, 30);
        q.schedule_min(0, 40); // later: ignored
        assert_eq!(q.scheduled_at(0), Some(30));
        q.schedule_min(0, 20); // earlier: supersedes
        assert_eq!(q.scheduled_at(0), Some(20));
        q.schedule_min(1, 15); // unscheduled unit: plain schedule
        assert_eq!(q.pop_next(), Some((15, 1)));
        assert_eq!(q.pop_next(), Some((20, 0)));
    }

    #[test]
    fn pop_due_respects_the_horizon() {
        let mut q = TimeQueue::new(3);
        q.schedule(0, 5);
        q.schedule(1, 10);
        q.schedule(2, 99);
        assert_eq!(q.pop_due(10), Some((5, 0)));
        assert_eq!(q.pop_due(10), Some((10, 1)));
        assert_eq!(q.pop_due(10), None, "unit 2 is beyond the horizon");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_due(99), Some((99, 2)));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_stale_entries() {
        let mut q = TimeQueue::new(1);
        q.schedule(0, 7);
        q.schedule(0, 42);
        assert_eq!(q.peek_time(), Some(42));
    }
}
