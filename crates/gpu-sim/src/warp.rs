//! Warp state machine.
//!
//! Each warp owns its [`WarpProgram`] and a small amount of scoreboard-like
//! state: what it is currently waiting for (a long-latency compute result, an
//! outstanding memory request, a barrier) and the scheduling flags used by
//! the paper's mechanisms — the 1-bit *active* flag `V` and the 1-bit
//! *isolation* flag `I` that §IV-A adds to the warp list so the scheduler can
//! tell whether a warp is active (V=1, I=0), isolated to the shared-memory
//! cache (V=1, I=1), or stalled/throttled (V=0).

use crate::trace::{WarpOp, WarpProgram};
use gpu_mem::{CtaId, Cycle, WarpId};

/// Execution state of a warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpState {
    /// Ready to issue its next operation.
    Ready,
    /// Executing a compute instruction until the given cycle.
    Executing {
        /// Cycle at which the result is written back and the warp is ready again.
        until: Cycle,
    },
    /// Waiting for outstanding memory requests to return.
    WaitingMem {
        /// Number of block transactions still in flight.
        outstanding: u32,
    },
    /// Waiting at a CTA barrier.
    AtBarrier,
    /// All operations executed.
    Finished,
}

/// A warp resident on the SM.
pub struct Warp {
    /// SM-local warp identifier (0..max_warps_per_sm).
    pub id: WarpId,
    /// CTA this warp belongs to.
    pub cta: CtaId,
    /// Launch order (used by GTO's "oldest" tie-break).
    pub launch_seq: u64,
    /// Execution state.
    pub state: WarpState,
    /// Active flag `V` (cleared when a scheduler stalls/throttles the warp).
    pub active_flag: bool,
    /// Isolation flag `I` (set when CIAO redirects the warp's global accesses
    /// to the shared-memory cache).
    pub isolated_flag: bool,
    /// Dynamic instructions issued by this warp.
    pub instructions: u64,
    /// Global-memory block transactions issued by this warp.
    pub mem_transactions: u64,
    /// Cycles this warp spent unable to issue because a scheduler throttled it.
    pub throttled_cycles: u64,
    /// Operation fetched from the program but not yet successfully issued
    /// (kept across cycles when a structural hazard forces a replay).
    pending_op: Option<WarpOp>,
    /// The warp's operation stream.
    program: Box<dyn WarpProgram>,
}

impl std::fmt::Debug for Warp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Warp")
            .field("id", &self.id)
            .field("cta", &self.cta)
            .field("state", &self.state)
            .field("V", &self.active_flag)
            .field("I", &self.isolated_flag)
            .field("instructions", &self.instructions)
            .finish()
    }
}

impl Warp {
    /// Creates a warp executing `program`.
    pub fn new(id: WarpId, cta: CtaId, launch_seq: u64, program: Box<dyn WarpProgram>) -> Self {
        Warp {
            id,
            cta,
            launch_seq,
            state: WarpState::Ready,
            active_flag: true,
            isolated_flag: false,
            instructions: 0,
            mem_transactions: 0,
            throttled_cycles: 0,
            pending_op: None,
            program,
        }
    }

    /// True when the warp has finished its program.
    pub fn is_finished(&self) -> bool {
        self.state == WarpState::Finished
    }

    /// True when the warp could issue an operation this cycle (ignoring
    /// scheduler throttling, which is the scheduler's decision).
    pub fn is_ready(&self, now: Cycle) -> bool {
        match self.state {
            WarpState::Ready => true,
            WarpState::Executing { until } => until <= now,
            _ => false,
        }
    }

    /// Fetches (or re-fetches) the operation the warp wants to issue next.
    /// Returns `None` when the program is exhausted, in which case the caller
    /// should mark the warp finished.
    pub fn peek_op(&mut self) -> Option<&WarpOp> {
        if self.pending_op.is_none() {
            self.pending_op = self.program.next_op();
        }
        self.pending_op.as_ref()
    }

    /// Consumes the pending operation after it has been successfully issued.
    pub fn take_op(&mut self) -> Option<WarpOp> {
        self.pending_op.take()
    }

    /// Puts an operation back as pending so it is replayed on a later cycle
    /// (used when a structural hazard such as a full MSHR file prevents the
    /// operation from issuing).
    pub fn restore_op(&mut self, op: WarpOp) {
        debug_assert!(self.pending_op.is_none(), "restoring over an unconsumed op");
        self.pending_op = Some(op);
    }

    /// Marks the warp as executing a compute instruction finishing at `until`.
    pub fn start_compute(&mut self, until: Cycle) {
        self.state = WarpState::Executing { until };
        self.instructions += 1;
    }

    /// Marks the warp as waiting for `outstanding` memory transactions.
    /// An `outstanding` of zero (e.g. all accesses hit and completed
    /// immediately) leaves the warp executing until `fallback_until`.
    pub fn start_mem(&mut self, outstanding: u32, fallback_until: Cycle) {
        self.instructions += 1;
        if outstanding == 0 {
            self.state = WarpState::Executing { until: fallback_until };
        } else {
            self.state = WarpState::WaitingMem { outstanding };
        }
    }

    /// Records the completion of one outstanding memory transaction;
    /// the warp becomes ready when the last one returns.
    pub fn complete_mem(&mut self) {
        if let WarpState::WaitingMem { outstanding } = self.state {
            if outstanding <= 1 {
                self.state = WarpState::Ready;
            } else {
                self.state = WarpState::WaitingMem { outstanding: outstanding - 1 };
            }
        }
    }

    /// Puts the warp at a barrier.
    pub fn enter_barrier(&mut self) {
        self.instructions += 1;
        self.state = WarpState::AtBarrier;
    }

    /// Releases the warp from a barrier.
    pub fn release_barrier(&mut self) {
        debug_assert_eq!(self.state, WarpState::AtBarrier);
        self.state = WarpState::Ready;
    }

    /// Marks the warp as finished.
    pub fn finish(&mut self) {
        self.state = WarpState::Finished;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{VecProgram, WarpOp};

    fn warp_with(ops: Vec<WarpOp>) -> Warp {
        Warp::new(0, 0, 0, Box::new(VecProgram::new(ops)))
    }

    #[test]
    fn peek_take_cycle() {
        let mut w = warp_with(vec![WarpOp::alu(), WarpOp::Barrier]);
        assert!(matches!(w.peek_op(), Some(WarpOp::Compute { .. })));
        // Peeking twice returns the same op without consuming.
        assert!(matches!(w.peek_op(), Some(WarpOp::Compute { .. })));
        assert!(matches!(w.take_op(), Some(WarpOp::Compute { .. })));
        assert!(matches!(w.peek_op(), Some(WarpOp::Barrier)));
        w.take_op();
        assert!(w.peek_op().is_none());
    }

    #[test]
    fn compute_blocks_until_done() {
        let mut w = warp_with(vec![WarpOp::alu()]);
        w.start_compute(10);
        assert!(!w.is_ready(5));
        assert!(w.is_ready(10));
        assert_eq!(w.instructions, 1);
    }

    #[test]
    fn memory_wait_counts_down() {
        let mut w = warp_with(vec![]);
        w.start_mem(2, 0);
        assert!(!w.is_ready(100));
        w.complete_mem();
        assert!(!w.is_ready(100));
        w.complete_mem();
        assert!(w.is_ready(100));
    }

    #[test]
    fn zero_outstanding_mem_uses_fallback_latency() {
        let mut w = warp_with(vec![]);
        w.start_mem(0, 7);
        assert!(!w.is_ready(6));
        assert!(w.is_ready(7));
    }

    #[test]
    fn barrier_and_release() {
        let mut w = warp_with(vec![]);
        w.enter_barrier();
        assert_eq!(w.state, WarpState::AtBarrier);
        assert!(!w.is_ready(0));
        w.release_barrier();
        assert!(w.is_ready(0));
    }

    #[test]
    fn finish_is_terminal() {
        let mut w = warp_with(vec![]);
        w.finish();
        assert!(w.is_finished());
        assert!(!w.is_ready(1_000_000));
    }

    #[test]
    fn flags_default_to_active_not_isolated() {
        let w = warp_with(vec![]);
        assert!(w.active_flag);
        assert!(!w.isolated_flag);
    }
}
