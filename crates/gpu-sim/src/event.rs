//! Timing backends: the strategy objects that advance a [`Gpu`] to
//! completion.
//!
//! The simulator has two interchangeable timing cores producing bit-identical
//! results:
//!
//! * **Epoch** ([`EpochBackend`], [`Gpu::run`]) — the reference oracle. Every
//!   SM steps every cycle; multi-SM chips run the SM loops on parallel
//!   threads synchronised at epoch boundaries.
//! * **Event** ([`EventBackend`], [`Gpu::run_event`]) — the event-driven
//!   core. SMs advance to their *next event* (warp wakeup, reply delivery,
//!   dispatch boundary), skipping provably idle cycles in bulk, and the chip
//!   advances single-threaded in the deterministic `(time, unit, seq)` order
//!   of a [`crate::timeq::TimeQueue`]. Much faster on memory-bound workloads
//!   whose SMs spend most cycles stalled, and trivially independent of host
//!   thread count.
//!
//! Pick a backend by name with [`BackendKind`] (what CLIs and
//! [`crate::SimRequest`] thread through), or plug a custom engine in behind
//! the [`TimingBackend`] trait.

use crate::gpu::Gpu;
use gpu_mem::Cycle;
use serde::{Deserialize, Serialize};

/// Which timing core advances the chip. Serialises as the lowercase label
/// also used on the command line (`epoch` / `event`).
///
/// `Event` is the default: it is bit-identical to the epoch oracle and much
/// faster on memory-bound workloads. The epoch engine stays selectable
/// (`--backend epoch`) as the reference oracle the equivalence tests and
/// recorded perf baselines compare against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BackendKind {
    /// The cycle-stepping epoch engine — the bit-exact reference oracle.
    Epoch,
    /// The event-driven core: next-event advancement, idle-cycle skipping.
    #[default]
    Event,
}

impl BackendKind {
    /// Every selectable backend, in preference order for sweeps.
    pub const ALL: [BackendKind; 2] = [BackendKind::Epoch, BackendKind::Event];

    /// The stable lowercase label (`"epoch"` / `"event"`) used in CLI flags
    /// and recorded in [`crate::SimResult::backend`].
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Epoch => "epoch",
            BackendKind::Event => "event",
        }
    }

    /// Parses a [`BackendKind::label`] back into the kind.
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "epoch" => Some(BackendKind::Epoch),
            "event" => Some(BackendKind::Event),
            _ => None,
        }
    }

    /// The trait object driving this kind of backend.
    pub fn backend(self) -> Box<dyn TimingBackend> {
        match self {
            BackendKind::Epoch => Box::new(EpochBackend),
            BackendKind::Event => Box::new(EventBackend),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A timing core: given a fully built chip, advance it until every SM
/// finished its CTAs or hit a cap.
///
/// Implementations must leave the chip in a state where
/// [`Gpu::into_result`] reports the finished run; the two built-in backends
/// are bit-identical in everything they report.
pub trait TimingBackend {
    /// The backend's stable label (matches [`BackendKind::label`] for the
    /// built-in backends).
    fn name(&self) -> &'static str;

    /// Runs `gpu` to completion, returning the chip cycle count (the slowest
    /// SM's clock).
    fn drive(&self, gpu: &mut Gpu) -> Cycle;
}

/// The cycle-stepping epoch engine ([`Gpu::run`]), kept as the bit-exact
/// reference oracle for the event core.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpochBackend;

impl TimingBackend for EpochBackend {
    fn name(&self) -> &'static str {
        BackendKind::Epoch.label()
    }

    fn drive(&self, gpu: &mut Gpu) -> Cycle {
        gpu.run()
    }
}

/// The event-driven timing core ([`Gpu::run_event`]): next-event advancement
/// with bulk idle-cycle skipping, bit-identical to [`EpochBackend`].
#[derive(Debug, Clone, Copy, Default)]
pub struct EventBackend;

impl TimingBackend for EventBackend {
    fn name(&self) -> &'static str {
        BackendKind::Event.label()
    }

    fn drive(&self, gpu: &mut Gpu) -> Cycle {
        gpu.run_event()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::from_label(kind.label()), Some(kind));
            assert_eq!(kind.backend().name(), kind.label());
            assert_eq!(kind.to_string(), kind.label());
        }
        assert_eq!(BackendKind::from_label("cycle"), None);
    }

    #[test]
    fn event_is_the_default() {
        assert_eq!(BackendKind::default(), BackendKind::Event);
    }
}
