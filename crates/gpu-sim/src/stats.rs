//! Simulation statistics: aggregate counters, instruction-indexed time series
//! (Figs. 9 and 10), the inter-warp interference matrix (Figs. 1a and 4a),
//! per-tenant counters for multi-kernel co-execution, and the multi-tenant
//! throughput metrics (STP / weighted speedup, ANTT) the `mix` experiments
//! report.

use gpu_mem::cache::CacheStats;
use gpu_mem::dram::DramStats;
use gpu_mem::{Cycle, TenantId, WarpId};
use serde::{Deserialize, Serialize};

/// One sample of the instruction-indexed time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeSeriesPoint {
    /// Total dynamic instructions executed when the sample was taken.
    pub instructions: u64,
    /// Cycle at which the sample was taken.
    pub cycle: Cycle,
    /// IPC over the sampling interval (instructions / cycles in interval).
    pub ipc: f64,
    /// Number of warps neither finished nor throttled at sampling time.
    pub active_warps: usize,
    /// Cross-warp L1D (plus redirect-cache) evictions during the interval —
    /// the "interference" curves of Figs. 9c and 10c.
    pub interference: u64,
    /// L1D hit rate over the interval.
    pub l1d_hit_rate: f64,
}

/// Instruction-indexed time series of simulator behaviour.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<TimeSeriesPoint>,
}

impl TimeSeries {
    /// Appends a sample.
    pub fn push(&mut self, p: TimeSeriesPoint) {
        self.points.push(p);
    }

    /// The recorded samples, in order.
    pub fn points(&self) -> &[TimeSeriesPoint] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean IPC across samples (unweighted).
    pub fn mean_ipc(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|p| p.ipc).sum::<f64>() / self.points.len() as f64
        }
    }

    /// Mean number of active warps across samples.
    pub fn mean_active_warps(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|p| p.active_warps as f64).sum::<f64>()
                / self.points.len() as f64
        }
    }

    /// Appends `other`'s samples after this series, shifting their cycle axis
    /// by `cycle_offset` and their instruction axis by `inst_offset` — how the
    /// `Exclusive` co-execution policy chains the time series of serially
    /// executed kernels into one chip-level series.
    pub fn append_offset(&mut self, other: &TimeSeries, cycle_offset: Cycle, inst_offset: u64) {
        self.points.extend(other.points.iter().map(|&point| {
            let mut p = point;
            p.cycle += cycle_offset;
            p.instructions += inst_offset;
            p
        }));
    }

    /// Merges per-SM series into one chip-level series ordered by sample
    /// cycle (ties broken by SM index, so the result is deterministic).
    ///
    /// Each SM samples against its *own* instruction counter, so the merged
    /// `instructions` axis is rebased to the cumulative chip total at each
    /// sample (the sum of every SM's progress when the sample was taken),
    /// keeping the axis monotone. The per-point `ipc`, `active_warps` and
    /// rate fields remain the sampling SM's interval-local values — the
    /// chip-level aggregate lives in [`SmStats::reduce`]. A single-SM input
    /// round-trips unchanged.
    pub fn merge_sorted<'a>(series: impl IntoIterator<Item = &'a TimeSeries>) -> TimeSeries {
        let mut tagged: Vec<(usize, TimeSeriesPoint)> = series
            .into_iter()
            .enumerate()
            .flat_map(|(sm, s)| s.points.iter().map(move |&p| (sm, p)))
            .collect();
        tagged.sort_by_key(|&(sm, p)| (p.cycle, sm, p.instructions));
        let num_series = tagged.iter().map(|&(sm, _)| sm + 1).max().unwrap_or(0);
        let mut last = vec![0u64; num_series];
        let mut chip_total = 0u64;
        let points = tagged
            .into_iter()
            .map(|(sm, mut p)| {
                chip_total += p.instructions - last[sm];
                last[sm] = p.instructions;
                p.instructions = chip_total;
                p
            })
            .collect();
        TimeSeries { points }
    }
}

/// Counts of cross-warp evictions: `matrix[victim][evictor]` is the number of
/// times `evictor` evicted a line owned by `victim`.
///
/// This is the quantity visualised in Fig. 1a (Backprop) and Fig. 4a (KMEANS
/// warps interfering with one victim warp).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterferenceMatrix {
    num_warps: usize,
    counts: Vec<u64>,
}

impl InterferenceMatrix {
    /// Creates an all-zero matrix for `num_warps` warps.
    pub fn new(num_warps: usize) -> Self {
        InterferenceMatrix { num_warps, counts: vec![0; num_warps * num_warps] }
    }

    /// Number of warps tracked.
    pub fn num_warps(&self) -> usize {
        self.num_warps
    }

    /// Records that `evictor` evicted a line owned by `victim`.
    pub fn record(&mut self, victim: WarpId, evictor: WarpId) {
        let (v, e) = (victim as usize, evictor as usize);
        if v < self.num_warps && e < self.num_warps {
            self.counts[v * self.num_warps + e] += 1;
        }
    }

    /// Number of times `evictor` evicted data of `victim`.
    pub fn count(&self, victim: WarpId, evictor: WarpId) -> u64 {
        let (v, e) = (victim as usize, evictor as usize);
        if v < self.num_warps && e < self.num_warps {
            self.counts[v * self.num_warps + e]
        } else {
            0
        }
    }

    /// Total interference events suffered by `victim` (row sum).
    pub fn suffered_by(&self, victim: WarpId) -> u64 {
        let v = victim as usize;
        if v >= self.num_warps {
            return 0;
        }
        self.counts[v * self.num_warps..(v + 1) * self.num_warps].iter().sum()
    }

    /// Total interference events caused by `evictor` (column sum).
    pub fn caused_by(&self, evictor: WarpId) -> u64 {
        let e = evictor as usize;
        if e >= self.num_warps {
            return 0;
        }
        (0..self.num_warps).map(|v| self.counts[v * self.num_warps + e]).sum()
    }

    /// Total cross-warp interference events (self-evictions excluded if the
    /// caller never records them; this method just sums everything recorded).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The warp that most interfered with `victim`, with its count.
    pub fn worst_interferer(&self, victim: WarpId) -> Option<(WarpId, u64)> {
        let v = victim as usize;
        if v >= self.num_warps {
            return None;
        }
        (0..self.num_warps)
            .map(|e| (e as WarpId, self.counts[v * self.num_warps + e]))
            .max_by_key(|&(_, c)| c)
            .filter(|&(_, c)| c > 0)
    }

    /// Minimum and maximum per-(victim, evictor) interference frequency over
    /// pairs with at least one event — the quantity plotted in Fig. 4b.
    pub fn min_max_nonzero(&self) -> Option<(u64, u64)> {
        let nz: Vec<u64> = self.counts.iter().copied().filter(|&c| c > 0).collect();
        if nz.is_empty() {
            None
        } else {
            Some((*nz.iter().min().unwrap(), *nz.iter().max().unwrap()))
        }
    }

    /// Adds every count of `other` into this matrix. Multi-SM runs reduce the
    /// per-SM matrices (indexed by SM-local warp slot) into one chip matrix:
    /// slot `w` aggregates the interference of every SM's warp slot `w`.
    pub fn absorb(&mut self, other: &InterferenceMatrix) {
        let n = self.num_warps.min(other.num_warps);
        for v in 0..n {
            for e in 0..n {
                self.counts[v * self.num_warps + e] += other.counts[v * other.num_warps + e];
            }
        }
    }

    /// The matrix normalised to its maximum entry (the colour scale of Fig. 1a).
    pub fn normalized(&self) -> Vec<Vec<f64>> {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1) as f64;
        (0..self.num_warps)
            .map(|v| {
                (0..self.num_warps)
                    .map(|e| self.counts[v * self.num_warps + e] as f64 / max)
                    .collect()
            })
            .collect()
    }
}

/// Aggregate statistics of one SM simulation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SmStats {
    /// Cycles simulated.
    pub cycles: Cycle,
    /// Dynamic warp instructions issued.
    pub instructions: u64,
    /// Global-memory block transactions issued to the memory system.
    pub mem_transactions: u64,
    /// Warp instructions that were global-memory loads or stores.
    pub mem_instructions: u64,
    /// Shared-memory (scratchpad, programmer-managed) instructions issued.
    pub shared_mem_instructions: u64,
    /// Barrier instructions executed.
    pub barriers: u64,
    /// Cycles in which no warp could issue.
    pub idle_cycles: Cycle,
    /// Cycles in which at least one warp was ready but the scheduler
    /// throttled every ready warp.
    pub throttle_only_cycles: Cycle,
    /// L1D statistics.
    pub l1d: CacheStats,
    /// L2 statistics (the SM's slice).
    pub l2: CacheStats,
    /// DRAM statistics.
    pub dram: DramStats,
    /// Redirect-cache hits (CIAO-P path).
    pub redirect_hits: u64,
    /// Redirect-cache misses (CIAO-P path).
    pub redirect_misses: u64,
    /// Blocks migrated from the L1D to the redirect cache (coherence path).
    pub l1d_migrations: u64,
    /// Requests that bypassed the L1D (statPCAL path).
    pub bypassed_requests: u64,
    /// Cross-warp evictions observed in the L1D (the paper's notion of
    /// cache interference).
    pub cross_warp_evictions: u64,
    /// Cross-warp evictions observed in the redirect cache.
    pub redirect_cross_warp_evictions: u64,
    /// Maximum number of CTAs resident at once.
    pub max_resident_ctas: usize,
    /// Shared-memory bytes allocated to CTAs at peak (programmer usage).
    pub peak_cta_shared_mem: u32,
    /// Final utilisation of the redirect cache (Fig. 8b).
    pub redirect_utilization: f64,
}

impl SmStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// L1D accesses per kilo-instruction (the APKI column of Table II).
    pub fn apki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.mem_transactions as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Redirect-cache hit rate.
    pub fn redirect_hit_rate(&self) -> f64 {
        let total = self.redirect_hits + self.redirect_misses;
        if total == 0 {
            0.0
        } else {
            self.redirect_hits as f64 / total as f64
        }
    }

    /// Reduces per-SM statistics into one chip-level aggregate.
    ///
    /// Event counters (instructions, memory traffic, barriers, evictions,
    /// idle cycles, …) sum across SMs; `cycles` takes the maximum (the chip
    /// is done when its slowest SM is, so chip IPC = Σ instructions / max
    /// cycles); occupancy high-water marks take the maximum; and
    /// `redirect_utilization` averages. Reducing a single SM's stats returns
    /// them unchanged, which is what keeps 1-SM chip runs bit-identical to
    /// the legacy path.
    pub fn reduce(per_sm: &[SmStats]) -> SmStats {
        let mut chip = SmStats::default();
        for s in per_sm {
            chip.cycles = chip.cycles.max(s.cycles);
            chip.instructions += s.instructions;
            chip.mem_transactions += s.mem_transactions;
            chip.mem_instructions += s.mem_instructions;
            chip.shared_mem_instructions += s.shared_mem_instructions;
            chip.barriers += s.barriers;
            chip.idle_cycles += s.idle_cycles;
            chip.throttle_only_cycles += s.throttle_only_cycles;
            chip.l1d.merge(&s.l1d);
            chip.l2.merge(&s.l2);
            chip.dram.merge(&s.dram);
            chip.redirect_hits += s.redirect_hits;
            chip.redirect_misses += s.redirect_misses;
            chip.l1d_migrations += s.l1d_migrations;
            chip.bypassed_requests += s.bypassed_requests;
            chip.cross_warp_evictions += s.cross_warp_evictions;
            chip.redirect_cross_warp_evictions += s.redirect_cross_warp_evictions;
            chip.max_resident_ctas = chip.max_resident_ctas.max(s.max_resident_ctas);
            chip.peak_cta_shared_mem = chip.peak_cta_shared_mem.max(s.peak_cta_shared_mem);
            chip.redirect_utilization += s.redirect_utilization;
        }
        if !per_sm.is_empty() {
            chip.redirect_utilization /= per_sm.len() as f64;
        }
        chip
    }
}

/// Per-tenant counters one SM collects while co-running CTAs from several
/// kernel streams. Indexed by [`TenantId`] in [`crate::sm::Sm`]; the chip
/// engine merges the per-SM tables into the chip-level
/// [`crate::simulator::TenantResult`]s.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantStats {
    /// Dynamic warp instructions issued on behalf of this tenant.
    pub instructions: u64,
    /// Global-memory warp instructions of this tenant.
    pub mem_instructions: u64,
    /// Global-memory block transactions of this tenant.
    pub mem_transactions: u64,
    /// L1D lookups performed for this tenant's warps.
    pub l1d_accesses: u64,
    /// Of those, the lookups that hit.
    pub l1d_hits: u64,
    /// Bytes this tenant injected into the SM's crossbar port.
    pub xbar_bytes: u64,
    /// CTAs of this tenant that ran to completion on this SM.
    pub ctas_completed: usize,
    /// Cycle at which the tenant's last warp on this SM finished (equals the
    /// SM's final cycle while the tenant still has unfinished work).
    pub finish_cycle: Cycle,
    /// Whether every CTA assigned to this SM for this tenant finished.
    pub done: bool,
}

impl TenantStats {
    /// Merges another SM's record for the same tenant into this one. Event
    /// counters sum; the finish cycle takes the maximum (the tenant is done
    /// when its slowest SM is); `done` ANDs.
    pub fn merge(&mut self, other: &TenantStats) {
        self.instructions += other.instructions;
        self.mem_instructions += other.mem_instructions;
        self.mem_transactions += other.mem_transactions;
        self.l1d_accesses += other.l1d_accesses;
        self.l1d_hits += other.l1d_hits;
        self.xbar_bytes += other.xbar_bytes;
        self.ctas_completed += other.ctas_completed;
        self.finish_cycle = self.finish_cycle.max(other.finish_cycle);
        self.done &= other.done;
    }
}

/// How the interference-aware dispatcher classified a tenant at one decision
/// boundary, from its live L1/L2 attribution (the chip-level analogue of the
/// per-warp SWS/LWS split `ciao_core`'s detector derives from VTA hits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TenantClass {
    /// Small working set with reuse: the tenant profits from the caches and
    /// is the potential *victim* of interference.
    CacheSensitive,
    /// Large working set streamed through the caches with little reuse: the
    /// potential *interferer* worth throttling or migrating.
    Streaming,
    /// Not enough memory traffic observed to classify (compute-intensive
    /// tenants and cold-start windows land here).
    Unclassified,
}

impl TenantClass {
    /// Short label used in decision-log renderings.
    pub fn label(self) -> &'static str {
        match self {
            TenantClass::CacheSensitive => "cache",
            TenantClass::Streaming => "stream",
            TenantClass::Unclassified => "?",
        }
    }
}

/// One action the interference-aware dispatcher took at an epoch boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DispatchAction {
    /// A kernel stream arrived and was admitted into the pending queues.
    Admit {
        /// The admitted tenant.
        tenant: TenantId,
    },
    /// Tenants were (re)classified and every tenant's allowed-SM set was
    /// recomputed from the classification.
    Place {
        /// Per-tenant allowed-SM-set sizes after placement.
        allowed_sms: Vec<usize>,
    },
    /// An interfering tenant's allowed-SM set was shrunk because a victim
    /// tenant's hit rate degraded past the threshold.
    Throttle {
        /// The throttled (interfering) tenant.
        tenant: TenantId,
        /// The degraded (victim) tenant that triggered the decision.
        victim: TenantId,
        /// Size of the throttled tenant's allowed-SM set after shrinking.
        allowed_sms: usize,
    },
    /// A previously throttled tenant's allowed-SM set was grown back because
    /// every victim stayed healthy for the hysteresis window.
    Restore {
        /// The restored tenant.
        tenant: TenantId,
        /// Size of the restored tenant's allowed-SM set after growing.
        allowed_sms: usize,
    },
}

/// One epoch-boundary record of the interference-aware dispatcher: the
/// per-tenant signals it read and the actions it took. The sequence of
/// records doubles as the per-tenant hit-rate time series of the co-run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchDecision {
    /// Chip cycle of the epoch boundary the decision was made at.
    pub cycle: Cycle,
    /// Per-tenant L2 hit rate over the decision window (`-1` when the tenant
    /// issued too few L2 accesses to measure).
    pub l2_hit_rate: Vec<f64>,
    /// Per-tenant L1D hit rate over the decision window (`-1` when the tenant
    /// issued too few L1 accesses to measure).
    pub l1_hit_rate: Vec<f64>,
    /// Per-tenant classification at this boundary.
    pub classes: Vec<TenantClass>,
    /// Per-tenant allowed-SM-set sizes after this boundary's actions.
    pub allowed_sms: Vec<usize>,
    /// Actions taken at this boundary (empty for a pure observation window).
    pub actions: Vec<DispatchAction>,
}

/// The per-epoch decision log of one `InterferenceAware` co-run (empty for
/// static dispatch policies). Serialised into [`crate::SimResult`] so the
/// harness can archive *why* the dispatcher moved work, not just where.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DispatchLog {
    /// Decision records in cycle order.
    pub decisions: Vec<DispatchDecision>,
}

impl DispatchLog {
    /// Number of recorded decisions.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// True when no decision was recorded (static policies).
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// Number of throttle actions across the run.
    pub fn throttle_count(&self) -> usize {
        self.count(|a| matches!(a, DispatchAction::Throttle { .. }))
    }

    /// Number of restore actions across the run.
    pub fn restore_count(&self) -> usize {
        self.count(|a| matches!(a, DispatchAction::Restore { .. }))
    }

    fn count(&self, pred: impl Fn(&DispatchAction) -> bool) -> usize {
        self.decisions.iter().flat_map(|d| &d.actions).filter(|a| pred(a)).count()
    }

    /// The `(cycle, L2 hit rate)` time series of one tenant across the run's
    /// decision windows (unmeasured windows are skipped).
    pub fn l2_hit_rate_series(&self, tenant: TenantId) -> Vec<(Cycle, f64)> {
        self.decisions
            .iter()
            .filter_map(|d| {
                let rate = *d.l2_hit_rate.get(tenant as usize)?;
                (rate >= 0.0).then_some((d.cycle, rate))
            })
            .collect()
    }

    /// Every tenant's `(cycle, L2 hit rate)` series in a single pass over
    /// the decisions. Report loops that need more than one tenant's series
    /// should call this once instead of [`DispatchLog::l2_hit_rate_series`]
    /// per tenant — the per-tenant accessor re-walks (and re-allocates from)
    /// the whole decision list on every call.
    pub fn all_l2_hit_rate_series(&self) -> Vec<Vec<(Cycle, f64)>> {
        let tenants = self.decisions.iter().map(|d| d.l2_hit_rate.len()).max().unwrap_or(0);
        let mut out = vec![Vec::new(); tenants];
        for d in &self.decisions {
            for (t, &rate) in d.l2_hit_rate.iter().enumerate() {
                if rate >= 0.0 {
                    out[t].push((d.cycle, rate));
                }
            }
        }
        out
    }

    /// Per-tenant digest of the run's dispatch activity: how often each
    /// tenant was throttled and restored, and how the dispatcher classified
    /// it at the last decision boundary.
    pub fn summary(&self) -> DispatchSummary {
        let tenants = self.decisions.iter().map(|d| d.classes.len()).max().unwrap_or(0);
        let mut out: Vec<DispatchTenantSummary> = (0..tenants)
            .map(|t| DispatchTenantSummary {
                tenant: t as TenantId,
                throttles: 0,
                restores: 0,
                final_class: TenantClass::Unclassified,
            })
            .collect();
        for d in &self.decisions {
            for (t, &class) in d.classes.iter().enumerate() {
                out[t].final_class = class;
            }
            for action in &d.actions {
                match action {
                    DispatchAction::Throttle { tenant, .. } => {
                        out[*tenant as usize].throttles += 1;
                    }
                    DispatchAction::Restore { tenant, .. } => {
                        out[*tenant as usize].restores += 1;
                    }
                    _ => {}
                }
            }
        }
        DispatchSummary { tenants: out }
    }
}

/// Per-tenant dispatch digest (see [`DispatchLog::summary`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DispatchSummary {
    /// One entry per tenant, in tenant-id order.
    pub tenants: Vec<DispatchTenantSummary>,
}

/// One tenant's row of a [`DispatchSummary`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchTenantSummary {
    /// The tenant the row describes.
    pub tenant: TenantId,
    /// Times the dispatcher shrank this tenant's allowed-SM set.
    pub throttles: usize,
    /// Times the dispatcher grew it back.
    pub restores: usize,
    /// Classification at the final decision boundary.
    pub final_class: TenantClass,
}

/// Spread of per-SM IPC across a chip run — the partitioning-skew signal the
/// `SpatialPartition` co-execution policy makes visible (an SM set serving a
/// light tenant idles while another set is saturated).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SmImbalance {
    /// Lowest per-SM IPC.
    pub min_ipc: f64,
    /// Highest per-SM IPC.
    pub max_ipc: f64,
    /// Population standard deviation of per-SM IPC.
    pub stddev_ipc: f64,
}

impl SmImbalance {
    /// Computes the imbalance of a chip run's per-SM statistics. All three
    /// fields are zero for an empty slice; a single SM has zero spread.
    pub fn of(per_sm: &[SmStats]) -> SmImbalance {
        if per_sm.is_empty() {
            return SmImbalance::default();
        }
        let ipcs: Vec<f64> = per_sm.iter().map(|s| s.ipc()).collect();
        let n = ipcs.len() as f64;
        let mean = ipcs.iter().sum::<f64>() / n;
        let var = ipcs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        SmImbalance {
            min_ipc: ipcs.iter().copied().fold(f64::INFINITY, f64::min),
            max_ipc: ipcs.iter().copied().fold(0.0, f64::max),
            stddev_ipc: var.sqrt(),
        }
    }
}

/// System throughput (STP), also known as weighted speedup:
/// `Σᵢ shared_ipc[i] / alone_ipc[i]`. Equals the tenant count under perfect
/// isolation and degrades towards 0 as co-running tenants destroy each
/// other's throughput. Pairs with zero alone-IPC are skipped; mismatched or
/// empty inputs yield 0.0.
pub fn system_throughput(alone_ipc: &[f64], shared_ipc: &[f64]) -> f64 {
    if alone_ipc.len() != shared_ipc.len() {
        return 0.0;
    }
    alone_ipc.iter().zip(shared_ipc).filter(|(&a, _)| a > 0.0).map(|(&a, &s)| s / a).sum()
}

/// Average normalized turnaround time (ANTT):
/// `(1/n) Σᵢ alone_ipc[i] / shared_ipc[i]` — the mean per-tenant slowdown.
/// 1.0 means no tenant was slowed by co-execution; larger is worse.
///
/// A tenant with a positive alone-IPC but zero shared-IPC was *starved* —
/// its slowdown is unbounded, so the result is `f64::INFINITY` rather than a
/// finite mean that would make the worst co-execution outcome look benign.
/// Pairs with zero alone-IPC (no baseline) are skipped; mismatched or empty
/// inputs yield 0.0.
pub fn avg_normalized_turnaround(alone_ipc: &[f64], shared_ipc: &[f64]) -> f64 {
    if alone_ipc.len() != shared_ipc.len() {
        return 0.0;
    }
    let mut slowdowns = Vec::with_capacity(alone_ipc.len());
    for (&a, &s) in alone_ipc.iter().zip(shared_ipc) {
        if a <= 0.0 {
            continue;
        }
        if s <= 0.0 {
            return f64::INFINITY;
        }
        slowdowns.push(a / s);
    }
    if slowdowns.is_empty() {
        0.0
    } else {
        slowdowns.iter().sum::<f64>() / slowdowns.len() as f64
    }
}

/// Grows `table` so that `tenant` is a valid index, filling with defaults.
pub(crate) fn tenant_slot(table: &mut Vec<TenantStats>, tenant: TenantId) -> &mut TenantStats {
    let idx = tenant as usize;
    if table.len() <= idx {
        table.resize(idx + 1, TenantStats::default());
    }
    &mut table[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn time_series_means() {
        let mut ts = TimeSeries::default();
        assert!(ts.is_empty());
        ts.push(TimeSeriesPoint {
            instructions: 100,
            cycle: 200,
            ipc: 0.5,
            active_warps: 10,
            interference: 3,
            l1d_hit_rate: 0.4,
        });
        ts.push(TimeSeriesPoint {
            instructions: 200,
            cycle: 300,
            ipc: 1.0,
            active_warps: 20,
            interference: 1,
            l1d_hit_rate: 0.6,
        });
        assert_eq!(ts.len(), 2);
        assert!((ts.mean_ipc() - 0.75).abs() < 1e-12);
        assert!((ts.mean_active_warps() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn interference_matrix_records_and_summarises() {
        let mut m = InterferenceMatrix::new(4);
        m.record(1, 2);
        m.record(1, 2);
        m.record(1, 3);
        m.record(0, 1);
        assert_eq!(m.count(1, 2), 2);
        assert_eq!(m.suffered_by(1), 3);
        assert_eq!(m.caused_by(2), 2);
        assert_eq!(m.total(), 4);
        assert_eq!(m.worst_interferer(1), Some((2, 2)));
        assert_eq!(m.worst_interferer(3), None);
        assert_eq!(m.min_max_nonzero(), Some((1, 2)));
    }

    #[test]
    fn interference_matrix_normalisation() {
        let mut m = InterferenceMatrix::new(2);
        m.record(0, 1);
        m.record(0, 1);
        m.record(1, 0);
        let n = m.normalized();
        assert!((n[0][1] - 1.0).abs() < 1e-12);
        assert!((n[1][0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_warps_ignored() {
        let mut m = InterferenceMatrix::new(2);
        m.record(5, 1);
        assert_eq!(m.total(), 0);
        assert_eq!(m.count(5, 1), 0);
        assert_eq!(m.suffered_by(9), 0);
        assert_eq!(m.caused_by(9), 0);
    }

    #[test]
    fn sm_stats_derived_metrics() {
        let s =
            SmStats { cycles: 1000, instructions: 500, mem_transactions: 50, ..Default::default() };
        assert!((s.ipc() - 0.5).abs() < 1e-12);
        assert!((s.apki() - 100.0).abs() < 1e-12);
        assert_eq!(SmStats::default().ipc(), 0.0);
        assert_eq!(SmStats::default().apki(), 0.0);
        assert_eq!(SmStats::default().redirect_hit_rate(), 0.0);
    }

    #[test]
    fn reduce_single_sm_is_identity() {
        let s = SmStats {
            cycles: 1000,
            instructions: 500,
            mem_transactions: 50,
            idle_cycles: 7,
            max_resident_ctas: 3,
            redirect_utilization: 0.5,
            ..Default::default()
        };
        assert_eq!(SmStats::reduce(std::slice::from_ref(&s)), s);
        assert_eq!(SmStats::reduce(&[]), SmStats::default());
    }

    #[test]
    fn reduce_sums_counters_and_maxes_cycles() {
        let a = SmStats {
            cycles: 100,
            instructions: 10,
            barriers: 1,
            max_resident_ctas: 2,
            redirect_utilization: 0.2,
            ..Default::default()
        };
        let b = SmStats {
            cycles: 150,
            instructions: 30,
            barriers: 2,
            max_resident_ctas: 5,
            redirect_utilization: 0.6,
            ..Default::default()
        };
        let chip = SmStats::reduce(&[a, b]);
        assert_eq!(chip.cycles, 150);
        assert_eq!(chip.instructions, 40);
        assert_eq!(chip.barriers, 3);
        assert_eq!(chip.max_resident_ctas, 5);
        assert!((chip.redirect_utilization - 0.4).abs() < 1e-12);
        // Chip IPC uses the slowest SM's cycle count.
        assert!((chip.ipc() - 40.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn matrix_absorb_adds_counts() {
        let mut a = InterferenceMatrix::new(3);
        a.record(0, 1);
        let mut b = InterferenceMatrix::new(3);
        b.record(0, 1);
        b.record(2, 0);
        a.absorb(&b);
        assert_eq!(a.count(0, 1), 2);
        assert_eq!(a.count(2, 0), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn time_series_merge_orders_by_cycle() {
        let p = |cycle: u64, insts: u64| TimeSeriesPoint {
            instructions: insts,
            cycle,
            ipc: 1.0,
            active_warps: 1,
            interference: 0,
            l1d_hit_rate: 0.0,
        };
        let mut a = TimeSeries::default();
        a.push(p(10, 100));
        a.push(p(30, 200));
        let mut b = TimeSeries::default();
        b.push(p(20, 150));
        let merged = TimeSeries::merge_sorted([&a, &b]);
        let cycles: Vec<u64> = merged.points().iter().map(|x| x.cycle).collect();
        assert_eq!(cycles, vec![10, 20, 30]);
        // The instruction axis is rebased to the cumulative chip total
        // (each SM counts its own instructions), staying monotone.
        let insts: Vec<u64> = merged.points().iter().map(|x| x.instructions).collect();
        assert_eq!(insts, vec![100, 250, 350]);
        // Single input round-trips unchanged.
        assert_eq!(TimeSeries::merge_sorted([&a]), a);
    }

    #[test]
    fn tenant_stats_merge_sums_and_maxes() {
        let a = TenantStats {
            instructions: 10,
            l1d_accesses: 4,
            l1d_hits: 2,
            finish_cycle: 100,
            ctas_completed: 1,
            done: true,
            ..Default::default()
        };
        let b = TenantStats {
            instructions: 20,
            l1d_accesses: 6,
            l1d_hits: 6,
            finish_cycle: 70,
            ctas_completed: 2,
            done: true,
            ..Default::default()
        };
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.instructions, 30);
        assert_eq!(m.l1d_accesses, 10);
        assert_eq!(m.l1d_hits, 8);
        assert_eq!(m.finish_cycle, 100);
        assert_eq!(m.ctas_completed, 3);
        assert!(m.done);
        let mut n = a;
        n.merge(&TenantStats::default()); // default is not done
        assert!(!n.done);
    }

    #[test]
    fn imbalance_of_uniform_sms_is_zero_spread() {
        let s = SmStats { cycles: 100, instructions: 50, ..Default::default() };
        let im = SmImbalance::of(&[s.clone(), s.clone(), s]);
        assert!((im.min_ipc - 0.5).abs() < 1e-12);
        assert!((im.max_ipc - 0.5).abs() < 1e-12);
        assert!(im.stddev_ipc.abs() < 1e-12);
        assert_eq!(SmImbalance::of(&[]), SmImbalance::default());
    }

    #[test]
    fn imbalance_captures_skew() {
        let fast = SmStats { cycles: 100, instructions: 100, ..Default::default() };
        let slow = SmStats { cycles: 100, instructions: 0, ..Default::default() };
        let im = SmImbalance::of(&[fast, slow]);
        assert!((im.min_ipc - 0.0).abs() < 1e-12);
        assert!((im.max_ipc - 1.0).abs() < 1e-12);
        assert!((im.stddev_ipc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stp_and_antt_reference_values() {
        // Perfect isolation: STP = n, ANTT = 1.
        assert!((system_throughput(&[1.0, 2.0], &[1.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((avg_normalized_turnaround(&[1.0, 2.0], &[1.0, 2.0]) - 1.0).abs() < 1e-12);
        // Both tenants at half speed: STP = 1, ANTT = 2.
        assert!((system_throughput(&[1.0, 2.0], &[0.5, 1.0]) - 1.0).abs() < 1e-12);
        assert!((avg_normalized_turnaround(&[1.0, 2.0], &[0.5, 1.0]) - 2.0).abs() < 1e-12);
        // Asymmetric: tenant 0 unharmed, tenant 1 at 1/4 speed.
        assert!((system_throughput(&[1.0, 2.0], &[1.0, 0.5]) - 1.25).abs() < 1e-12);
        assert!((avg_normalized_turnaround(&[1.0, 2.0], &[1.0, 0.5]) - 2.5).abs() < 1e-12);
        // Degenerate inputs.
        assert_eq!(system_throughput(&[1.0], &[1.0, 2.0]), 0.0);
        assert_eq!(avg_normalized_turnaround(&[], &[]), 0.0);
        // A starved tenant (alone > 0, shared == 0) has unbounded slowdown.
        assert_eq!(avg_normalized_turnaround(&[1.0], &[0.0]), f64::INFINITY);
        assert_eq!(avg_normalized_turnaround(&[1.0, 1.0], &[1.0, 0.0]), f64::INFINITY);
        // A tenant with no baseline is skipped, not treated as starved.
        assert!((avg_normalized_turnaround(&[0.0, 2.0], &[0.0, 1.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dispatch_log_counts_actions_and_extracts_series() {
        let mut log = DispatchLog::default();
        assert!(log.is_empty());
        log.decisions.push(DispatchDecision {
            cycle: 512,
            l2_hit_rate: vec![0.9, -1.0],
            l1_hit_rate: vec![0.8, 0.2],
            classes: vec![TenantClass::CacheSensitive, TenantClass::Streaming],
            allowed_sms: vec![15, 4],
            actions: vec![DispatchAction::Place { allowed_sms: vec![15, 4] }],
        });
        log.decisions.push(DispatchDecision {
            cycle: 1024,
            l2_hit_rate: vec![0.5, 0.1],
            l1_hit_rate: vec![-1.0, -1.0],
            classes: vec![TenantClass::CacheSensitive, TenantClass::Streaming],
            allowed_sms: vec![15, 2],
            actions: vec![
                DispatchAction::Throttle { tenant: 1, victim: 0, allowed_sms: 2 },
                DispatchAction::Restore { tenant: 1, allowed_sms: 4 },
            ],
        });
        assert_eq!(log.len(), 2);
        assert_eq!(log.throttle_count(), 1);
        assert_eq!(log.restore_count(), 1);
        // Unmeasured (-1) windows are skipped from the series.
        assert_eq!(log.l2_hit_rate_series(0), vec![(512, 0.9), (1024, 0.5)]);
        assert_eq!(log.l2_hit_rate_series(1), vec![(1024, 0.1)]);
        assert_eq!(log.l2_hit_rate_series(9), Vec::new());
        // Round-trips through serde (the harness archives the log as JSON).
        let json = serde_json::to_string(&log).unwrap();
        let back: DispatchLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back, log);
        assert_eq!(TenantClass::Streaming.label(), "stream");
        assert_eq!(TenantClass::CacheSensitive.label(), "cache");
        assert_eq!(TenantClass::Unclassified.label(), "?");
    }

    #[test]
    fn time_series_append_offset_chains_serial_runs() {
        let p = |cycle: u64, insts: u64| TimeSeriesPoint {
            instructions: insts,
            cycle,
            ipc: 1.0,
            active_warps: 1,
            interference: 0,
            l1d_hit_rate: 0.0,
        };
        let mut a = TimeSeries::default();
        a.push(p(10, 100));
        let mut b = TimeSeries::default();
        b.push(p(5, 50));
        a.append_offset(&b, 20, 100);
        let pts = a.points();
        assert_eq!(pts.len(), 2);
        assert_eq!((pts[1].cycle, pts[1].instructions), (25, 150));
    }

    proptest! {
        /// STP is bounded by the tenant count when no tenant speeds up, and
        /// ANTT is at least 1 when no tenant runs faster shared than alone.
        #[test]
        fn stp_antt_bounds(ipcs in proptest::collection::vec((1u32..1000, 1u32..=100), 1..8)) {
            let alone: Vec<f64> = ipcs.iter().map(|&(a, _)| a as f64 / 100.0).collect();
            let shared: Vec<f64> =
                ipcs.iter().map(|&(a, f)| (a as f64 / 100.0) * (f as f64 / 100.0)).collect();
            let stp = system_throughput(&alone, &shared);
            let antt = avg_normalized_turnaround(&alone, &shared);
            prop_assert!(stp > 0.0 && stp <= alone.len() as f64 + 1e-9);
            prop_assert!(antt >= 1.0 - 1e-9);
        }
    }

    proptest! {
        /// Row sums plus column sums are consistent with the total.
        #[test]
        fn matrix_sum_consistency(events in proptest::collection::vec((0u32..8, 0u32..8), 0..200)) {
            let mut m = InterferenceMatrix::new(8);
            for (v, e) in &events {
                m.record(*v, *e);
            }
            let total = m.total();
            let by_rows: u64 = (0..8).map(|v| m.suffered_by(v)).sum();
            let by_cols: u64 = (0..8).map(|e| m.caused_by(e)).sum();
            prop_assert_eq!(total, events.len() as u64);
            prop_assert_eq!(by_rows, total);
            prop_assert_eq!(by_cols, total);
        }
    }
}
