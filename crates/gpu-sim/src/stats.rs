//! Simulation statistics: aggregate counters, instruction-indexed time series
//! (Figs. 9 and 10) and the inter-warp interference matrix (Figs. 1a and 4a).

use gpu_mem::cache::CacheStats;
use gpu_mem::dram::DramStats;
use gpu_mem::{Cycle, WarpId};
use serde::{Deserialize, Serialize};

/// One sample of the instruction-indexed time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeSeriesPoint {
    /// Total dynamic instructions executed when the sample was taken.
    pub instructions: u64,
    /// Cycle at which the sample was taken.
    pub cycle: Cycle,
    /// IPC over the sampling interval (instructions / cycles in interval).
    pub ipc: f64,
    /// Number of warps neither finished nor throttled at sampling time.
    pub active_warps: usize,
    /// Cross-warp L1D (plus redirect-cache) evictions during the interval —
    /// the "interference" curves of Figs. 9c and 10c.
    pub interference: u64,
    /// L1D hit rate over the interval.
    pub l1d_hit_rate: f64,
}

/// Instruction-indexed time series of simulator behaviour.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<TimeSeriesPoint>,
}

impl TimeSeries {
    /// Appends a sample.
    pub fn push(&mut self, p: TimeSeriesPoint) {
        self.points.push(p);
    }

    /// The recorded samples, in order.
    pub fn points(&self) -> &[TimeSeriesPoint] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean IPC across samples (unweighted).
    pub fn mean_ipc(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|p| p.ipc).sum::<f64>() / self.points.len() as f64
        }
    }

    /// Mean number of active warps across samples.
    pub fn mean_active_warps(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|p| p.active_warps as f64).sum::<f64>()
                / self.points.len() as f64
        }
    }

    /// Merges per-SM series into one chip-level series ordered by sample
    /// cycle (ties broken by SM index, so the result is deterministic).
    ///
    /// Each SM samples against its *own* instruction counter, so the merged
    /// `instructions` axis is rebased to the cumulative chip total at each
    /// sample (the sum of every SM's progress when the sample was taken),
    /// keeping the axis monotone. The per-point `ipc`, `active_warps` and
    /// rate fields remain the sampling SM's interval-local values — the
    /// chip-level aggregate lives in [`SmStats::reduce`]. A single-SM input
    /// round-trips unchanged.
    pub fn merge_sorted<'a>(series: impl IntoIterator<Item = &'a TimeSeries>) -> TimeSeries {
        let mut tagged: Vec<(usize, TimeSeriesPoint)> = series
            .into_iter()
            .enumerate()
            .flat_map(|(sm, s)| s.points.iter().map(move |&p| (sm, p)))
            .collect();
        tagged.sort_by_key(|&(sm, p)| (p.cycle, sm, p.instructions));
        let num_series = tagged.iter().map(|&(sm, _)| sm + 1).max().unwrap_or(0);
        let mut last = vec![0u64; num_series];
        let mut chip_total = 0u64;
        let points = tagged
            .into_iter()
            .map(|(sm, mut p)| {
                chip_total += p.instructions - last[sm];
                last[sm] = p.instructions;
                p.instructions = chip_total;
                p
            })
            .collect();
        TimeSeries { points }
    }
}

/// Counts of cross-warp evictions: `matrix[victim][evictor]` is the number of
/// times `evictor` evicted a line owned by `victim`.
///
/// This is the quantity visualised in Fig. 1a (Backprop) and Fig. 4a (KMEANS
/// warps interfering with one victim warp).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterferenceMatrix {
    num_warps: usize,
    counts: Vec<u64>,
}

impl InterferenceMatrix {
    /// Creates an all-zero matrix for `num_warps` warps.
    pub fn new(num_warps: usize) -> Self {
        InterferenceMatrix { num_warps, counts: vec![0; num_warps * num_warps] }
    }

    /// Number of warps tracked.
    pub fn num_warps(&self) -> usize {
        self.num_warps
    }

    /// Records that `evictor` evicted a line owned by `victim`.
    pub fn record(&mut self, victim: WarpId, evictor: WarpId) {
        let (v, e) = (victim as usize, evictor as usize);
        if v < self.num_warps && e < self.num_warps {
            self.counts[v * self.num_warps + e] += 1;
        }
    }

    /// Number of times `evictor` evicted data of `victim`.
    pub fn count(&self, victim: WarpId, evictor: WarpId) -> u64 {
        let (v, e) = (victim as usize, evictor as usize);
        if v < self.num_warps && e < self.num_warps {
            self.counts[v * self.num_warps + e]
        } else {
            0
        }
    }

    /// Total interference events suffered by `victim` (row sum).
    pub fn suffered_by(&self, victim: WarpId) -> u64 {
        let v = victim as usize;
        if v >= self.num_warps {
            return 0;
        }
        self.counts[v * self.num_warps..(v + 1) * self.num_warps].iter().sum()
    }

    /// Total interference events caused by `evictor` (column sum).
    pub fn caused_by(&self, evictor: WarpId) -> u64 {
        let e = evictor as usize;
        if e >= self.num_warps {
            return 0;
        }
        (0..self.num_warps).map(|v| self.counts[v * self.num_warps + e]).sum()
    }

    /// Total cross-warp interference events (self-evictions excluded if the
    /// caller never records them; this method just sums everything recorded).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The warp that most interfered with `victim`, with its count.
    pub fn worst_interferer(&self, victim: WarpId) -> Option<(WarpId, u64)> {
        let v = victim as usize;
        if v >= self.num_warps {
            return None;
        }
        (0..self.num_warps)
            .map(|e| (e as WarpId, self.counts[v * self.num_warps + e]))
            .max_by_key(|&(_, c)| c)
            .filter(|&(_, c)| c > 0)
    }

    /// Minimum and maximum per-(victim, evictor) interference frequency over
    /// pairs with at least one event — the quantity plotted in Fig. 4b.
    pub fn min_max_nonzero(&self) -> Option<(u64, u64)> {
        let nz: Vec<u64> = self.counts.iter().copied().filter(|&c| c > 0).collect();
        if nz.is_empty() {
            None
        } else {
            Some((*nz.iter().min().unwrap(), *nz.iter().max().unwrap()))
        }
    }

    /// Adds every count of `other` into this matrix. Multi-SM runs reduce the
    /// per-SM matrices (indexed by SM-local warp slot) into one chip matrix:
    /// slot `w` aggregates the interference of every SM's warp slot `w`.
    pub fn absorb(&mut self, other: &InterferenceMatrix) {
        let n = self.num_warps.min(other.num_warps);
        for v in 0..n {
            for e in 0..n {
                self.counts[v * self.num_warps + e] += other.counts[v * other.num_warps + e];
            }
        }
    }

    /// The matrix normalised to its maximum entry (the colour scale of Fig. 1a).
    pub fn normalized(&self) -> Vec<Vec<f64>> {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1) as f64;
        (0..self.num_warps)
            .map(|v| {
                (0..self.num_warps)
                    .map(|e| self.counts[v * self.num_warps + e] as f64 / max)
                    .collect()
            })
            .collect()
    }
}

/// Aggregate statistics of one SM simulation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SmStats {
    /// Cycles simulated.
    pub cycles: Cycle,
    /// Dynamic warp instructions issued.
    pub instructions: u64,
    /// Global-memory block transactions issued to the memory system.
    pub mem_transactions: u64,
    /// Warp instructions that were global-memory loads or stores.
    pub mem_instructions: u64,
    /// Shared-memory (scratchpad, programmer-managed) instructions issued.
    pub shared_mem_instructions: u64,
    /// Barrier instructions executed.
    pub barriers: u64,
    /// Cycles in which no warp could issue.
    pub idle_cycles: Cycle,
    /// Cycles in which at least one warp was ready but the scheduler
    /// throttled every ready warp.
    pub throttle_only_cycles: Cycle,
    /// L1D statistics.
    pub l1d: CacheStats,
    /// L2 statistics (the SM's slice).
    pub l2: CacheStats,
    /// DRAM statistics.
    pub dram: DramStats,
    /// Redirect-cache hits (CIAO-P path).
    pub redirect_hits: u64,
    /// Redirect-cache misses (CIAO-P path).
    pub redirect_misses: u64,
    /// Blocks migrated from the L1D to the redirect cache (coherence path).
    pub l1d_migrations: u64,
    /// Requests that bypassed the L1D (statPCAL path).
    pub bypassed_requests: u64,
    /// Cross-warp evictions observed in the L1D (the paper's notion of
    /// cache interference).
    pub cross_warp_evictions: u64,
    /// Cross-warp evictions observed in the redirect cache.
    pub redirect_cross_warp_evictions: u64,
    /// Maximum number of CTAs resident at once.
    pub max_resident_ctas: usize,
    /// Shared-memory bytes allocated to CTAs at peak (programmer usage).
    pub peak_cta_shared_mem: u32,
    /// Final utilisation of the redirect cache (Fig. 8b).
    pub redirect_utilization: f64,
}

impl SmStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// L1D accesses per kilo-instruction (the APKI column of Table II).
    pub fn apki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.mem_transactions as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Redirect-cache hit rate.
    pub fn redirect_hit_rate(&self) -> f64 {
        let total = self.redirect_hits + self.redirect_misses;
        if total == 0 {
            0.0
        } else {
            self.redirect_hits as f64 / total as f64
        }
    }

    /// Reduces per-SM statistics into one chip-level aggregate.
    ///
    /// Event counters (instructions, memory traffic, barriers, evictions,
    /// idle cycles, …) sum across SMs; `cycles` takes the maximum (the chip
    /// is done when its slowest SM is, so chip IPC = Σ instructions / max
    /// cycles); occupancy high-water marks take the maximum; and
    /// `redirect_utilization` averages. Reducing a single SM's stats returns
    /// them unchanged, which is what keeps 1-SM chip runs bit-identical to
    /// the legacy path.
    pub fn reduce(per_sm: &[SmStats]) -> SmStats {
        let mut chip = SmStats::default();
        for s in per_sm {
            chip.cycles = chip.cycles.max(s.cycles);
            chip.instructions += s.instructions;
            chip.mem_transactions += s.mem_transactions;
            chip.mem_instructions += s.mem_instructions;
            chip.shared_mem_instructions += s.shared_mem_instructions;
            chip.barriers += s.barriers;
            chip.idle_cycles += s.idle_cycles;
            chip.throttle_only_cycles += s.throttle_only_cycles;
            chip.l1d.merge(&s.l1d);
            chip.l2.merge(&s.l2);
            chip.dram.merge(&s.dram);
            chip.redirect_hits += s.redirect_hits;
            chip.redirect_misses += s.redirect_misses;
            chip.l1d_migrations += s.l1d_migrations;
            chip.bypassed_requests += s.bypassed_requests;
            chip.cross_warp_evictions += s.cross_warp_evictions;
            chip.redirect_cross_warp_evictions += s.redirect_cross_warp_evictions;
            chip.max_resident_ctas = chip.max_resident_ctas.max(s.max_resident_ctas);
            chip.peak_cta_shared_mem = chip.peak_cta_shared_mem.max(s.peak_cta_shared_mem);
            chip.redirect_utilization += s.redirect_utilization;
        }
        if !per_sm.is_empty() {
            chip.redirect_utilization /= per_sm.len() as f64;
        }
        chip
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn time_series_means() {
        let mut ts = TimeSeries::default();
        assert!(ts.is_empty());
        ts.push(TimeSeriesPoint {
            instructions: 100,
            cycle: 200,
            ipc: 0.5,
            active_warps: 10,
            interference: 3,
            l1d_hit_rate: 0.4,
        });
        ts.push(TimeSeriesPoint {
            instructions: 200,
            cycle: 300,
            ipc: 1.0,
            active_warps: 20,
            interference: 1,
            l1d_hit_rate: 0.6,
        });
        assert_eq!(ts.len(), 2);
        assert!((ts.mean_ipc() - 0.75).abs() < 1e-12);
        assert!((ts.mean_active_warps() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn interference_matrix_records_and_summarises() {
        let mut m = InterferenceMatrix::new(4);
        m.record(1, 2);
        m.record(1, 2);
        m.record(1, 3);
        m.record(0, 1);
        assert_eq!(m.count(1, 2), 2);
        assert_eq!(m.suffered_by(1), 3);
        assert_eq!(m.caused_by(2), 2);
        assert_eq!(m.total(), 4);
        assert_eq!(m.worst_interferer(1), Some((2, 2)));
        assert_eq!(m.worst_interferer(3), None);
        assert_eq!(m.min_max_nonzero(), Some((1, 2)));
    }

    #[test]
    fn interference_matrix_normalisation() {
        let mut m = InterferenceMatrix::new(2);
        m.record(0, 1);
        m.record(0, 1);
        m.record(1, 0);
        let n = m.normalized();
        assert!((n[0][1] - 1.0).abs() < 1e-12);
        assert!((n[1][0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_warps_ignored() {
        let mut m = InterferenceMatrix::new(2);
        m.record(5, 1);
        assert_eq!(m.total(), 0);
        assert_eq!(m.count(5, 1), 0);
        assert_eq!(m.suffered_by(9), 0);
        assert_eq!(m.caused_by(9), 0);
    }

    #[test]
    fn sm_stats_derived_metrics() {
        let s =
            SmStats { cycles: 1000, instructions: 500, mem_transactions: 50, ..Default::default() };
        assert!((s.ipc() - 0.5).abs() < 1e-12);
        assert!((s.apki() - 100.0).abs() < 1e-12);
        assert_eq!(SmStats::default().ipc(), 0.0);
        assert_eq!(SmStats::default().apki(), 0.0);
        assert_eq!(SmStats::default().redirect_hit_rate(), 0.0);
    }

    #[test]
    fn reduce_single_sm_is_identity() {
        let s = SmStats {
            cycles: 1000,
            instructions: 500,
            mem_transactions: 50,
            idle_cycles: 7,
            max_resident_ctas: 3,
            redirect_utilization: 0.5,
            ..Default::default()
        };
        assert_eq!(SmStats::reduce(std::slice::from_ref(&s)), s);
        assert_eq!(SmStats::reduce(&[]), SmStats::default());
    }

    #[test]
    fn reduce_sums_counters_and_maxes_cycles() {
        let a = SmStats {
            cycles: 100,
            instructions: 10,
            barriers: 1,
            max_resident_ctas: 2,
            redirect_utilization: 0.2,
            ..Default::default()
        };
        let b = SmStats {
            cycles: 150,
            instructions: 30,
            barriers: 2,
            max_resident_ctas: 5,
            redirect_utilization: 0.6,
            ..Default::default()
        };
        let chip = SmStats::reduce(&[a, b]);
        assert_eq!(chip.cycles, 150);
        assert_eq!(chip.instructions, 40);
        assert_eq!(chip.barriers, 3);
        assert_eq!(chip.max_resident_ctas, 5);
        assert!((chip.redirect_utilization - 0.4).abs() < 1e-12);
        // Chip IPC uses the slowest SM's cycle count.
        assert!((chip.ipc() - 40.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn matrix_absorb_adds_counts() {
        let mut a = InterferenceMatrix::new(3);
        a.record(0, 1);
        let mut b = InterferenceMatrix::new(3);
        b.record(0, 1);
        b.record(2, 0);
        a.absorb(&b);
        assert_eq!(a.count(0, 1), 2);
        assert_eq!(a.count(2, 0), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn time_series_merge_orders_by_cycle() {
        let p = |cycle: u64, insts: u64| TimeSeriesPoint {
            instructions: insts,
            cycle,
            ipc: 1.0,
            active_warps: 1,
            interference: 0,
            l1d_hit_rate: 0.0,
        };
        let mut a = TimeSeries::default();
        a.push(p(10, 100));
        a.push(p(30, 200));
        let mut b = TimeSeries::default();
        b.push(p(20, 150));
        let merged = TimeSeries::merge_sorted([&a, &b]);
        let cycles: Vec<u64> = merged.points().iter().map(|x| x.cycle).collect();
        assert_eq!(cycles, vec![10, 20, 30]);
        // The instruction axis is rebased to the cumulative chip total
        // (each SM counts its own instructions), staying monotone.
        let insts: Vec<u64> = merged.points().iter().map(|x| x.instructions).collect();
        assert_eq!(insts, vec![100, 250, 350]);
        // Single input round-trips unchanged.
        assert_eq!(TimeSeries::merge_sorted([&a]), a);
    }

    proptest! {
        /// Row sums plus column sums are consistent with the total.
        #[test]
        fn matrix_sum_consistency(events in proptest::collection::vec((0u32..8, 0u32..8), 0..200)) {
            let mut m = InterferenceMatrix::new(8);
            for (v, e) in &events {
                m.record(*v, *e);
            }
            let total = m.total();
            let by_rows: u64 = (0..8).map(|v| m.suffered_by(v)).sum();
            let by_cols: u64 = (0..8).map(|e| m.caused_by(e)).sum();
            prop_assert_eq!(total, events.len() as u64);
            prop_assert_eq!(by_rows, total);
            prop_assert_eq!(by_cols, total);
        }
    }
}
