//! Memory-access coalescer.
//!
//! A Fermi-class LSU merges the per-lane addresses of one warp-wide memory
//! instruction into the minimal set of 128-byte block transactions (§II-A:
//! "all 32 L1D cache banks operate in tandem for a single contiguous 128-byte
//! L1D cache request"). A perfectly coalesced access therefore produces one
//! transaction; a fully divergent one produces up to 32.

use crate::trace::MemPattern;
use gpu_mem::addr::{block_addr, Addr};

/// Coalesces the per-lane addresses of `pattern` into unique 128-byte block
/// addresses, preserving first-touch order (the order transactions are issued
/// to the L1D, which matters for replacement state).
pub fn coalesce(pattern: &MemPattern) -> Vec<Addr> {
    let mut blocks: Vec<Addr> = Vec::new();
    match pattern {
        MemPattern::Strided { base, stride, lanes } => {
            for i in 0..*lanes as i64 {
                let a = block_addr((*base as i64 + i * stride) as Addr);
                if !blocks.contains(&a) {
                    blocks.push(a);
                }
            }
        }
        MemPattern::Scatter(addrs) => {
            for &a in addrs {
                let a = block_addr(a);
                if !blocks.contains(&a) {
                    blocks.push(a);
                }
            }
        }
    }
    blocks
}

/// Degree of coalescing: transactions generated per active lane (1.0 = fully
/// divergent, 1/32 = perfectly coalesced).
pub fn divergence_ratio(pattern: &MemPattern) -> f64 {
    let lanes = pattern.active_lanes().max(1);
    coalesce(pattern).len() as f64 / lanes as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_mem::LINE_SIZE;
    use proptest::prelude::*;

    #[test]
    fn perfectly_coalesced_single_block() {
        let p = MemPattern::Strided { base: 0x1000, stride: 4, lanes: 32 };
        assert_eq!(coalesce(&p), vec![0x1000]);
        assert!((divergence_ratio(&p) - 1.0 / 32.0).abs() < 1e-9);
    }

    #[test]
    fn misaligned_coalesced_access_spans_two_blocks() {
        let p = MemPattern::Strided { base: 0x1000 + 64, stride: 4, lanes: 32 };
        assert_eq!(coalesce(&p), vec![0x1000, 0x1080]);
    }

    #[test]
    fn fully_divergent_one_block_per_lane() {
        let p = MemPattern::Strided { base: 0, stride: LINE_SIZE as i64, lanes: 32 };
        assert_eq!(coalesce(&p).len(), 32);
        assert!((divergence_ratio(&p) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scatter_deduplicates_blocks() {
        let p = MemPattern::Scatter(vec![0, 4, 8, 128, 132, 4096]);
        assert_eq!(coalesce(&p), vec![0, 128, 4096]);
    }

    #[test]
    fn order_is_first_touch() {
        let p = MemPattern::Scatter(vec![4096, 0, 4097]);
        assert_eq!(coalesce(&p), vec![4096, 0]);
    }

    proptest! {
        /// Coalescing never produces more transactions than active lanes and
        /// every produced address is block-aligned and unique.
        #[test]
        fn coalesce_invariants(addrs in proptest::collection::vec(0u64..(1 << 30), 1..32)) {
            let p = MemPattern::Scatter(addrs.clone());
            let blocks = coalesce(&p);
            prop_assert!(blocks.len() <= addrs.len());
            let unique: std::collections::HashSet<_> = blocks.iter().collect();
            prop_assert_eq!(unique.len(), blocks.len());
            for b in &blocks {
                prop_assert_eq!(b % LINE_SIZE, 0);
            }
            // Every lane address falls in one of the produced blocks.
            for a in &addrs {
                prop_assert!(blocks.contains(&block_addr(*a)));
            }
        }
    }
}
