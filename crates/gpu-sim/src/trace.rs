//! Warp-level operation traces.
//!
//! The simulator is trace-driven: each warp executes a stream of
//! [`WarpOp`]s supplied by a [`WarpProgram`]. Workload generators (the
//! `ciao-workloads` crate) implement `WarpProgram` to reproduce the memory
//! behaviour of the paper's PolyBench / Mars / Rodinia benchmarks; tests use
//! the simple [`VecProgram`] wrapper around a pre-built vector of operations.

use gpu_mem::Addr;
use serde::{Deserialize, Serialize};

/// Which address space a memory operation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemSpace {
    /// Global memory, cached in the L1D / L2 hierarchy.
    Global,
    /// Programmer-managed shared memory (scratchpad).
    Shared,
}

/// Per-warp memory access pattern of one SIMT memory instruction.
///
/// Most GPU memory instructions are regular enough to describe as a base +
/// per-lane stride; irregular (indexed / scatter-gather) instructions carry
/// the full per-lane address list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MemPattern {
    /// Lane `i` accesses `base + i * stride` (for `lanes` active lanes).
    Strided {
        /// Address accessed by lane 0.
        base: Addr,
        /// Per-lane address increment in bytes (4 = perfectly coalesced
        /// 32-bit accesses; 128+ = one transaction per lane).
        stride: i64,
        /// Number of active lanes (1..=32).
        lanes: u8,
    },
    /// Arbitrary per-lane addresses (irregular access, e.g. through an index
    /// array as in SpMV-style kernels, §VI).
    Scatter(Vec<Addr>),
}

impl MemPattern {
    /// Expands the pattern into per-lane addresses.
    ///
    /// Strided lane addresses use wrapping two's-complement arithmetic:
    /// lane `i` reads `base + i·stride (mod 2⁶⁴)`, so negative strides walk
    /// downwards and a pattern straddling the top of the address space wraps
    /// instead of overflowing.
    pub fn lane_addresses(&self) -> Vec<Addr> {
        match self {
            MemPattern::Strided { base, stride, lanes } => (0..*lanes as i64)
                .map(|i| base.wrapping_add(i.wrapping_mul(*stride) as Addr))
                .collect(),
            MemPattern::Scatter(addrs) => addrs.clone(),
        }
    }

    /// Number of active lanes.
    pub fn active_lanes(&self) -> usize {
        match self {
            MemPattern::Strided { lanes, .. } => *lanes as usize,
            MemPattern::Scatter(addrs) => addrs.len(),
        }
    }
}

/// One dynamic warp-level operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WarpOp {
    /// An arithmetic/control instruction occupying the warp for `cycles`
    /// cycles (models the issue-to-writeback latency seen by the scoreboard).
    Compute {
        /// Execution latency in cycles.
        cycles: u32,
    },
    /// A load instruction.
    Load {
        /// Target address space.
        space: MemSpace,
        /// Access pattern.
        pattern: MemPattern,
    },
    /// A store instruction.
    Store {
        /// Target address space.
        space: MemSpace,
        /// Access pattern.
        pattern: MemPattern,
    },
    /// CTA-wide barrier (`__syncthreads()`).
    Barrier,
}

impl WarpOp {
    /// Convenience constructor: a perfectly coalesced 32-lane global load of
    /// one 128-byte block starting at `base`.
    pub fn coalesced_load(base: Addr) -> Self {
        WarpOp::Load {
            space: MemSpace::Global,
            pattern: MemPattern::Strided { base, stride: 4, lanes: 32 },
        }
    }

    /// Convenience constructor: a perfectly coalesced 32-lane global store.
    pub fn coalesced_store(base: Addr) -> Self {
        WarpOp::Store {
            space: MemSpace::Global,
            pattern: MemPattern::Strided { base, stride: 4, lanes: 32 },
        }
    }

    /// Convenience constructor: a single-cycle compute instruction.
    pub fn alu() -> Self {
        WarpOp::Compute { cycles: 1 }
    }

    /// True if this is a global-memory load or store.
    pub fn is_global_mem(&self) -> bool {
        matches!(
            self,
            WarpOp::Load { space: MemSpace::Global, .. }
                | WarpOp::Store { space: MemSpace::Global, .. }
        )
    }

    /// True if this is a shared-memory load or store.
    pub fn is_shared_mem(&self) -> bool {
        matches!(
            self,
            WarpOp::Load { space: MemSpace::Shared, .. }
                | WarpOp::Store { space: MemSpace::Shared, .. }
        )
    }
}

/// A source of warp operations for one warp.
///
/// Implementations must be deterministic: the simulator may be re-run with
/// different schedulers and the comparison is only meaningful if every warp
/// replays the same operation stream.
pub trait WarpProgram: Send {
    /// Produces the next operation, or `None` when the warp has finished.
    fn next_op(&mut self) -> Option<WarpOp>;

    /// A hint of how many operations remain (used only for reporting; `None`
    /// if unknown).
    fn remaining_hint(&self) -> Option<u64> {
        None
    }
}

/// A `WarpProgram` backed by a pre-built vector of operations.
#[derive(Debug, Clone)]
pub struct VecProgram {
    ops: std::collections::VecDeque<WarpOp>,
}

impl VecProgram {
    /// Wraps a vector of operations.
    pub fn new(ops: Vec<WarpOp>) -> Self {
        VecProgram { ops: ops.into() }
    }

    /// Builds a simple streaming program: `n` iterations of (load, compute).
    pub fn streaming(base: Addr, n: usize, stride_between_iters: u64) -> Self {
        let mut ops = Vec::with_capacity(n * 2);
        for i in 0..n {
            ops.push(WarpOp::coalesced_load(base + i as u64 * stride_between_iters));
            ops.push(WarpOp::alu());
        }
        VecProgram::new(ops)
    }
}

impl WarpProgram for VecProgram {
    fn next_op(&mut self) -> Option<WarpOp> {
        self.ops.pop_front()
    }

    fn remaining_hint(&self) -> Option<u64> {
        Some(self.ops.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_stride_repeats_the_base_address() {
        let p = MemPattern::Strided { base: 0x4000, stride: 0, lanes: 32 };
        let addrs = p.lane_addresses();
        assert_eq!(addrs.len(), 32);
        assert!(addrs.iter().all(|&a| a == 0x4000));
        assert_eq!(p.active_lanes(), 32);
    }

    #[test]
    fn empty_scatter_has_no_lanes() {
        let p = MemPattern::Scatter(Vec::new());
        assert!(p.lane_addresses().is_empty());
        assert_eq!(p.active_lanes(), 0);
    }

    #[test]
    fn zero_lane_strided_pattern_is_empty() {
        let p = MemPattern::Strided { base: 128, stride: 4, lanes: 0 };
        assert!(p.lane_addresses().is_empty());
        assert_eq!(p.active_lanes(), 0);
    }

    #[test]
    fn strided_pattern_wraps_at_the_top_of_the_address_space() {
        // 32 lanes of stride 128 starting 4 lines below u64::MAX: the tail
        // lanes wrap around to low addresses instead of overflowing.
        let base = Addr::MAX - 4 * 128 + 1;
        let p = MemPattern::Strided { base, stride: 128, lanes: 32 };
        let addrs = p.lane_addresses();
        assert_eq!(addrs.len(), 32);
        assert_eq!(addrs[0], base);
        assert_eq!(addrs[4], base.wrapping_add(4 * 128));
        assert!(addrs[4] < base, "lane 4 must have wrapped");
        // Negative stride from a low base wraps the other way.
        let down = MemPattern::Strided { base: 128, stride: -128, lanes: 3 };
        assert_eq!(down.lane_addresses(), vec![128, 0, Addr::MAX - 127]);
    }

    proptest! {
        /// Lane addresses follow base + i·stride (mod 2^64) for every lane
        /// count (0..=32), any base and any stride — including zero, negative
        /// and wrap-inducing combinations.
        #[test]
        fn strided_lane_addresses_match_the_wrapping_formula(
            base in any::<u64>(),
            stride in any::<i64>(),
            lanes in 0u8..=32,
        ) {
            let p = MemPattern::Strided { base, stride, lanes };
            let addrs = p.lane_addresses();
            prop_assert_eq!(addrs.len(), lanes as usize);
            prop_assert_eq!(p.active_lanes(), lanes as usize);
            for (i, &a) in addrs.iter().enumerate() {
                let expect = base.wrapping_add((i as i64).wrapping_mul(stride) as u64);
                prop_assert_eq!(a, expect, "lane {}", i);
            }
        }
    }

    proptest! {
        /// Scatter patterns are returned verbatim, whatever their shape —
        /// empty, duplicated or full 32-lane lists included.
        #[test]
        fn scatter_lane_addresses_round_trip(
            addrs in proptest::collection::vec(any::<u64>(), 0..32),
        ) {
            let p = MemPattern::Scatter(addrs.clone());
            prop_assert_eq!(p.active_lanes(), addrs.len());
            prop_assert_eq!(p.lane_addresses(), addrs);
        }
    }

    #[test]
    fn strided_pattern_expands() {
        let p = MemPattern::Strided { base: 1000, stride: 4, lanes: 4 };
        assert_eq!(p.lane_addresses(), vec![1000, 1004, 1008, 1012]);
        assert_eq!(p.active_lanes(), 4);
    }

    #[test]
    fn scatter_pattern_expands() {
        let p = MemPattern::Scatter(vec![5, 1000, 77]);
        assert_eq!(p.lane_addresses(), vec![5, 1000, 77]);
        assert_eq!(p.active_lanes(), 3);
    }

    #[test]
    fn negative_stride_supported() {
        let p = MemPattern::Strided { base: 1024, stride: -128, lanes: 3 };
        assert_eq!(p.lane_addresses(), vec![1024, 896, 768]);
    }

    #[test]
    fn op_classification() {
        assert!(WarpOp::coalesced_load(0).is_global_mem());
        assert!(!WarpOp::coalesced_load(0).is_shared_mem());
        assert!(!WarpOp::alu().is_global_mem());
        let sl = WarpOp::Load {
            space: MemSpace::Shared,
            pattern: MemPattern::Strided { base: 0, stride: 4, lanes: 32 },
        };
        assert!(sl.is_shared_mem());
        assert!(!WarpOp::Barrier.is_global_mem());
    }

    #[test]
    fn vec_program_replays_in_order() {
        let mut p =
            VecProgram::new(vec![WarpOp::alu(), WarpOp::Barrier, WarpOp::coalesced_load(256)]);
        assert_eq!(p.remaining_hint(), Some(3));
        assert_eq!(p.next_op(), Some(WarpOp::alu()));
        assert_eq!(p.next_op(), Some(WarpOp::Barrier));
        assert!(matches!(p.next_op(), Some(WarpOp::Load { .. })));
        assert_eq!(p.next_op(), None);
        assert_eq!(p.remaining_hint(), Some(0));
    }

    #[test]
    fn streaming_builder_alternates_load_compute() {
        let mut p = VecProgram::streaming(0, 3, 128);
        let mut loads = 0;
        let mut computes = 0;
        while let Some(op) = p.next_op() {
            match op {
                WarpOp::Load { .. } => loads += 1,
                WarpOp::Compute { .. } => computes += 1,
                _ => panic!("unexpected op"),
            }
        }
        assert_eq!((loads, computes), (3, 3));
    }
}
