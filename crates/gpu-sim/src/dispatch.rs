//! Multi-tenant CTA dispatch: kernel streams, SM partitioning policies and
//! the chip-level kernel queue.
//!
//! PR 2's chip engine ran exactly one kernel, splitting its grid round-robin
//! across SMs. This module generalises dispatch to N co-running kernels
//! (*tenants*): a [`KernelStream`] binds a kernel to a [`TenantId`], a
//! [`DispatchPolicy`] decides which SM runs which tenant's CTAs, and
//! [`KernelQueue`] is the chip-level entry point that turns a set of streams
//! into one [`SimResult`] with per-tenant attribution. Streams may carry an
//! [`KernelStream::arrival_cycle`]: the engine admits such *dynamic arrivals*
//! at the first epoch boundary at or after their cycle.
//!
//! ## The four policies
//!
//! * [`DispatchPolicy::Exclusive`] — temporal multiplexing: each kernel gets
//!   the whole chip to itself, streams execute serially in submission order
//!   with cold caches between kernels. This is exactly "today's" behaviour
//!   repeated per kernel: a queue with a single stream is bit-identical to a
//!   plain single-kernel chip run. Tenants never interfere; turnaround grows
//!   with queue position (tenant `k`'s finish cycle includes every earlier
//!   kernel's runtime).
//! * [`DispatchPolicy::SpatialPartition`] — each tenant receives a disjoint,
//!   contiguous set of SMs (balanced to within one SM) and its grid is
//!   dispatched round-robin across that set only. Tenants are isolated at
//!   the SM/L1 level but still share the banked L2 and DRAM, so chip-level
//!   cache interference remains — precisely the effect the per-tenant L2
//!   attribution makes measurable. With more tenants than SMs, tenants wrap
//!   onto single SMs (`tenant t → SM t mod num_sms`) and SM-level isolation
//!   degrades gracefully into sharing.
//! * [`DispatchPolicy::SharedRoundRobin`] — CTAs from all streams are
//!   interleaved round-robin (one CTA per stream per round) into a single
//!   launch sequence that is then split round-robin across every SM, so each
//!   SM co-runs warps from all tenants and intra-SM L1 interference between
//!   tenants appears in addition to the shared-L2 contention. With a single
//!   stream the interleaving is the identity, which reduces this policy to
//!   PR 2's round-robin dispatcher.
//! * [`DispatchPolicy::InterferenceAware`] — adaptive, monitor-driven
//!   dispatch, the chip-level analogue of CIAO-T: CTAs are fed from
//!   per-tenant pending queues at epoch boundaries, tenants are classified
//!   from their live L1/L2 attribution, and streaming tenants are throttled
//!   or migrated onto shrinking SM subsets when a cache-sensitive victim's
//!   L2 hit rate degrades. See [`AdaptiveDispatcher`].
//!
//! ## Determinism
//!
//! Every static policy is a pure function of `(streams, num_sms)`:
//! assignment lists are computed up front, before any simulation, and the
//! engine's barrier-synchronised epoch scheme (see [`crate::gpu`]) keeps
//! execution deterministic regardless of worker-thread scheduling. The
//! adaptive policy decides at epoch boundaries from barrier-time statistics
//! only, so it is equally deterministic. Two runs of the same mix under the
//! same policy produce identical results, and changing the policy changes
//! only the CTA placement, never the per-warp traces.

use std::sync::Arc;

use crate::config::GpuConfig;
use crate::gpu::{Gpu, SmUnit};
use crate::kernel::{Kernel, KernelInfo};
use crate::simulator::SimResult;
use crate::stats::{
    DispatchAction, DispatchDecision, DispatchLog, SmStats, TenantClass, TimeSeries,
};
use gpu_mem::{CtaId, Cycle, TenantId};
use serde::{Deserialize, Serialize};
use sim_obs::{ObsLevel, ObsReport};

/// Latency class of a tenant — the SLO tier the fleet layer schedules
/// against and the on-chip dispatcher protects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum LatencyClass {
    /// Best-effort throughput work: no floor beyond the dispatcher's
    /// never-starve guarantee of one SM.
    #[default]
    Batch,
    /// Latency-sensitive work whose [`QosSpec`] throughput floors the
    /// [`AdaptiveDispatcher`] must respect.
    Interactive,
}

impl LatencyClass {
    /// Display label used in reports and [`crate::TenantResult::qos`].
    pub fn label(self) -> &'static str {
        match self {
            LatencyClass::Batch => "batch",
            LatencyClass::Interactive => "interactive",
        }
    }

    /// Parses a [`LatencyClass::label`] (case-insensitive).
    pub fn from_label(label: &str) -> Option<Self> {
        [LatencyClass::Batch, LatencyClass::Interactive]
            .into_iter()
            .find(|c| c.label().eq_ignore_ascii_case(label))
    }
}

/// Per-stream quality-of-service contract the [`AdaptiveDispatcher`]
/// enforces. Static dispatch policies compute their SM assignment up front
/// and ignore it.
///
/// * `min_sms` is a *throughput floor*: the throttle controller never
///   shrinks the stream's allowed-SM set below it (the default floor is the
///   dispatcher's never-starve minimum of one SM).
/// * `reserved_sms` carves that many SMs out of the head of the chip for
///   this stream exclusively; other tenants are never fed CTAs there.
///   Reserved ranges are assigned in tenant order and clamped so at least
///   one SM stays shareable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct QosSpec {
    /// The stream's latency class (reported in [`crate::TenantResult::qos`]).
    pub latency: LatencyClass,
    /// Minimum allowed-SM-set size under throttling (`0` means the default
    /// never-starve floor of 1).
    pub min_sms: usize,
    /// SMs at the head of the chip reserved exclusively for this stream
    /// (`0` = none).
    pub reserved_sms: usize,
}

impl QosSpec {
    /// The default best-effort contract: batch class, no floors.
    pub fn batch() -> Self {
        QosSpec::default()
    }

    /// An interactive-class contract with an allowed-SM floor of `min_sms`.
    pub fn interactive(min_sms: usize) -> Self {
        QosSpec { latency: LatencyClass::Interactive, min_sms, reserved_sms: 0 }
    }

    /// Adds `reserved_sms` exclusively reserved SMs to the contract.
    pub fn with_reserved(mut self, reserved_sms: usize) -> Self {
        self.reserved_sms = reserved_sms;
        self
    }
}

/// A kernel submitted for co-execution, bound to the tenant identity used to
/// attribute its resource usage throughout the memory system.
#[derive(Clone)]
pub struct KernelStream {
    /// Tenant identity of this stream (dense, `0..num_streams`).
    pub tenant: TenantId,
    /// Chip cycle at which the stream enters the kernel queue. `0` (the
    /// default) launches at simulation start; a positive value makes the
    /// stream a *dynamic arrival*: the engine admits it at the first epoch
    /// boundary at or after this cycle.
    pub arrival_cycle: Cycle,
    /// The stream's quality-of-service contract (floors and reservations
    /// enforced by the [`AdaptiveDispatcher`]).
    pub qos: QosSpec,
    kernel: Arc<dyn Kernel>,
    info: KernelInfo,
}

impl KernelStream {
    /// Binds `kernel` to `tenant`, launching at cycle 0.
    pub fn new(tenant: TenantId, kernel: Arc<dyn Kernel>) -> Self {
        Self::new_at(tenant, kernel, 0)
    }

    /// Binds `kernel` to `tenant`, entering the queue at `arrival_cycle`.
    pub fn new_at(tenant: TenantId, kernel: Arc<dyn Kernel>, arrival_cycle: Cycle) -> Self {
        Self::new_qos_at(tenant, kernel, arrival_cycle, QosSpec::default())
    }

    /// Binds `kernel` to `tenant` with an explicit [`QosSpec`], entering the
    /// queue at `arrival_cycle`.
    pub fn new_qos_at(
        tenant: TenantId,
        kernel: Arc<dyn Kernel>,
        arrival_cycle: Cycle,
        qos: QosSpec,
    ) -> Self {
        let info = kernel.info();
        KernelStream { tenant, arrival_cycle, qos, kernel, info }
    }

    /// The stream's kernel.
    pub fn kernel(&self) -> &Arc<dyn Kernel> {
        &self.kernel
    }

    /// Cached launch geometry of the stream's kernel.
    pub fn info(&self) -> &KernelInfo {
        &self.info
    }
}

impl std::fmt::Debug for KernelStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelStream")
            .field("tenant", &self.tenant)
            .field("kernel", &self.info.name)
            .field("ctas", &self.info.num_ctas)
            .field("arrival", &self.arrival_cycle)
            .finish()
    }
}

/// How co-running kernels share the chip's SMs. See the module docs for the
/// semantics and determinism guarantees of each policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// Temporal multiplexing: kernels run serially, each owning every SM.
    Exclusive,
    /// Disjoint SM sets per kernel; the L2/DRAM backend stays shared.
    SpatialPartition,
    /// CTAs of all kernels interleaved round-robin onto every SM.
    SharedRoundRobin,
    /// Adaptive, monitor-driven dispatch — the chip-level analogue of CIAO-T.
    /// An epoch-boundary monitor reads the live per-tenant L1/L2 attribution,
    /// classifies tenants as cache-sensitive or streaming, and throttles or
    /// migrates the streaming tenants' *pending* CTAs onto a shrinking SM
    /// subset whenever a cache-sensitive tenant's hit rate degrades past a
    /// threshold (with multiplicative shrink / hysteresis-gated growth to
    /// avoid ping-ponging). See [`AdaptiveDispatcher`].
    InterferenceAware,
}

impl DispatchPolicy {
    /// All policies, in report order.
    pub fn all() -> Vec<DispatchPolicy> {
        vec![
            DispatchPolicy::Exclusive,
            DispatchPolicy::SpatialPartition,
            DispatchPolicy::SharedRoundRobin,
            DispatchPolicy::InterferenceAware,
        ]
    }

    /// The statically planned policies (everything but the adaptive one):
    /// their SM assignments are a pure up-front function of the streams.
    pub fn static_policies() -> Vec<DispatchPolicy> {
        vec![
            DispatchPolicy::Exclusive,
            DispatchPolicy::SpatialPartition,
            DispatchPolicy::SharedRoundRobin,
        ]
    }

    /// Display label used by reports and the harness CLI.
    pub fn label(self) -> &'static str {
        match self {
            DispatchPolicy::Exclusive => "exclusive",
            DispatchPolicy::SpatialPartition => "spatial",
            DispatchPolicy::SharedRoundRobin => "shared-rr",
            DispatchPolicy::InterferenceAware => "interference-aware",
        }
    }

    /// Parses a label (case-insensitive).
    pub fn from_label(label: &str) -> Option<DispatchPolicy> {
        Self::all().into_iter().find(|p| p.label().eq_ignore_ascii_case(label))
    }

    /// Whether kernels execute at the same time under this policy (`false`
    /// only for [`DispatchPolicy::Exclusive`], which serialises them).
    pub fn is_concurrent(self) -> bool {
        !matches!(self, DispatchPolicy::Exclusive)
    }

    /// Whether the policy re-places work at run time (only
    /// [`DispatchPolicy::InterferenceAware`]); static policies compute their
    /// whole assignment before simulation starts.
    pub fn is_adaptive(self) -> bool {
        matches!(self, DispatchPolicy::InterferenceAware)
    }
}

impl std::fmt::Display for DispatchPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One CTA's worth of work assigned to an SM: which tenant it belongs to,
/// which kernel builds its warp programs, and its launch footprint. SMs
/// launch the entries of their work list strictly in order as warp slots and
/// shared memory free up.
#[derive(Clone)]
pub struct CtaWork {
    /// Tenant the CTA belongs to.
    pub tenant: TenantId,
    /// Kernel that builds the CTA's warp programs.
    pub kernel: Arc<dyn Kernel>,
    /// Global CTA id within its kernel's grid.
    pub cta: CtaId,
    /// Warps the CTA launches.
    pub warps: usize,
    /// Programmer-allocated shared memory, in bytes.
    pub shared_mem: u32,
}

impl std::fmt::Debug for CtaWork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CtaWork")
            .field("tenant", &self.tenant)
            .field("cta", &self.cta)
            .field("warps", &self.warps)
            .finish()
    }
}

/// Expands a single kernel into its per-CTA work items (tenant defaults to
/// the stream's id), in launch order.
pub(crate) fn stream_work(stream: &KernelStream) -> Vec<CtaWork> {
    let info = stream.info();
    (0..info.num_ctas)
        .map(|c| CtaWork {
            tenant: stream.tenant,
            kernel: Arc::clone(&stream.kernel),
            cta: c as CtaId,
            warps: info.warps_per_cta.max(1),
            shared_mem: info.shared_mem_per_cta,
        })
        .collect()
}

/// Round-robin CTA dispatch: block `b` of the grid runs on SM `b % num_sms`.
/// Returns one list of global CTA ids per SM, each in launch order. This is
/// PR 2's single-kernel dispatcher, kept as the building block every policy
/// composes.
pub fn dispatch_round_robin(num_ctas: usize, num_sms: usize) -> Vec<Vec<usize>> {
    let num_sms = num_sms.max(1);
    let mut out = vec![Vec::with_capacity(num_ctas.div_ceil(num_sms)); num_sms];
    for b in 0..num_ctas {
        out[b % num_sms].push(b);
    }
    out
}

/// The disjoint SM sets the [`DispatchPolicy::SpatialPartition`] policy hands
/// to each of `num_tenants` tenants on a chip of `num_sms` SMs: contiguous
/// ranges balanced to within one SM, in tenant order. With more tenants than
/// SMs the sets degenerate to `tenant t → SM t mod num_sms` (no longer
/// disjoint — SM-level isolation is impossible in that regime).
pub fn spatial_sm_sets(num_tenants: usize, num_sms: usize) -> Vec<Vec<usize>> {
    let num_sms = num_sms.max(1);
    if num_tenants > num_sms {
        return (0..num_tenants).map(|t| vec![t % num_sms]).collect();
    }
    let base = num_sms / num_tenants.max(1);
    let extra = num_sms % num_tenants.max(1);
    let mut sets = Vec::with_capacity(num_tenants);
    let mut next = 0;
    for t in 0..num_tenants {
        let len = base + usize::from(t < extra);
        sets.push((next..next + len).collect());
        next += len;
    }
    sets
}

/// Computes each SM's work list for `streams` under `policy` on a chip of
/// `num_sms` SMs. Pure and deterministic: the same inputs always produce the
/// same lists. Arrival cycles are ignored here — `build_dispatch` (what the
/// engine uses) splits the same assignments into arrival-ordered batches.
///
/// For [`DispatchPolicy::Exclusive`] this returns the per-stream round-robin
/// assignments concatenated in stream order — the single-engine
/// approximation in which a later kernel's CTAs launch on an SM as soon as
/// the earlier kernel's CTAs retire from it. [`KernelQueue::run`] implements
/// the exact policy (fully serial execution with cold caches between
/// kernels) and is what the harness uses.
///
/// For [`DispatchPolicy::InterferenceAware`] with a single stream the
/// adaptive machinery has nothing to arbitrate, so the assignment degenerates
/// to plain round-robin over every SM (bit-identical to `Exclusive` with one
/// stream). With several streams the up-front lists are *empty* — the
/// [`AdaptiveDispatcher`] feeds CTAs to SMs at epoch boundaries instead.
pub fn plan(streams: &[KernelStream], num_sms: usize, policy: DispatchPolicy) -> Vec<Vec<CtaWork>> {
    let num_sms = num_sms.max(1);
    let mut lists: Vec<Vec<CtaWork>> = vec![Vec::new(); num_sms];
    match policy {
        DispatchPolicy::Exclusive => {
            for stream in streams {
                for (sm, work) in round_robin_split(stream_work(stream), num_sms) {
                    lists[sm].extend(work);
                }
            }
        }
        DispatchPolicy::InterferenceAware => {
            if let [stream] = streams {
                for (sm, work) in round_robin_split(stream_work(stream), num_sms) {
                    lists[sm].extend(work);
                }
            }
        }
        DispatchPolicy::SpatialPartition => {
            let sets = spatial_sm_sets(streams.len(), num_sms);
            for (stream, set) in streams.iter().zip(&sets) {
                for (j, work) in stream_work(stream).into_iter().enumerate() {
                    lists[set[j % set.len()]].push(work);
                }
            }
        }
        DispatchPolicy::SharedRoundRobin => {
            let mut queues: Vec<Vec<CtaWork>> = streams.iter().map(stream_work).collect();
            for q in &mut queues {
                q.reverse(); // pop from the back = launch order
            }
            let mut sequence: Vec<CtaWork> = Vec::new();
            while queues.iter().any(|q| !q.is_empty()) {
                for q in &mut queues {
                    if let Some(work) = q.pop() {
                        sequence.push(work);
                    }
                }
            }
            for (b, work) in sequence.into_iter().enumerate() {
                lists[b % num_sms].push(work);
            }
        }
    }
    lists
}

/// Splits one stream's work round-robin across SMs, yielding `(sm, items)`.
fn round_robin_split(
    work: Vec<CtaWork>,
    num_sms: usize,
) -> impl Iterator<Item = (usize, Vec<CtaWork>)> {
    let mut per_sm: Vec<Vec<CtaWork>> = vec![Vec::new(); num_sms];
    for (b, item) in work.into_iter().enumerate() {
        per_sm[b % num_sms].push(item);
    }
    per_sm.into_iter().enumerate()
}

// ---------------------------------------------------------------------------
// Arrival-aware dispatch plans
// ---------------------------------------------------------------------------

/// Per-SM work of the streams sharing one arrival cycle, waiting for its
/// admission epoch (static policies only — the adaptive dispatcher holds its
/// deferred work in per-tenant pending queues instead).
#[derive(Debug, Clone)]
pub(crate) struct DeferredBatch {
    /// Cycle the batch's streams arrive; admitted at the first epoch boundary
    /// at or after it.
    pub arrival: Cycle,
    /// Work to append to each SM's list at admission.
    pub per_sm: Vec<Vec<CtaWork>>,
}

/// Everything the chip engine needs to execute `streams` under a policy:
/// the work lists installed before the first cycle, the arrival-deferred
/// batches of late streams (static policies), and the adaptive dispatcher
/// (interference-aware with more than one stream).
pub(crate) struct DispatchPlan {
    /// Per-SM work lists installed at construction (arrival-cycle-0 work).
    pub initial: Vec<Vec<CtaWork>>,
    /// Batches admitted at later epoch boundaries, sorted by arrival.
    pub deferred: Vec<DeferredBatch>,
    /// The run-time dispatcher for [`DispatchPolicy::InterferenceAware`].
    pub adaptive: Option<AdaptiveDispatcher>,
}

/// Builds the dispatch plan for `streams` under `policy`. With every arrival
/// at cycle 0 and a static policy this reduces to [`plan`] (all work initial,
/// nothing deferred); late arrivals are grouped by arrival cycle into
/// [`DeferredBatch`]es placed with the same per-policy rules:
///
/// * `SpatialPartition` — SM sets are computed over *all* streams (a late
///   tenant's SM share is reserved from the start), each stream's grid is
///   dealt over its own set, so deferral never changes placement.
/// * `SharedRoundRobin` — streams sharing an arrival cycle are interleaved
///   round-robin; the SM cursor continues across batches so late work keeps
///   filling SMs evenly.
/// * `Exclusive` / single-stream plans — each stream's round-robin assignment
///   becomes its own batch.
/// * `InterferenceAware` with >1 stream — no static work at all; the
///   [`AdaptiveDispatcher`] admits and feeds everything at epoch boundaries.
pub(crate) fn build_dispatch(
    streams: &[KernelStream],
    num_sms: usize,
    policy: DispatchPolicy,
    max_warps_per_sm: usize,
    epoch_cycles: Cycle,
) -> DispatchPlan {
    let num_sms = num_sms.max(1);
    if policy.is_adaptive() && streams.len() > 1 {
        return DispatchPlan {
            initial: vec![Vec::new(); num_sms],
            deferred: Vec::new(),
            adaptive: Some(AdaptiveDispatcher::new(
                streams,
                num_sms,
                max_warps_per_sm,
                epoch_cycles.max(1) * DECISION_EPOCHS,
            )),
        };
    }
    if streams.iter().all(|s| s.arrival_cycle == 0) {
        return DispatchPlan {
            initial: plan(streams, num_sms, policy),
            deferred: Vec::new(),
            adaptive: None,
        };
    }
    // Group streams by arrival cycle (ascending; ties keep tenant order).
    let mut arrivals: Vec<Cycle> = streams.iter().map(|s| s.arrival_cycle).collect();
    arrivals.sort_unstable();
    arrivals.dedup();
    let mut initial = vec![Vec::new(); num_sms];
    let mut deferred = Vec::new();
    let sets = spatial_sm_sets(streams.len(), num_sms);
    let mut rr_cursor = 0usize; // SharedRoundRobin SM cursor, continued across batches
    for arrival in arrivals {
        let group: Vec<&KernelStream> =
            streams.iter().filter(|s| s.arrival_cycle == arrival).collect();
        let mut per_sm: Vec<Vec<CtaWork>> = vec![Vec::new(); num_sms];
        match policy {
            DispatchPolicy::SpatialPartition => {
                for stream in &group {
                    let set = &sets[stream.tenant as usize];
                    for (j, work) in stream_work(stream).into_iter().enumerate() {
                        per_sm[set[j % set.len()]].push(work);
                    }
                }
            }
            DispatchPolicy::SharedRoundRobin => {
                let mut queues: Vec<Vec<CtaWork>> = group.iter().map(|s| stream_work(s)).collect();
                for q in &mut queues {
                    q.reverse();
                }
                while queues.iter().any(|q| !q.is_empty()) {
                    for q in &mut queues {
                        if let Some(work) = q.pop() {
                            per_sm[rr_cursor % num_sms].push(work);
                            rr_cursor += 1;
                        }
                    }
                }
            }
            DispatchPolicy::Exclusive | DispatchPolicy::InterferenceAware => {
                for stream in &group {
                    for (sm, work) in round_robin_split(stream_work(stream), num_sms) {
                        per_sm[sm].extend(work);
                    }
                }
            }
        }
        if arrival == 0 {
            initial = per_sm;
        } else {
            deferred.push(DeferredBatch { arrival, per_sm });
        }
    }
    DispatchPlan { initial, deferred, adaptive: None }
}

// ---------------------------------------------------------------------------
// The interference-aware adaptive dispatcher (chip-level CIAO-T)
// ---------------------------------------------------------------------------

/// Cumulative per-tenant counters the engine samples at every epoch boundary
/// and hands to the [`AdaptiveDispatcher`]; the dispatcher differences
/// consecutive samples into per-window rates.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TenantSignal {
    /// L1D lookups of the tenant's warps, summed over SMs.
    pub l1_accesses: u64,
    /// Of those, the lookups that hit.
    pub l1_hits: u64,
    /// Shared-L2 lookups attributed to the tenant.
    pub l2_accesses: u64,
    /// Of those, the lookups that hit.
    pub l2_hits: u64,
    /// DRAM accesses attributed to the tenant.
    pub dram_accesses: u64,
    /// Instructions the tenant executed.
    pub instructions: u64,
    /// CTAs of the tenant that ran to completion, summed over SMs.
    pub ctas_completed: usize,
}

/// Decision-window length, in epochs, between monitor evaluations.
pub(crate) const DECISION_EPOCHS: Cycle = 8;
/// Minimum window L2 lookups before an L2 hit rate is considered measured.
const MIN_L2_SAMPLES: u64 = 16;
/// Minimum window L1 lookups before an L1 hit rate is considered measured.
const MIN_L1_SAMPLES: u64 = 32;
/// Minimum L1D lookups a tenant must have produced (cumulative since
/// admission) before its L1 signature weighs into classification — large
/// enough that the cold-start misses every tenant begins with are amortised
/// and data reuse has had time to emerge.
const CLASSIFY_MIN_L1: u64 = 256;
/// Cumulative L1 hit rate at or above which a tenant classifies as
/// cache-sensitive; below it the tenant is streaming (a working set too
/// large to profit from the cache it flows through).
const CACHE_L1_RATE: f64 = 0.42;
/// Best observed window L2 hit rate at or above which a tenant classifies as
/// cache-sensitive even when its L1 signature is ambiguous. Under the
/// pipelined banked backend the per-tenant L2 attribution is the sharper
/// reuse signal: a tenant whose own traffic, once warmed up, keeps hitting
/// in the shared L2 has a working set the caches can hold, whatever its L1
/// interleaving looks like. The *best* window is the right summary — the
/// cold-start windows every tenant begins with would dilute a cumulative
/// rate below any useful threshold.
const CACHE_L2_RATE: f64 = 0.6;
/// Windows a tenant may stay unclassifiable before it is given up on.
pub(crate) const MAX_PROBE_WINDOWS: Cycle = 40;
/// Windows after which a tenant producing almost no memory traffic is given
/// up on early — a compute-intensive tenant will never reach
/// `CLASSIFY_MIN_L1`, and waiting the full observation budget for it is
/// pointless.
const EARLY_PROBE_WINDOWS: Cycle = 8;
/// Observation windows that must pass before a *streaming* verdict is
/// allowed. Classification runs on live co-run signals (nothing is held back
/// while a tenant is unclassified), so patience here costs no throughput —
/// and cache reuse takes a few windows to emerge from the cold-start misses,
/// while a premature streaming verdict would confine a victim.
const MIN_STREAM_WINDOWS: Cycle = 4;
/// Minimum DRAM accesses since admission before a tenant can be declared
/// streaming: an interferer worth confining must actually flood the shared
/// memory system. Light-traffic (compute-intensive) tenants stay
/// unclassified and run anywhere.
const STREAM_MIN_DRAM: u64 = 512;
/// Fraction of a victim's best window L2 hit rate below which the window
/// counts as *degraded* (the throttle trigger).
const DEGRADE_FRAC: f64 = 0.85;
/// Fraction of a victim's best window IPC below which the window counts as
/// degraded. The L2 hit rate alone is blind to *bandwidth* interference — a
/// victim can keep hitting in its cache while its misses and replies queue
/// behind a streamer's flood at the DRAM bus and the reply fabric (the
/// channel the reply-path contention model makes visible) — so the monitor
/// watches the victim's delivered throughput too.
const IPC_DEGRADE_FRAC: f64 = 0.8;
/// Minimum instructions a victim must retire in a window before its window
/// IPC is considered measured.
const MIN_IPC_WINDOW_INSTR: u64 = 500;
/// Consecutive healthy windows required before throttles are relaxed — the
/// hysteresis that prevents shrink/grow ping-ponging.
const RESTORE_PATIENCE: u32 = 3;
/// Divisor of `num_sms` giving a streaming tenant's initial allowed-SM-set
/// size when it co-runs with a cache-sensitive tenant.
const CONFINE_DIVISOR: usize = 4;
/// Ceiling of the per-allowed-SM in-flight CTA multiplier for streamers.
const MAX_STREAM_LIMIT: usize = 64;
/// Extra warps' worth of work each SM may be handed per boundary beyond its
/// reported free slots. Retirements between boundaries would otherwise leave
/// warp slots idle for up to a full epoch before the dispatcher notices;
/// a small queued buffer keeps the SM launching while most of the grid still
/// stays pending (and therefore confinable) at the dispatcher.
const FEED_AHEAD_WARPS: usize = 8;

/// Per-tenant state of the adaptive dispatcher.
#[derive(Debug)]
struct TenantEntry {
    arrival: Cycle,
    admitted: bool,
    pending: std::collections::VecDeque<CtaWork>,
    dealt: usize,
    class: TenantClass,
    classified: bool,
    /// Decision windows observed since admission while still unclassified.
    probe_windows: Cycle,
    /// Size of the allowed-SM set (the *last* `allowed` SMs of the chip for
    /// streamers; the full chip for everyone else).
    allowed: usize,
    /// QoS throughput floor: `allowed` never shrinks below this
    /// ([`QosSpec::min_sms`] clamped to the chip, minimum 1).
    floor: usize,
    /// Per-allowed-SM in-flight CTA multiplier (streamers only; `usize::MAX`
    /// means unthrottled).
    limit: usize,
    best_l2_rate: f64,
    /// Best measured window IPC (instructions per window cycle) — the
    /// throughput baseline the bandwidth-interference check compares
    /// against.
    best_ipc: f64,
    /// Counter snapshot at admission; classification reads the cumulative
    /// traffic relative to this.
    base_signal: TenantSignal,
}

impl TenantEntry {
    fn active(&self, retired: usize) -> bool {
        self.admitted && (!self.pending.is_empty() || self.dealt > retired)
    }

    fn in_flight_cap(&self) -> usize {
        if self.class == TenantClass::Streaming {
            self.allowed.saturating_mul(self.limit).max(1)
        } else {
            usize::MAX
        }
    }
}

/// The run-time engine of [`DispatchPolicy::InterferenceAware`] — the
/// chip-level analogue of CIAO-T's interference-aware warp throttling.
///
/// The dispatcher holds every stream's CTAs in per-tenant pending queues and
/// feeds them to SMs at epoch boundaries. Classification runs on *live
/// co-run signals* — no tenant is held back while unclassified (the probe
/// phase of earlier revisions starved the chip for thousands of cycles; its
/// tax is what the ROADMAP's "cheaper classification" item asked to
/// amortise). The monitor reads each tenant's per-tenant L1/L2 attribution
/// window by window: a tenant whose best measured window L2 hit rate shows
/// real reuse (or whose cumulative L1 signature does) classifies
/// cache-sensitive; a tenant with an established low-reuse signature *and*
/// heavy DRAM traffic classifies streaming, but only after a patience of
/// observation windows — and an early streaming verdict is promoted back to
/// cache-sensitive if the tenant's reuse emerges later. Cache-sensitive and
/// unclassifiable tenants may fill the whole chip, while a streaming tenant
/// that co-runs with a cache-sensitive one is confined to a tail subset of
/// SMs with one in-flight CTA per allowed SM.
///
/// From then on the monitor differences the live per-tenant L2 attribution
/// every `DECISION_EPOCHS` epochs: when a cache-sensitive tenant's window
/// L2 hit rate degrades below `DEGRADE_FRAC` of its best observed window,
/// every active streaming tenant's allowed-SM set is *halved* (min 1 SM, so
/// no tenant ever starves); after `RESTORE_PATIENCE` consecutive healthy
/// windows the sets are doubled back and, once fully restored, the in-flight
/// multiplier grows too. Multiplicative shrink with hysteresis-gated growth
/// keeps the controller from ping-ponging.
///
/// Every quantity the dispatcher reads is sampled at the deterministic epoch
/// barrier, so its decisions — and therefore the whole run — are a pure
/// function of the streams and the configuration, independent of worker
/// threading.
pub struct AdaptiveDispatcher {
    num_sms: usize,
    max_warps_per_sm: usize,
    window_cycles: Cycle,
    next_window_close: Cycle,
    tenants: Vec<TenantEntry>,
    /// Per-tenant exclusively reserved SM range ([`QosSpec::reserved_sms`]),
    /// assigned in tenant order from the head of the chip; `None` when the
    /// tenant reserved nothing.
    reserved: Vec<Option<std::ops::Range<usize>>>,
    last_signal: Vec<TenantSignal>,
    healthy_streak: u32,
    rotor: usize,
    log: DispatchLog,
}

impl AdaptiveDispatcher {
    /// Builds a dispatcher for `streams` on a chip of `num_sms` SMs with
    /// `max_warps_per_sm` warp slots each; the monitor closes a decision
    /// window every `window_cycles` cycles (the engine passes
    /// `DECISION_EPOCHS` × the effective epoch length).
    pub fn new(
        streams: &[KernelStream],
        num_sms: usize,
        max_warps_per_sm: usize,
        window_cycles: Cycle,
    ) -> Self {
        let num_sms = num_sms.max(1);
        let tenants: Vec<TenantEntry> = streams
            .iter()
            .map(|s| TenantEntry {
                arrival: s.arrival_cycle,
                admitted: false,
                pending: stream_work(s).into(),
                dealt: 0,
                class: TenantClass::Unclassified,
                classified: false,
                probe_windows: 0,
                allowed: num_sms,
                floor: s.qos.min_sms.clamp(1, num_sms),
                limit: usize::MAX,
                best_l2_rate: 0.0,
                best_ipc: 0.0,
                base_signal: TenantSignal::default(),
            })
            .collect();
        // Reserved ranges are carved from the head of the chip in tenant
        // order, clamped so at least one SM stays shareable — the tail end is
        // also where confined streamers land, so reservations and confinement
        // sets stay disjoint as long as the chip is big enough.
        let mut next_reserved = 0usize;
        let reserved: Vec<Option<std::ops::Range<usize>>> = streams
            .iter()
            .map(|s| {
                let want = s.qos.reserved_sms.min(num_sms.saturating_sub(next_reserved + 1));
                (want > 0).then(|| {
                    let range = next_reserved..next_reserved + want;
                    next_reserved += want;
                    range
                })
            })
            .collect();
        let window_cycles = window_cycles.max(1);
        AdaptiveDispatcher {
            num_sms,
            max_warps_per_sm: max_warps_per_sm.max(1),
            window_cycles,
            next_window_close: window_cycles,
            tenants,
            reserved,
            last_signal: vec![TenantSignal::default(); streams.len()],
            healthy_streak: 0,
            rotor: 0,
            log: DispatchLog::default(),
        }
    }

    /// True while the dispatcher still holds undealt work: streams not yet
    /// admitted, or admitted CTAs waiting in a pending queue.
    pub fn has_work(&self) -> bool {
        self.tenants.iter().any(|e| !e.admitted || !e.pending.is_empty())
    }

    /// True while an *admitted* tenant still has pending CTAs — work that
    /// only epoch progression (CTA retirements, probe give-ups) can release.
    /// When this is false, any remaining work is an unadmitted future
    /// arrival, and the engine may fast-forward straight to it.
    pub fn has_admitted_pending(&self) -> bool {
        self.tenants.iter().any(|e| e.admitted && !e.pending.is_empty())
    }

    /// Pending (admitted or not, undealt) CTAs of one tenant.
    pub fn pending_ctas(&self, tenant: TenantId) -> usize {
        self.tenants.get(tenant as usize).map_or(0, |e| e.pending.len())
    }

    /// CTAs of one tenant dealt to SMs so far.
    pub fn dealt_ctas(&self, tenant: TenantId) -> usize {
        self.tenants.get(tenant as usize).map_or(0, |e| e.dealt)
    }

    /// Earliest arrival cycle of a stream not yet admitted.
    pub fn next_arrival(&self) -> Option<Cycle> {
        self.tenants.iter().filter(|e| !e.admitted).map(|e| e.arrival).min()
    }

    /// The decision log collected so far.
    pub fn log(&self) -> &DispatchLog {
        &self.log
    }

    /// Moves the decision log out (the engine calls this once, at the end).
    pub fn take_log(&mut self) -> DispatchLog {
        std::mem::take(&mut self.log)
    }

    /// One epoch boundary: admits newly arrived streams, closes a decision
    /// window when due (classification, throttle/restore), and returns the
    /// CTAs to append to each SM's work list — `(sm_index, work)` pairs in SM
    /// order. `signals` are the *cumulative* per-tenant counters at this
    /// boundary; `free_warp_slots[sm]` is how many warp slots SM `sm` has
    /// left after its resident and queued-but-unlaunched CTAs.
    pub fn on_boundary(
        &mut self,
        now: Cycle,
        signals: &[TenantSignal],
        free_warp_slots: &[usize],
    ) -> Vec<(usize, Vec<CtaWork>)> {
        debug_assert_eq!(signals.len(), self.tenants.len());
        debug_assert_eq!(free_warp_slots.len(), self.num_sms);
        let retired: Vec<usize> = signals.iter().map(|s| s.ctas_completed).collect();
        let mut actions: Vec<DispatchAction> = Vec::new();

        for (t, e) in self.tenants.iter_mut().enumerate() {
            if !e.admitted && e.arrival <= now {
                e.admitted = true;
                e.base_signal = signals[t];
                // Tenancy changed: previously relaxed throttles must re-earn
                // their relaxation against the new co-runner.
                self.healthy_streak = 0;
                actions.push(DispatchAction::Admit { tenant: t as TenantId });
            }
        }

        if now >= self.next_window_close {
            self.next_window_close = now + self.window_cycles;
            self.close_window(now, signals, &retired, actions);
        } else if !actions.is_empty() {
            // Admit-only boundary between windows: record it with unmeasured
            // rates so the log keeps every tenancy change.
            let n = self.tenants.len();
            self.log.decisions.push(DispatchDecision {
                cycle: now,
                l2_hit_rate: vec![-1.0; n],
                l1_hit_rate: vec![-1.0; n],
                classes: self.tenants.iter().map(|e| e.class).collect(),
                allowed_sms: self.tenants.iter().map(|e| e.allowed).collect(),
                actions,
            });
        }

        let mut free = free_warp_slots.to_vec();
        self.feed(&retired, &mut free)
    }

    /// Closes a decision window: classifies probing tenants, places newly
    /// classified ones, and runs the throttle/restore controller.
    fn close_window(
        &mut self,
        now: Cycle,
        signals: &[TenantSignal],
        retired: &[usize],
        mut actions: Vec<DispatchAction>,
    ) {
        let n = self.tenants.len();
        let mut l1_rate = vec![-1.0f64; n];
        let mut l2_rate = vec![-1.0f64; n];
        let mut ipc_rate = vec![-1.0f64; n];
        for t in 0..n {
            let (cur, last) = (&signals[t], &self.last_signal[t]);
            let d_l1 = cur.l1_accesses - last.l1_accesses;
            if d_l1 >= MIN_L1_SAMPLES {
                l1_rate[t] = (cur.l1_hits - last.l1_hits) as f64 / d_l1 as f64;
            }
            let d_l2 = cur.l2_accesses - last.l2_accesses;
            if d_l2 >= MIN_L2_SAMPLES {
                l2_rate[t] = (cur.l2_hits - last.l2_hits) as f64 / d_l2 as f64;
            }
            let d_instr = cur.instructions - last.instructions;
            if d_instr >= MIN_IPC_WINDOW_INSTR {
                ipc_rate[t] = d_instr as f64 / self.window_cycles as f64;
            }
        }
        self.last_signal = signals.to_vec();

        // Roll every tenant's best observed window L2 hit rate and window
        // IPC forward — the interference-free-ish baselines the degradation
        // checks compare co-run windows against.
        for (t, e) in self.tenants.iter_mut().enumerate() {
            if l2_rate[t] > e.best_l2_rate {
                e.best_l2_rate = l2_rate[t];
            }
            if ipc_rate[t] > e.best_ipc {
                e.best_ipc = ipc_rate[t];
            }
        }

        // Live classification from each tenant's cumulative traffic since
        // admission plus its best measured window L2 hit rate. Cumulative L1
        // (rather than window-local) amortises the cold-start misses; the
        // best L2 window captures reuse even when co-run L1 interleaving
        // muddies the L1 signature.
        let mut newly_classified = false;
        for (e, sig) in self.tenants.iter_mut().zip(signals) {
            if !e.admitted || e.classified {
                continue;
            }
            let cum_l1 = sig.l1_accesses - e.base_signal.l1_accesses;
            let cum_dram = sig.dram_accesses - e.base_signal.dram_accesses;
            let l1_reuse = cum_l1 >= CLASSIFY_MIN_L1
                && (sig.l1_hits - e.base_signal.l1_hits) as f64 / cum_l1 as f64 >= CACHE_L1_RATE;
            if l1_reuse || e.best_l2_rate >= CACHE_L2_RATE {
                e.class = TenantClass::CacheSensitive;
                e.classified = true;
                newly_classified = true;
            } else if cum_l1 >= CLASSIFY_MIN_L1
                && cum_dram >= STREAM_MIN_DRAM
                && e.probe_windows >= MIN_STREAM_WINDOWS
            {
                // Established low-reuse signature over a real traffic volume,
                // observed long enough for reuse to have emerged: streaming.
                e.class = TenantClass::Streaming;
                e.classified = true;
                newly_classified = true;
            } else {
                e.probe_windows += 1;
                // Too little memory traffic to tell: give up — early for a
                // tenant that is clearly not memory-bound, eventually for
                // everyone — and let it run anywhere.
                let barely_any_traffic = cum_l1 < CLASSIFY_MIN_L1 / 8;
                if (e.probe_windows >= EARLY_PROBE_WINDOWS && barely_any_traffic)
                    || e.probe_windows >= MAX_PROBE_WINDOWS
                {
                    e.classified = true;
                    newly_classified = true;
                }
            }
        }

        // Promotion pass: live classification must be allowed to correct
        // itself. A tenant pinned streaming by an early ambiguous signature
        // whose own traffic later proves reusable is promoted — and released
        // from any confinement — as soon as its reuse shows.
        for e in &mut self.tenants {
            if e.classified && e.class == TenantClass::Streaming && e.best_l2_rate >= CACHE_L2_RATE
            {
                e.class = TenantClass::CacheSensitive;
                e.allowed = self.num_sms;
                e.limit = usize::MAX;
                newly_classified = true;
            }
        }

        // Placement: record the classification verdicts. Confinement is
        // *reactive* — a streamer keeps the whole chip until a victim's
        // measured window actually degrades (the throttle path below), so a
        // co-run the banked backend already keeps healthy pays no
        // containment tax at all.
        if newly_classified {
            for e in &mut self.tenants {
                if e.classified && e.class != TenantClass::Streaming {
                    e.allowed = self.num_sms;
                    e.limit = usize::MAX;
                }
            }
            actions.push(DispatchAction::Place {
                allowed_sms: self.tenants.iter().map(|e| e.allowed).collect(),
            });
        }

        // Throttle / restore controller over the measured window rates.
        // Skipped in a window that reshaped the tenancy (classification just
        // placed someone): the window's rates predate the new placement.
        if newly_classified {
            self.healthy_streak = 0;
        } else {
            let mut any_active_victim = false;
            let mut any_measured_victim = false;
            let mut degraded_victim: Option<TenantId> = None;
            for t in 0..n {
                let e = &mut self.tenants[t];
                if !(e.classified && e.class == TenantClass::CacheSensitive && e.active(retired[t]))
                {
                    continue;
                }
                any_active_victim = true;
                let l2_measured = l2_rate[t] >= 0.0;
                // The IPC check only arms while the victim still has real
                // parallelism in flight — a nearly-drained grid slows down on
                // its own, and throttling a streamer for that would be noise.
                let in_flight = e.dealt.saturating_sub(retired[t]);
                let ipc_measured = ipc_rate[t] >= 0.0 && in_flight >= 4;
                if !l2_measured && !ipc_measured {
                    continue;
                }
                any_measured_victim = true;
                let l2_degraded = l2_measured && l2_rate[t] < DEGRADE_FRAC * e.best_l2_rate;
                let ipc_degraded = ipc_measured && ipc_rate[t] < IPC_DEGRADE_FRAC * e.best_ipc;
                if (l2_degraded || ipc_degraded) && degraded_victim.is_none() {
                    degraded_victim = Some(t as TenantId);
                }
            }
            if let Some(victim) = degraded_victim {
                self.healthy_streak = 0;
                for (t, e) in self.tenants.iter_mut().enumerate() {
                    if !(e.classified && e.class == TenantClass::Streaming && e.active(retired[t]))
                    {
                        continue;
                    }
                    if e.allowed == self.num_sms {
                        // First reaction: confine to the tail quarter of the
                        // chip with one in-flight CTA per allowed SM. The
                        // QoS floor bounds every shrink: a tenant with a
                        // `min_sms` contract never drops below it.
                        e.allowed = self.num_sms.div_ceil(CONFINE_DIVISOR).max(e.floor);
                        e.limit = e.limit.min(1);
                    } else if e.allowed > e.floor {
                        e.allowed = (e.allowed / 2).max(e.floor);
                    } else {
                        continue;
                    }
                    actions.push(DispatchAction::Throttle {
                        tenant: t as TenantId,
                        victim,
                        allowed_sms: e.allowed,
                    });
                }
            } else if !any_active_victim || any_measured_victim {
                // A window is *healthy* when every victim that spoke was fine
                // or no victim remains; a window in which active victims
                // produced too little L2 traffic to judge is neutral — it
                // neither relaxes throttles nor resets the streak.
                self.healthy_streak += 1;
                if self.healthy_streak >= RESTORE_PATIENCE {
                    for t in 0..n {
                        let e = &mut self.tenants[t];
                        if !(e.classified && e.class == TenantClass::Streaming) {
                            continue;
                        }
                        if e.allowed < self.num_sms {
                            e.allowed = (e.allowed * 2).min(self.num_sms);
                            actions.push(DispatchAction::Restore {
                                tenant: t as TenantId,
                                allowed_sms: e.allowed,
                            });
                        } else if e.limit < MAX_STREAM_LIMIT {
                            e.limit = (e.limit * 2).min(MAX_STREAM_LIMIT);
                            actions.push(DispatchAction::Restore {
                                tenant: t as TenantId,
                                allowed_sms: e.allowed,
                            });
                        }
                    }
                }
            }
        }

        self.log.decisions.push(DispatchDecision {
            cycle: now,
            l2_hit_rate: l2_rate,
            l1_hit_rate: l1_rate,
            classes: self.tenants.iter().map(|e| e.class).collect(),
            allowed_sms: self.tenants.iter().map(|e| e.allowed).collect(),
            actions,
        });
    }

    /// True when `sm` is in `tenant`'s allowed set: its own reserved range
    /// always, nobody else's reserved range ever, and otherwise the *last*
    /// `allowed` SMs of the chip (the whole chip when unconfined).
    fn allows(&self, tenant: usize, sm: usize) -> bool {
        if self.reserved[tenant].as_ref().is_some_and(|r| r.contains(&sm)) {
            return true;
        }
        let foreign_reserved = self
            .reserved
            .iter()
            .enumerate()
            .any(|(t, r)| t != tenant && r.as_ref().is_some_and(|r| r.contains(&sm)));
        !foreign_reserved && sm >= self.num_sms - self.tenants[tenant].allowed
    }

    /// Deals pending CTAs to SMs: tenants round-robin over their allowed
    /// sets (the whole chip while unclassified — classification is live, so
    /// nothing is held back for it), bounded by free warp slots and (for
    /// throttled streamers) the in-flight cap.
    fn feed(&mut self, retired: &[usize], free: &mut [usize]) -> Vec<(usize, Vec<CtaWork>)> {
        let n = self.tenants.len();
        let mut pushes: Vec<Vec<CtaWork>> = vec![Vec::new(); self.num_sms];

        // Feed slightly past the reported free slots so retirements between
        // boundaries never leave an SM without a launch-ready CTA.
        for f in free.iter_mut() {
            *f += FEED_AHEAD_WARPS;
        }

        loop {
            let mut progressed = false;
            for slot in 0..self.num_sms {
                for off in 0..n {
                    let t = (self.rotor + off) % n;
                    // Stagger each tenant's dealing start across the chip so
                    // equally-numbered CTAs of different tenants land on
                    // *different* SMs: tenant address offsets do not change
                    // cache set bits, so same-index CTAs of structurally
                    // similar kernels sweep the same L1 sets in lockstep and
                    // would thrash each other if co-resident.
                    let sm = (slot + t * self.num_sms / n) % self.num_sms;
                    if !self.feedable(t, sm, retired, free) {
                        continue;
                    }
                    let e = &mut self.tenants[t];
                    let cta = e.pending.pop_front().expect("feedable implies pending");
                    free[sm] -= cta.warps.min(self.max_warps_per_sm).min(free[sm]);
                    e.dealt += 1;
                    pushes[sm].push(cta);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
            self.rotor = (self.rotor + 1) % n.max(1);
        }

        pushes.into_iter().enumerate().filter(|(_, w)| !w.is_empty()).collect()
    }

    /// Whether tenant `t` may deal its next pending CTA to `sm` right now.
    fn feedable(&self, t: usize, sm: usize, retired: &[usize], free: &[usize]) -> bool {
        let e = &self.tenants[t];
        if !e.admitted || e.pending.is_empty() || !self.allows(t, sm) {
            return false;
        }
        let in_flight = e.dealt.saturating_sub(retired[t]);
        if in_flight >= e.in_flight_cap() {
            return false;
        }
        let warps = e.pending.front().expect("non-empty").warps.min(self.max_warps_per_sm);
        free[sm] >= warps
    }
}

/// The chip-level kernel queue: the set of streams submitted for one
/// co-execution run, and the entry point that executes them under a
/// [`DispatchPolicy`] and assembles the combined, per-tenant-attributed
/// [`SimResult`].
#[derive(Default)]
pub struct KernelQueue {
    streams: Vec<KernelStream>,
}

impl KernelQueue {
    /// An empty queue.
    pub fn new() -> Self {
        KernelQueue::default()
    }

    /// Builds a queue from kernels, assigning tenant ids in submission order.
    pub fn from_kernels(kernels: impl IntoIterator<Item = Arc<dyn Kernel>>) -> Self {
        let mut queue = KernelQueue::new();
        for k in kernels {
            queue.push(k);
        }
        queue
    }

    /// Submits a kernel arriving at cycle 0, returning its tenant id.
    pub fn push(&mut self, kernel: Arc<dyn Kernel>) -> TenantId {
        self.push_at(kernel, 0)
    }

    /// Submits a kernel arriving at `arrival_cycle` (a *dynamic arrival*:
    /// concurrent policies admit it at the first epoch boundary at or after
    /// that cycle; the serial `Exclusive` policy starts it no earlier than
    /// both its arrival and the previous kernel's completion). Returns the
    /// tenant id the kernel was assigned.
    pub fn push_at(&mut self, kernel: Arc<dyn Kernel>, arrival_cycle: Cycle) -> TenantId {
        self.push_qos_at(kernel, arrival_cycle, QosSpec::default())
    }

    /// [`KernelQueue::push_at`] with an explicit [`QosSpec`] the
    /// interference-aware dispatcher enforces (floors, reserved SMs); static
    /// policies record the contract but place work unchanged.
    pub fn push_qos_at(
        &mut self,
        kernel: Arc<dyn Kernel>,
        arrival_cycle: Cycle,
        qos: QosSpec,
    ) -> TenantId {
        let tenant = self.streams.len() as TenantId;
        self.streams.push(KernelStream::new_qos_at(tenant, kernel, arrival_cycle, qos));
        tenant
    }

    /// The submitted streams, in tenant order.
    pub fn streams(&self) -> &[KernelStream] {
        &self.streams
    }

    /// Number of submitted streams.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// True when no stream was submitted.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Runs every submitted stream on a chip of `config.num_sms` SMs under
    /// `policy` and returns the combined result. `build_unit` is called once
    /// per SM per concurrent engine (per kernel for the serial `Exclusive`
    /// policy) to construct that SM's scheduler and optional redirect cache.
    ///
    /// Concurrent policies run one [`Gpu`] engine over the planned work
    /// lists; `Exclusive` runs one engine per stream back to back with cold
    /// caches between kernels and chains the results (cycles add, tenant `k`'s
    /// finish cycle is offset by every earlier kernel's runtime). A queue
    /// with a single stream produces a result bit-identical to a plain
    /// single-kernel chip run under every policy.
    pub fn run<F>(&self, config: &GpuConfig, policy: DispatchPolicy, build_unit: F) -> SimResult
    where
        F: FnMut(usize) -> SmUnit,
    {
        self.run_with(config, policy, crate::event::BackendKind::default(), build_unit)
    }

    /// [`KernelQueue::run`] with an explicit [`crate::event::BackendKind`]
    /// timing backend driving every engine the queue spins up (the one
    /// concurrent engine, or each serial `Exclusive` engine). Both backends
    /// produce bit-identical results; the chosen backend's label is recorded
    /// in [`SimResult::backend`].
    pub fn run_with<F>(
        &self,
        config: &GpuConfig,
        policy: DispatchPolicy,
        backend: crate::event::BackendKind,
        build_unit: F,
    ) -> SimResult
    where
        F: FnMut(usize) -> SmUnit,
    {
        self.run_with_observed(config, policy, backend, ObsLevel::Off, build_unit).0
    }

    /// [`KernelQueue::run_with`] with observability collection at `obs`:
    /// every engine the queue spins up is armed before it runs and drained
    /// after. For the serial `Exclusive` policy, each per-kernel run's
    /// report is shifted to its start cycle and its solo tenant re-labelled
    /// to the queue position, so the merged report shows one timeline with
    /// one track per queued kernel. At [`ObsLevel::Off`] the returned report
    /// is empty and collection costs nothing.
    pub fn run_with_observed<F>(
        &self,
        config: &GpuConfig,
        policy: DispatchPolicy,
        backend: crate::event::BackendKind,
        obs: ObsLevel,
        mut build_unit: F,
    ) -> (SimResult, ObsReport)
    where
        F: FnMut(usize) -> SmUnit,
    {
        assert!(!self.streams.is_empty(), "a kernel queue needs at least one stream");
        let driver = backend.backend();
        let num_sms = config.num_sms.max(1);
        if policy.is_concurrent() || self.streams.len() == 1 {
            let units = (0..num_sms).map(&mut build_unit).collect();
            let mut gpu = Gpu::with_streams(config.clone(), self.streams.clone(), policy, units);
            gpu.set_obs(obs);
            driver.drive(&mut gpu);
            let report = gpu.take_obs();
            let mut res = gpu.into_result();
            res.policy = policy.label().to_string();
            return (res, report);
        }
        // Exclusive: serial per-kernel chip runs, chained. A kernel starts no
        // earlier than its arrival cycle and no earlier than the previous
        // kernel's completion; the chip idles through any gap.
        let mut runs = Vec::with_capacity(self.streams.len());
        let mut clock: Cycle = 0;
        let mut report = ObsReport::new(obs);
        for (k, stream) in self.streams.iter().enumerate() {
            let start = clock.max(stream.arrival_cycle);
            let solo = KernelStream::new(0, Arc::clone(stream.kernel()));
            let units = (0..num_sms).map(&mut build_unit).collect();
            let mut gpu = Gpu::with_streams(config.clone(), vec![solo], policy, units);
            gpu.set_obs(obs);
            driver.drive(&mut gpu);
            let mut run_report = gpu.take_obs();
            run_report.relabel_tenant(0, k as u32);
            run_report.shift_cycles(start);
            report.merge(run_report);
            let result = gpu.into_result();
            clock = start + result.cycles;
            runs.push((start, result));
        }
        report.tenants = self.streams.iter().map(|s| s.info().name.clone()).collect();
        let mut merged = merge_serial(runs);
        merged.policy = policy.label().to_string();
        (merged, report)
    }
}

/// Chains serially executed per-kernel results into one chip-level result:
/// each run is shifted to its `start` cycle (the previous run's end, or later
/// when the kernel's arrival gated it), event counters add, time series are
/// concatenated with cycle and instruction offsets, and each run's tenant
/// record is re-labelled with its queue position and shifted by its start.
fn merge_serial(runs: Vec<(Cycle, SimResult)>) -> SimResult {
    let num_runs = runs.len();
    let mut iter = runs.into_iter();
    let (first_start, mut merged) = iter.next().expect("at least one result");
    debug_assert_eq!(merged.per_tenant.len(), 1);
    if first_start > 0 {
        // The very first kernel arrived late: the whole chip idles first.
        let mut shifted = TimeSeries::default();
        shifted.append_offset(&merged.time_series, first_start, 0);
        merged.time_series = shifted;
        merged.per_tenant[0].finish_cycle += first_start;
        merged.cycles += first_start;
        merged.stats.cycles = merged.cycles;
        for sm in &mut merged.per_sm {
            sm.cycles += first_start;
        }
    }
    // Re-label the first run's fabric attribution under tenant 0 and fold
    // each later run's single-tenant fabric traffic in under its queue
    // position, so per-tenant fabric bytes keep summing to the chip totals.
    let mut names = vec![merged.kernel.clone()];
    for (k, (start, r)) in iter.enumerate() {
        let gap = start - merged.cycles;
        let inst_offset = merged.stats.instructions;
        names.push(r.kernel.clone());
        merged.time_series.append_offset(&r.time_series, start, inst_offset);
        merged.interference.absorb(&r.interference);
        merged.scheduler_metrics.merge(&r.scheduler_metrics);
        merged.interconnect.bytes_transferred += r.interconnect.bytes_transferred;
        merged.interconnect.queueing_cycles += r.interconnect.queueing_cycles;
        merge_fabric_serial(&mut merged.fabric, &r.fabric, (k + 1) as TenantId);
        merged.capped |= r.capped;
        merge_sm_serial(&mut merged.stats, &r.stats, gap);
        for (a, b) in merged.per_sm.iter_mut().zip(&r.per_sm) {
            merge_sm_serial(a, b, gap);
        }
        let mut tenant = r.per_tenant.into_iter().next().expect("serial run has one tenant");
        tenant.tenant = (k + 1) as TenantId;
        tenant.finish_cycle += start;
        debug_assert_eq!(tenant.fabric_request_bytes, r.fabric.request.tenant_bytes(0));
        merged.per_tenant.push(tenant);
        merged.cycles = start + r.cycles;
        merged.stats.cycles = merged.cycles;
    }
    // merge_sm_serial accumulates utilisation *sums*; divide once so every
    // run weighs equally in the mean regardless of queue position.
    merged.stats.redirect_utilization /= num_runs as f64;
    for sm in &mut merged.per_sm {
        sm.redirect_utilization /= num_runs as f64;
    }
    merged.kernel = names.join("+");
    merged
}

/// Serial composition of two SM stat blocks: counters sum (as in
/// [`SmStats::reduce`]) but cycles *add* (plus any arrival-induced idle gap
/// between the runs) instead of taking the maximum, because the runs happened
/// back to back on the same SM.
/// `redirect_utilization` accumulates as a *sum* — [`merge_serial`] divides
/// by the run count once at the end, so the mean is equal-weighted.
fn merge_sm_serial(a: &mut SmStats, b: &SmStats, gap: Cycle) {
    let cycles = a.cycles + gap + b.cycles;
    let utilization_sum = a.redirect_utilization + b.redirect_utilization;
    *a = SmStats::reduce(&[a.clone(), b.clone()]);
    a.cycles = cycles;
    a.redirect_utilization = utilization_sum;
}

/// Folds a serially-executed solo run's crossbar-fabric traffic into the
/// merged chip result, re-attributing the run's (single, tenant-0) traffic to
/// queue position `tenant` so per-tenant bytes still sum to the chip totals.
fn merge_fabric_serial(
    merged: &mut gpu_mem::FabricStats,
    run: &gpu_mem::FabricStats,
    tenant: TenantId,
) {
    merged.bytes_per_cycle = run.bytes_per_cycle.max(merged.bytes_per_cycle);
    for (into, from) in [(&mut merged.request, &run.request), (&mut merged.reply, &run.reply)] {
        into.bytes_transferred += from.bytes_transferred;
        into.queueing_cycles += from.queueing_cycles;
        let idx = tenant as usize;
        if into.tenant_bytes.len() <= idx {
            into.tenant_bytes.resize(idx + 1, 0);
        }
        into.tenant_bytes[idx] += from.tenant_bytes.iter().sum::<u64>();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ClosureKernel;
    use crate::trace::{VecProgram, WarpOp};
    use proptest::prelude::*;

    fn kernel(name: &str, ctas: usize, warps: usize) -> Arc<dyn Kernel> {
        let info = KernelInfo {
            name: name.into(),
            num_ctas: ctas,
            warps_per_cta: warps,
            shared_mem_per_cta: 0,
        };
        Arc::new(ClosureKernel::new(info, |_c, _w| Box::new(VecProgram::new(vec![WarpOp::alu()]))))
    }

    fn streams(shapes: &[(usize, usize)]) -> Vec<KernelStream> {
        shapes
            .iter()
            .enumerate()
            .map(|(t, &(ctas, warps))| {
                KernelStream::new(t as TenantId, kernel(&format!("k{t}"), ctas, warps))
            })
            .collect()
    }

    #[test]
    fn round_robin_covers_every_block_once() {
        let lists = dispatch_round_robin(10, 3);
        assert_eq!(lists.len(), 3);
        assert_eq!(lists[0], vec![0, 3, 6, 9]);
        assert_eq!(lists[1], vec![1, 4, 7]);
        assert_eq!(lists[2], vec![2, 5, 8]);
    }

    #[test]
    fn policy_labels_round_trip() {
        assert_eq!(DispatchPolicy::all().len(), 4);
        assert_eq!(DispatchPolicy::static_policies().len(), 3);
        for p in DispatchPolicy::all() {
            assert_eq!(DispatchPolicy::from_label(p.label()), Some(p));
            assert_eq!(format!("{p}"), p.label());
        }
        assert_eq!(DispatchPolicy::from_label("nope"), None);
        assert!(!DispatchPolicy::Exclusive.is_concurrent());
        assert!(DispatchPolicy::SpatialPartition.is_concurrent());
        assert!(DispatchPolicy::InterferenceAware.is_concurrent());
        assert!(DispatchPolicy::InterferenceAware.is_adaptive());
        assert!(DispatchPolicy::static_policies().iter().all(|p| !p.is_adaptive()));
    }

    #[test]
    fn interference_aware_single_stream_plan_matches_exclusive() {
        let s = streams(&[(9, 2)]);
        let adaptive = plan(&s, 4, DispatchPolicy::InterferenceAware);
        let exclusive = plan(&s, 4, DispatchPolicy::Exclusive);
        for (a, e) in adaptive.iter().zip(&exclusive) {
            let ctas = |l: &Vec<CtaWork>| l.iter().map(|w| w.cta).collect::<Vec<_>>();
            assert_eq!(ctas(a), ctas(e));
        }
        // Multi-stream adaptive plans are empty: the dispatcher feeds SMs at
        // run time instead.
        let multi = plan(&streams(&[(4, 2), (4, 2)]), 4, DispatchPolicy::InterferenceAware);
        assert!(multi.iter().all(Vec::is_empty));
    }

    #[test]
    fn spatial_sets_are_disjoint_and_balanced() {
        let sets = spatial_sm_sets(3, 8);
        assert_eq!(sets, vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7]]);
        // More tenants than SMs: wrap (no longer disjoint).
        let wrapped = spatial_sm_sets(5, 3);
        assert_eq!(wrapped, vec![vec![0], vec![1], vec![2], vec![0], vec![1]]);
    }

    #[test]
    fn single_stream_shared_rr_matches_round_robin() {
        let s = streams(&[(7, 2)]);
        let lists = plan(&s, 3, DispatchPolicy::SharedRoundRobin);
        let reference = dispatch_round_robin(7, 3);
        for (sm, list) in lists.iter().enumerate() {
            let ctas: Vec<usize> = list.iter().map(|w| w.cta as usize).collect();
            assert_eq!(ctas, reference[sm]);
            assert!(list.iter().all(|w| w.tenant == 0));
        }
    }

    #[test]
    fn shared_rr_interleaves_tenants_on_every_sm() {
        let s = streams(&[(4, 2), (4, 2)]);
        let lists = plan(&s, 2, DispatchPolicy::SharedRoundRobin);
        // Interleaved sequence: (t0,c0) (t1,c0) (t0,c1) (t1,c1) ...
        // SM 0 gets even positions, SM 1 odd ones.
        let tenants_sm0: Vec<TenantId> = lists[0].iter().map(|w| w.tenant).collect();
        let tenants_sm1: Vec<TenantId> = lists[1].iter().map(|w| w.tenant).collect();
        assert_eq!(tenants_sm0, vec![0, 0, 0, 0]);
        assert_eq!(tenants_sm1, vec![1, 1, 1, 1]);
        // With 3 SMs both tenants appear on every SM.
        let lists3 = plan(&s, 3, DispatchPolicy::SharedRoundRobin);
        for list in &lists3 {
            assert!(!list.is_empty());
        }
        let all_tenants: std::collections::HashSet<TenantId> =
            lists3.iter().flatten().map(|w| w.tenant).collect();
        assert_eq!(all_tenants.len(), 2);
    }

    #[test]
    fn spatial_partition_confines_tenants_to_their_sets() {
        let s = streams(&[(6, 2), (9, 2)]);
        let lists = plan(&s, 4, DispatchPolicy::SpatialPartition);
        let sets = spatial_sm_sets(2, 4);
        for (sm, list) in lists.iter().enumerate() {
            for w in list {
                assert!(
                    sets[w.tenant as usize].contains(&sm),
                    "tenant {} CTA on SM {sm} outside its set",
                    w.tenant
                );
            }
        }
        // Every CTA of every stream is assigned exactly once.
        let mut counts = [vec![0usize; 6], vec![0usize; 9]];
        for w in lists.iter().flatten() {
            counts[w.tenant as usize][w.cta as usize] += 1;
        }
        assert!(counts.iter().flatten().all(|&c| c == 1));
    }

    fn load_kernel(name: &str, ctas: usize, ops: usize) -> Arc<dyn Kernel> {
        let info = KernelInfo {
            name: name.into(),
            num_ctas: ctas,
            warps_per_cta: 2,
            shared_mem_per_cta: 0,
        };
        Arc::new(ClosureKernel::new(info, move |cta, w| {
            let ops = (0..ops)
                .map(|i| {
                    WarpOp::coalesced_load((cta as u64 * 977 + w as u64 * 131 + i as u64) * 128)
                })
                .collect();
            Box::new(VecProgram::new(ops))
        }))
    }

    fn gto_units() -> impl FnMut(usize) -> crate::gpu::SmUnit {
        |_| (Box::new(crate::scheduler::GtoScheduler::new()) as _, None)
    }

    #[test]
    fn exclusive_queue_chains_serial_runs() {
        let config = crate::config::GpuConfig::gtx480().with_num_sms(2);
        let a = load_kernel("a", 2, 8);
        let b = load_kernel("b", 2, 8);
        let solo_cycles = |k: &Arc<dyn Kernel>| {
            KernelQueue::from_kernels([Arc::clone(k)])
                .run(&config, DispatchPolicy::Exclusive, gto_units())
                .cycles
        };
        let (ca, cb) = (solo_cycles(&a), solo_cycles(&b));
        let res =
            KernelQueue::from_kernels([a, b]).run(&config, DispatchPolicy::Exclusive, gto_units());
        assert_eq!(res.policy, "exclusive");
        assert_eq!(res.kernel, "a+b");
        assert_eq!(res.per_tenant.len(), 2);
        // Serial total: cycles add; tenant 1 queues behind tenant 0.
        assert_eq!(res.cycles, ca + cb);
        assert_eq!(res.stats.cycles, res.cycles);
        assert!(res.per_tenant[0].finish_cycle <= ca);
        assert!(res.per_tenant[1].finish_cycle > ca);
        assert_eq!(res.per_tenant[0].tenant, 0);
        assert_eq!(res.per_tenant[1].tenant, 1);
        assert_eq!(res.stats.instructions, 2 * (2 * 2 * 8));
        assert!(!res.capped);
        // Per-tenant instruction split covers the total exactly.
        assert_eq!(
            res.per_tenant.iter().map(|t| t.instructions).sum::<u64>(),
            res.stats.instructions
        );
    }

    #[test]
    fn single_stream_queue_matches_plain_chip_run_under_every_policy() {
        let config = crate::config::GpuConfig::gtx480().with_num_sms(2);
        let reference = {
            let mut gpu = crate::gpu::Gpu::new(
                config.clone(),
                load_kernel("k", 4, 10),
                (0..2).map(|i| gto_units()(i)).collect(),
            );
            gpu.run();
            gpu.into_result()
        };
        for policy in DispatchPolicy::all() {
            let res = KernelQueue::from_kernels([load_kernel("k", 4, 10)]).run(
                &config,
                policy,
                gto_units(),
            );
            assert_eq!(res.cycles, reference.cycles, "{policy}");
            assert_eq!(res.stats, reference.stats, "{policy}");
            assert_eq!(res.per_sm, reference.per_sm, "{policy}");
            assert_eq!(res.time_series, reference.time_series, "{policy}");
            assert_eq!(res.per_tenant, reference.per_tenant, "{policy}");
        }
    }

    proptest! {
        /// Every static policy assigns every CTA of every stream exactly once.
        #[test]
        fn plan_is_a_partition(
            shapes in proptest::collection::vec((1usize..40, 1usize..4), 1..5),
            sms in 1usize..32,
            policy_idx in 0usize..3,
        ) {
            let policy = DispatchPolicy::static_policies()[policy_idx];
            let s = streams(&shapes);
            let lists = plan(&s, sms, policy);
            prop_assert_eq!(lists.len(), sms);
            let mut counts: Vec<Vec<usize>> =
                shapes.iter().map(|&(ctas, _)| vec![0; ctas]).collect();
            for w in lists.iter().flatten() {
                counts[w.tenant as usize][w.cta as usize] += 1;
            }
            prop_assert!(counts.iter().flatten().all(|&c| c == 1));
        }
    }

    fn streams_at(shapes: &[(usize, usize, u64)]) -> Vec<KernelStream> {
        shapes
            .iter()
            .enumerate()
            .map(|(t, &(ctas, warps, arrival))| {
                KernelStream::new_at(t as TenantId, kernel(&format!("k{t}"), ctas, warps), arrival)
            })
            .collect()
    }

    #[test]
    fn build_dispatch_all_zero_arrivals_matches_plan() {
        let s = streams(&[(5, 2), (7, 1)]);
        for policy in DispatchPolicy::static_policies() {
            let built = build_dispatch(&s, 3, policy, 48, 64);
            let planned = plan(&s, 3, policy);
            assert!(built.deferred.is_empty(), "{policy}");
            assert!(built.adaptive.is_none(), "{policy}");
            for (a, b) in built.initial.iter().zip(&planned) {
                let key =
                    |l: &Vec<CtaWork>| l.iter().map(|w| (w.tenant, w.cta)).collect::<Vec<_>>();
                assert_eq!(key(a), key(b), "{policy}");
            }
        }
    }

    #[test]
    fn build_dispatch_defers_late_arrivals_without_losing_work() {
        for policy in DispatchPolicy::static_policies() {
            let s = streams_at(&[(5, 2, 0), (7, 1, 1000), (3, 1, 1000)]);
            let built = build_dispatch(&s, 4, policy, 48, 64);
            // Arrival-0 work is installed up front; the cycle-1000 group is
            // one deferred batch.
            assert_eq!(built.deferred.len(), 1, "{policy}");
            assert_eq!(built.deferred[0].arrival, 1000, "{policy}");
            let mut counts = [vec![0usize; 5], vec![0usize; 7], vec![0usize; 3]];
            for w in built.initial.iter().flatten() {
                counts[w.tenant as usize][w.cta as usize] += 1;
            }
            assert!(counts[0].iter().all(|&c| c == 1), "{policy}");
            assert!(counts[1].iter().chain(&counts[2]).all(|&c| c == 0), "{policy}");
            for w in built.deferred[0].per_sm.iter().flatten() {
                counts[w.tenant as usize][w.cta as usize] += 1;
            }
            assert!(counts.iter().flatten().all(|&c| c == 1), "{policy}");
        }
    }

    #[test]
    fn adaptive_dispatcher_feeds_immediately_and_classifies_live() {
        let s = streams(&[(6, 2), (10, 2)]);
        let mut d = AdaptiveDispatcher::new(&s, 4, 48, 512);
        assert!(d.has_work());
        // Arrival-0 streams are unadmitted until the first boundary.
        assert_eq!(d.next_arrival(), Some(0));
        let free = vec![48usize; 4];
        let signals = vec![TenantSignal::default(); 2];
        // Boundary 0: admission, then the whole pending load is dealt — live
        // classification holds nothing back while tenants are unclassified.
        let fed = d.on_boundary(0, &signals, &free);
        let dealt: usize = fed.iter().map(|(_, w)| w.len()).sum();
        assert_eq!(dealt, 16, "every CTA dealt immediately (capacity allows)");
        assert!(!d.has_work());
        assert_eq!(d.dealt_ctas(0), 6);
        assert_eq!(d.pending_ctas(0), 0);
        // Rich reuse signals classify both tenants cache-sensitive from the
        // live co-run windows and place them across the whole chip.
        let rich = TenantSignal {
            l1_accesses: 10_000,
            l1_hits: 9_000,
            l2_accesses: 1_000,
            l2_hits: 900,
            dram_accesses: 100,
            instructions: 20_000,
            ctas_completed: 0,
        };
        d.on_boundary(512, &[rich, rich], &free);
        let log = d.log();
        assert!(log
            .decisions
            .iter()
            .any(|dec| dec.actions.iter().any(|a| matches!(a, DispatchAction::Place { .. }))));
        let last = log.decisions.last().expect("has decisions");
        assert!(last.classes.iter().all(|&c| c == TenantClass::CacheSensitive));
        assert_eq!(last.allowed_sms, vec![4, 4]);
    }

    #[test]
    fn adaptive_dispatcher_confines_streamer_and_never_starves_it() {
        let s = streams(&[(4, 2), (12, 2)]);
        let mut d = AdaptiveDispatcher::new(&s, 8, 48, 512);
        let free = vec![48usize; 8];
        // Tenant 0 shows L2 reuse (cache-sensitive), tenant 1 streams (low
        // hit rates everywhere, heavy DRAM traffic).
        let cache = TenantSignal {
            l1_accesses: 5_000,
            l1_hits: 4_500,
            l2_accesses: 600,
            l2_hits: 500,
            dram_accesses: 100,
            instructions: 10_000,
            ctas_completed: 0,
        };
        let stream = TenantSignal {
            l1_accesses: 5_000,
            l1_hits: 500,
            l2_accesses: 4_500,
            l2_hits: 200,
            dram_accesses: 4_300,
            instructions: 6_000,
            ctas_completed: 0,
        };
        d.on_boundary(0, &[TenantSignal::default(); 2], &free);
        // The streaming verdict needs its patience windows; keep the signals
        // flowing until it lands, then degrade the victim.
        let mut cache_now = cache;
        let mut stream_now = stream;
        d.on_boundary(512, &[cache_now, stream_now], &free);
        for b in 2..12u64 {
            cache_now.l2_accesses += 100;
            cache_now.l2_hits += 5; // ~5% window rate: heavily degraded
            stream_now.l2_accesses += 1_000;
            stream_now.dram_accesses += 1_000;
            d.on_boundary(b * 512, &[cache_now, stream_now], &free);
        }
        // Confinement is reactive: the measured degradation must have driven
        // Throttle actions, the first of which drops the streamer straight to
        // the tail quarter of the chip.
        let throttles: Vec<usize> = d
            .log()
            .decisions
            .iter()
            .flat_map(|dec| &dec.actions)
            .filter_map(|a| match a {
                DispatchAction::Throttle { tenant: 1, allowed_sms, .. } => Some(*allowed_sms),
                _ => None,
            })
            .collect();
        assert!(!throttles.is_empty(), "degradation must trigger throttles");
        assert_eq!(throttles[0], 2, "first throttle confines to the tail quarter (8/4 = 2 SMs)");
        let last = d.log().decisions.last().expect("has decisions");
        assert_eq!(last.classes[0], TenantClass::CacheSensitive);
        assert_eq!(last.classes[1], TenantClass::Streaming);
        assert_eq!(last.allowed_sms[1], 1, "streamer shrinks to its 1-SM floor");
        // Even fully throttled, the streamer keeps at least one in-flight
        // CTA's worth of feed: it is never starved outright.
        assert!(d.dealt_ctas(1) >= 1);
    }

    proptest! {
        /// Under arbitrary monitor signals (hence arbitrary classify /
        /// throttle / restore decisions) and arbitrary free-slot reports, the
        /// adaptive dispatcher never loses or double-dispatches a CTA: what
        /// was dealt plus what is still pending is exactly each tenant's grid,
        /// and every dealt CTA lands on a valid SM.
        #[test]
        fn adaptive_feed_is_a_partition(
            shapes in proptest::collection::vec((1usize..20, 1usize..4), 2..5),
            sms in 1usize..16,
            rounds in proptest::collection::vec(
                (0u64..20_000, 0u64..20_000, 0u64..20_000, 0usize..48), 1..40),
        ) {
            let s = streams(&shapes);
            let mut d = AdaptiveDispatcher::new(&s, sms, 48, 512);
            let n = shapes.len();
            let mut dealt: Vec<Vec<usize>> =
                shapes.iter().map(|&(ctas, _)| vec![0; ctas]).collect();
            let mut signals = vec![TenantSignal::default(); n];
            let mut retired = vec![0usize; n];
            for (b, &(acc, hits, l2, free_slots)) in rounds.iter().enumerate() {
                // Arbitrary (even inconsistent-looking) monotone counters.
                for (t, sig) in signals.iter_mut().enumerate() {
                    sig.l1_accesses += acc + t as u64;
                    sig.l1_hits += hits.min(acc);
                    sig.l2_accesses += l2;
                    sig.l2_hits += (l2 / 2).saturating_sub(t as u64);
                    sig.dram_accesses += l2 / 2;
                    sig.instructions += acc * 2;
                    // Retire roughly half of what is in flight.
                    let in_flight = d.dealt_ctas(t as TenantId) - retired[t];
                    retired[t] += in_flight / 2;
                    sig.ctas_completed = retired[t];
                }
                let free = vec![free_slots; sms];
                for (sm, work) in d.on_boundary(b as u64 * 512, &signals, &free) {
                    prop_assert!(sm < sms);
                    for w in work {
                        dealt[w.tenant as usize][w.cta as usize] += 1;
                    }
                }
            }
            for (t, counts) in dealt.iter().enumerate() {
                let dealt_count: usize = counts.iter().sum();
                prop_assert!(counts.iter().all(|&c| c <= 1), "tenant {} double-dispatch", t);
                prop_assert_eq!(
                    dealt_count + d.pending_ctas(t as TenantId),
                    shapes[t].0,
                    "tenant {} lost work", t
                );
                prop_assert_eq!(d.dealt_ctas(t as TenantId), dealt_count);
            }
        }
    }

    /// SMs reserved by one tenant's [`QosSpec`] are never fed another
    /// tenant's CTAs, while the owner does land work there.
    #[test]
    fn reserved_sms_exclude_other_tenants() {
        let streams = vec![
            KernelStream::new_qos_at(
                0,
                kernel("k0", 16, 2),
                0,
                QosSpec::interactive(1).with_reserved(2),
            ),
            KernelStream::new_qos_at(1, kernel("k1", 16, 2), 0, QosSpec::batch()),
        ];
        let mut d = AdaptiveDispatcher::new(&streams, 4, 48, 100);
        let signals = vec![TenantSignal::default(); 2];
        let pushes = d.on_boundary(0, &signals, &[48; 4]);
        let mut owner_on_reserved = false;
        for (sm, work) in &pushes {
            if *sm < 2 {
                assert!(
                    work.iter().all(|w| w.tenant == 0),
                    "reserved SM {sm} was fed a foreign tenant's CTA"
                );
                owner_on_reserved |= work.iter().any(|w| w.tenant == 0);
            }
        }
        assert!(owner_on_reserved, "the owner never reached its reserved SMs");
    }

    /// The throttle controller respects a streaming tenant's `min_sms`
    /// floor: repeated degraded windows confine it no further than the
    /// contracted allowed-SM-set size (a floorless tenant would end at 1).
    #[test]
    fn qos_floor_bounds_throttling() {
        let run = |qos: QosSpec| {
            let streams = vec![
                KernelStream::new_qos_at(0, kernel("victim", 64, 2), 0, QosSpec::batch()),
                KernelStream::new_qos_at(1, kernel("streamer", 64, 2), 0, qos),
            ];
            let mut d = AdaptiveDispatcher::new(&streams, 8, 48, 100);
            let mut s = vec![TenantSignal::default(); 2];
            // Feed nothing extra per boundary (free slots 0; only the small
            // feed-ahead buffer moves) so both tenants keep pending CTAs and
            // stay `active` for the controller.
            let free = vec![0usize; 8];
            for window in 1..=10u64 {
                // Victim: strong L1/L2 reuse, classified cache-sensitive at
                // the first window; from window 6 its L2 hit rate collapses,
                // arming the throttle path every later window.
                s[0].l1_accesses += 1_000;
                s[0].l1_hits += 800;
                s[0].l2_accesses += 1_000;
                s[0].l2_hits += if window < 6 { 900 } else { 50 };
                s[0].instructions += 10_000;
                // Streamer: heavy low-reuse traffic; classifies streaming
                // after the observation patience.
                s[1].l1_accesses += 1_000;
                s[1].l1_hits += 10;
                s[1].dram_accesses += 1_000;
                s[1].instructions += 10_000;
                d.on_boundary(window * 100, &s, &free);
            }
            let last = d.log().decisions.last().expect("windows were logged");
            assert_eq!(last.classes[1], TenantClass::Streaming);
            last.allowed_sms[1]
        };
        assert_eq!(run(QosSpec::batch()), 1, "floorless streamer shrinks to the minimum");
        assert_eq!(
            run(QosSpec { latency: LatencyClass::Batch, min_sms: 3, reserved_sms: 0 }),
            3,
            "the QoS floor caps the shrink"
        );
    }
}
