//! Multi-tenant CTA dispatch: kernel streams, SM partitioning policies and
//! the chip-level kernel queue.
//!
//! PR 2's chip engine ran exactly one kernel, splitting its grid round-robin
//! across SMs. This module generalises dispatch to N co-running kernels
//! (*tenants*): a [`KernelStream`] binds a kernel to a [`TenantId`], a
//! [`DispatchPolicy`] decides which SM runs which tenant's CTAs, and
//! [`KernelQueue`] is the chip-level entry point that turns a set of streams
//! into one [`SimResult`] with per-tenant attribution.
//!
//! ## The three policies
//!
//! * [`DispatchPolicy::Exclusive`] — temporal multiplexing: each kernel gets
//!   the whole chip to itself, streams execute serially in submission order
//!   with cold caches between kernels. This is exactly "today's" behaviour
//!   repeated per kernel: a queue with a single stream is bit-identical to a
//!   plain single-kernel chip run. Tenants never interfere; turnaround grows
//!   with queue position (tenant `k`'s finish cycle includes every earlier
//!   kernel's runtime).
//! * [`DispatchPolicy::SpatialPartition`] — each tenant receives a disjoint,
//!   contiguous set of SMs (balanced to within one SM) and its grid is
//!   dispatched round-robin across that set only. Tenants are isolated at
//!   the SM/L1 level but still share the banked L2 and DRAM, so chip-level
//!   cache interference remains — precisely the effect the per-tenant L2
//!   attribution makes measurable. With more tenants than SMs, tenants wrap
//!   onto single SMs (`tenant t → SM t mod num_sms`) and SM-level isolation
//!   degrades gracefully into sharing.
//! * [`DispatchPolicy::SharedRoundRobin`] — CTAs from all streams are
//!   interleaved round-robin (one CTA per stream per round) into a single
//!   launch sequence that is then split round-robin across every SM, so each
//!   SM co-runs warps from all tenants and intra-SM L1 interference between
//!   tenants appears in addition to the shared-L2 contention. With a single
//!   stream the interleaving is the identity, which reduces this policy to
//!   PR 2's round-robin dispatcher.
//!
//! ## Determinism
//!
//! Every policy is a pure function of `(streams, num_sms)`: assignment lists
//! are computed up front, before any simulation, and the engine's
//! barrier-synchronised epoch scheme (see [`crate::gpu`]) keeps execution
//! deterministic regardless of worker-thread scheduling. Two runs of the same
//! mix under the same policy produce identical results, and changing the
//! policy changes only the assignment lists, never the per-warp traces.

use std::sync::Arc;

use crate::config::GpuConfig;
use crate::gpu::{Gpu, SmUnit};
use crate::kernel::{Kernel, KernelInfo};
use crate::simulator::SimResult;
use crate::stats::SmStats;
use gpu_mem::{CtaId, TenantId};
use serde::{Deserialize, Serialize};

/// A kernel submitted for co-execution, bound to the tenant identity used to
/// attribute its resource usage throughout the memory system.
#[derive(Clone)]
pub struct KernelStream {
    /// Tenant identity of this stream (dense, `0..num_streams`).
    pub tenant: TenantId,
    kernel: Arc<dyn Kernel>,
    info: KernelInfo,
}

impl KernelStream {
    /// Binds `kernel` to `tenant`.
    pub fn new(tenant: TenantId, kernel: Arc<dyn Kernel>) -> Self {
        let info = kernel.info();
        KernelStream { tenant, kernel, info }
    }

    /// The stream's kernel.
    pub fn kernel(&self) -> &Arc<dyn Kernel> {
        &self.kernel
    }

    /// Cached launch geometry of the stream's kernel.
    pub fn info(&self) -> &KernelInfo {
        &self.info
    }
}

impl std::fmt::Debug for KernelStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelStream")
            .field("tenant", &self.tenant)
            .field("kernel", &self.info.name)
            .field("ctas", &self.info.num_ctas)
            .finish()
    }
}

/// How co-running kernels share the chip's SMs. See the module docs for the
/// semantics and determinism guarantees of each policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// Temporal multiplexing: kernels run serially, each owning every SM.
    Exclusive,
    /// Disjoint SM sets per kernel; the L2/DRAM backend stays shared.
    SpatialPartition,
    /// CTAs of all kernels interleaved round-robin onto every SM.
    SharedRoundRobin,
}

impl DispatchPolicy {
    /// All policies, in report order.
    pub fn all() -> Vec<DispatchPolicy> {
        vec![
            DispatchPolicy::Exclusive,
            DispatchPolicy::SpatialPartition,
            DispatchPolicy::SharedRoundRobin,
        ]
    }

    /// Display label used by reports and the harness CLI.
    pub fn label(self) -> &'static str {
        match self {
            DispatchPolicy::Exclusive => "exclusive",
            DispatchPolicy::SpatialPartition => "spatial",
            DispatchPolicy::SharedRoundRobin => "shared-rr",
        }
    }

    /// Parses a label (case-insensitive).
    pub fn from_label(label: &str) -> Option<DispatchPolicy> {
        Self::all().into_iter().find(|p| p.label().eq_ignore_ascii_case(label))
    }

    /// Whether kernels execute at the same time under this policy (`false`
    /// only for [`DispatchPolicy::Exclusive`], which serialises them).
    pub fn is_concurrent(self) -> bool {
        !matches!(self, DispatchPolicy::Exclusive)
    }
}

impl std::fmt::Display for DispatchPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One CTA's worth of work assigned to an SM: which tenant it belongs to,
/// which kernel builds its warp programs, and its launch footprint. SMs
/// launch the entries of their work list strictly in order as warp slots and
/// shared memory free up.
#[derive(Clone)]
pub struct CtaWork {
    /// Tenant the CTA belongs to.
    pub tenant: TenantId,
    /// Kernel that builds the CTA's warp programs.
    pub kernel: Arc<dyn Kernel>,
    /// Global CTA id within its kernel's grid.
    pub cta: CtaId,
    /// Warps the CTA launches.
    pub warps: usize,
    /// Programmer-allocated shared memory, in bytes.
    pub shared_mem: u32,
}

impl std::fmt::Debug for CtaWork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CtaWork")
            .field("tenant", &self.tenant)
            .field("cta", &self.cta)
            .field("warps", &self.warps)
            .finish()
    }
}

/// Expands a single kernel into its per-CTA work items (tenant defaults to
/// the stream's id), in launch order.
pub(crate) fn stream_work(stream: &KernelStream) -> Vec<CtaWork> {
    let info = stream.info();
    (0..info.num_ctas)
        .map(|c| CtaWork {
            tenant: stream.tenant,
            kernel: Arc::clone(&stream.kernel),
            cta: c as CtaId,
            warps: info.warps_per_cta.max(1),
            shared_mem: info.shared_mem_per_cta,
        })
        .collect()
}

/// Round-robin CTA dispatch: block `b` of the grid runs on SM `b % num_sms`.
/// Returns one list of global CTA ids per SM, each in launch order. This is
/// PR 2's single-kernel dispatcher, kept as the building block every policy
/// composes.
pub fn dispatch_round_robin(num_ctas: usize, num_sms: usize) -> Vec<Vec<usize>> {
    let num_sms = num_sms.max(1);
    let mut out = vec![Vec::with_capacity(num_ctas.div_ceil(num_sms)); num_sms];
    for b in 0..num_ctas {
        out[b % num_sms].push(b);
    }
    out
}

/// The disjoint SM sets the [`DispatchPolicy::SpatialPartition`] policy hands
/// to each of `num_tenants` tenants on a chip of `num_sms` SMs: contiguous
/// ranges balanced to within one SM, in tenant order. With more tenants than
/// SMs the sets degenerate to `tenant t → SM t mod num_sms` (no longer
/// disjoint — SM-level isolation is impossible in that regime).
pub fn spatial_sm_sets(num_tenants: usize, num_sms: usize) -> Vec<Vec<usize>> {
    let num_sms = num_sms.max(1);
    if num_tenants > num_sms {
        return (0..num_tenants).map(|t| vec![t % num_sms]).collect();
    }
    let base = num_sms / num_tenants.max(1);
    let extra = num_sms % num_tenants.max(1);
    let mut sets = Vec::with_capacity(num_tenants);
    let mut next = 0;
    for t in 0..num_tenants {
        let len = base + usize::from(t < extra);
        sets.push((next..next + len).collect());
        next += len;
    }
    sets
}

/// Computes each SM's work list for `streams` under `policy` on a chip of
/// `num_sms` SMs. Pure and deterministic: the same inputs always produce the
/// same lists.
///
/// For [`DispatchPolicy::Exclusive`] this returns the per-stream round-robin
/// assignments concatenated in stream order — the single-engine
/// approximation in which a later kernel's CTAs launch on an SM as soon as
/// the earlier kernel's CTAs retire from it. [`KernelQueue::run`] implements
/// the exact policy (fully serial execution with cold caches between
/// kernels) and is what the harness uses.
pub fn plan(streams: &[KernelStream], num_sms: usize, policy: DispatchPolicy) -> Vec<Vec<CtaWork>> {
    let num_sms = num_sms.max(1);
    let mut lists: Vec<Vec<CtaWork>> = vec![Vec::new(); num_sms];
    match policy {
        DispatchPolicy::Exclusive => {
            for stream in streams {
                for (sm, work) in round_robin_split(stream_work(stream), num_sms) {
                    lists[sm].extend(work);
                }
            }
        }
        DispatchPolicy::SpatialPartition => {
            let sets = spatial_sm_sets(streams.len(), num_sms);
            for (stream, set) in streams.iter().zip(&sets) {
                for (j, work) in stream_work(stream).into_iter().enumerate() {
                    lists[set[j % set.len()]].push(work);
                }
            }
        }
        DispatchPolicy::SharedRoundRobin => {
            let mut queues: Vec<Vec<CtaWork>> = streams.iter().map(stream_work).collect();
            for q in &mut queues {
                q.reverse(); // pop from the back = launch order
            }
            let mut sequence: Vec<CtaWork> = Vec::new();
            while queues.iter().any(|q| !q.is_empty()) {
                for q in &mut queues {
                    if let Some(work) = q.pop() {
                        sequence.push(work);
                    }
                }
            }
            for (b, work) in sequence.into_iter().enumerate() {
                lists[b % num_sms].push(work);
            }
        }
    }
    lists
}

/// Splits one stream's work round-robin across SMs, yielding `(sm, items)`.
fn round_robin_split(
    work: Vec<CtaWork>,
    num_sms: usize,
) -> impl Iterator<Item = (usize, Vec<CtaWork>)> {
    let mut per_sm: Vec<Vec<CtaWork>> = vec![Vec::new(); num_sms];
    for (b, item) in work.into_iter().enumerate() {
        per_sm[b % num_sms].push(item);
    }
    per_sm.into_iter().enumerate()
}

/// The chip-level kernel queue: the set of streams submitted for one
/// co-execution run, and the entry point that executes them under a
/// [`DispatchPolicy`] and assembles the combined, per-tenant-attributed
/// [`SimResult`].
#[derive(Default)]
pub struct KernelQueue {
    streams: Vec<KernelStream>,
}

impl KernelQueue {
    /// An empty queue.
    pub fn new() -> Self {
        KernelQueue::default()
    }

    /// Builds a queue from kernels, assigning tenant ids in submission order.
    pub fn from_kernels(kernels: impl IntoIterator<Item = Arc<dyn Kernel>>) -> Self {
        let mut queue = KernelQueue::new();
        for k in kernels {
            queue.push(k);
        }
        queue
    }

    /// Submits a kernel, returning the tenant id it was assigned.
    pub fn push(&mut self, kernel: Arc<dyn Kernel>) -> TenantId {
        let tenant = self.streams.len() as TenantId;
        self.streams.push(KernelStream::new(tenant, kernel));
        tenant
    }

    /// The submitted streams, in tenant order.
    pub fn streams(&self) -> &[KernelStream] {
        &self.streams
    }

    /// Number of submitted streams.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// True when no stream was submitted.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Runs every submitted stream on a chip of `config.num_sms` SMs under
    /// `policy` and returns the combined result. `build_unit` is called once
    /// per SM per concurrent engine (per kernel for the serial `Exclusive`
    /// policy) to construct that SM's scheduler and optional redirect cache.
    ///
    /// Concurrent policies run one [`Gpu`] engine over the planned work
    /// lists; `Exclusive` runs one engine per stream back to back with cold
    /// caches between kernels and chains the results (cycles add, tenant `k`'s
    /// finish cycle is offset by every earlier kernel's runtime). A queue
    /// with a single stream produces a result bit-identical to a plain
    /// single-kernel chip run under every policy.
    pub fn run<F>(&self, config: &GpuConfig, policy: DispatchPolicy, mut build_unit: F) -> SimResult
    where
        F: FnMut(usize) -> SmUnit,
    {
        assert!(!self.streams.is_empty(), "a kernel queue needs at least one stream");
        let num_sms = config.num_sms.max(1);
        if policy.is_concurrent() || self.streams.len() == 1 {
            let units = (0..num_sms).map(&mut build_unit).collect();
            let mut gpu = Gpu::with_streams(config.clone(), self.streams.clone(), policy, units);
            gpu.run();
            let mut res = gpu.into_result();
            res.policy = policy.label().to_string();
            return res;
        }
        // Exclusive: serial per-kernel chip runs, chained.
        let mut results = Vec::with_capacity(self.streams.len());
        for stream in &self.streams {
            let solo = KernelStream::new(0, Arc::clone(stream.kernel()));
            let units = (0..num_sms).map(&mut build_unit).collect();
            let mut gpu = Gpu::with_streams(config.clone(), vec![solo], policy, units);
            gpu.run();
            results.push(gpu.into_result());
        }
        let mut merged = merge_serial(results);
        merged.policy = policy.label().to_string();
        merged
    }
}

/// Chains serially executed per-kernel results into one chip-level result:
/// cycles and event counters add, time series are concatenated with cycle and
/// instruction offsets, and each run's tenant record is re-labelled with its
/// queue position and shifted by the preceding runtime.
fn merge_serial(results: Vec<SimResult>) -> SimResult {
    let num_runs = results.len();
    let mut iter = results.into_iter();
    let mut merged = iter.next().expect("at least one result");
    debug_assert_eq!(merged.per_tenant.len(), 1);
    let mut names = vec![merged.kernel.clone()];
    for (k, r) in iter.enumerate() {
        let cycle_offset = merged.cycles;
        let inst_offset = merged.stats.instructions;
        names.push(r.kernel.clone());
        merged.time_series.append_offset(&r.time_series, cycle_offset, inst_offset);
        merged.interference.absorb(&r.interference);
        merged.scheduler_metrics.merge(&r.scheduler_metrics);
        merged.interconnect.bytes_transferred += r.interconnect.bytes_transferred;
        merged.interconnect.queueing_cycles += r.interconnect.queueing_cycles;
        merged.capped |= r.capped;
        merge_sm_serial(&mut merged.stats, &r.stats);
        for (a, b) in merged.per_sm.iter_mut().zip(&r.per_sm) {
            merge_sm_serial(a, b);
        }
        let mut tenant = r.per_tenant.into_iter().next().expect("serial run has one tenant");
        tenant.tenant = (k + 1) as TenantId;
        tenant.finish_cycle += cycle_offset;
        merged.per_tenant.push(tenant);
        merged.cycles += r.cycles;
        merged.stats.cycles = merged.cycles;
    }
    // merge_sm_serial accumulates utilisation *sums*; divide once so every
    // run weighs equally in the mean regardless of queue position.
    merged.stats.redirect_utilization /= num_runs as f64;
    for sm in &mut merged.per_sm {
        sm.redirect_utilization /= num_runs as f64;
    }
    merged.kernel = names.join("+");
    merged
}

/// Serial composition of two SM stat blocks: counters sum (as in
/// [`SmStats::reduce`]) but cycles *add* instead of taking the maximum,
/// because the runs happened back to back on the same SM.
/// `redirect_utilization` accumulates as a *sum* — [`merge_serial`] divides
/// by the run count once at the end, so the mean is equal-weighted.
fn merge_sm_serial(a: &mut SmStats, b: &SmStats) {
    let cycles = a.cycles + b.cycles;
    let utilization_sum = a.redirect_utilization + b.redirect_utilization;
    *a = SmStats::reduce(&[a.clone(), b.clone()]);
    a.cycles = cycles;
    a.redirect_utilization = utilization_sum;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ClosureKernel;
    use crate::trace::{VecProgram, WarpOp};
    use proptest::prelude::*;

    fn kernel(name: &str, ctas: usize, warps: usize) -> Arc<dyn Kernel> {
        let info = KernelInfo {
            name: name.into(),
            num_ctas: ctas,
            warps_per_cta: warps,
            shared_mem_per_cta: 0,
        };
        Arc::new(ClosureKernel::new(info, |_c, _w| Box::new(VecProgram::new(vec![WarpOp::alu()]))))
    }

    fn streams(shapes: &[(usize, usize)]) -> Vec<KernelStream> {
        shapes
            .iter()
            .enumerate()
            .map(|(t, &(ctas, warps))| {
                KernelStream::new(t as TenantId, kernel(&format!("k{t}"), ctas, warps))
            })
            .collect()
    }

    #[test]
    fn round_robin_covers_every_block_once() {
        let lists = dispatch_round_robin(10, 3);
        assert_eq!(lists.len(), 3);
        assert_eq!(lists[0], vec![0, 3, 6, 9]);
        assert_eq!(lists[1], vec![1, 4, 7]);
        assert_eq!(lists[2], vec![2, 5, 8]);
    }

    #[test]
    fn policy_labels_round_trip() {
        for p in DispatchPolicy::all() {
            assert_eq!(DispatchPolicy::from_label(p.label()), Some(p));
            assert_eq!(format!("{p}"), p.label());
        }
        assert_eq!(DispatchPolicy::from_label("nope"), None);
        assert!(!DispatchPolicy::Exclusive.is_concurrent());
        assert!(DispatchPolicy::SpatialPartition.is_concurrent());
    }

    #[test]
    fn spatial_sets_are_disjoint_and_balanced() {
        let sets = spatial_sm_sets(3, 8);
        assert_eq!(sets, vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7]]);
        // More tenants than SMs: wrap (no longer disjoint).
        let wrapped = spatial_sm_sets(5, 3);
        assert_eq!(wrapped, vec![vec![0], vec![1], vec![2], vec![0], vec![1]]);
    }

    #[test]
    fn single_stream_shared_rr_matches_round_robin() {
        let s = streams(&[(7, 2)]);
        let lists = plan(&s, 3, DispatchPolicy::SharedRoundRobin);
        let reference = dispatch_round_robin(7, 3);
        for (sm, list) in lists.iter().enumerate() {
            let ctas: Vec<usize> = list.iter().map(|w| w.cta as usize).collect();
            assert_eq!(ctas, reference[sm]);
            assert!(list.iter().all(|w| w.tenant == 0));
        }
    }

    #[test]
    fn shared_rr_interleaves_tenants_on_every_sm() {
        let s = streams(&[(4, 2), (4, 2)]);
        let lists = plan(&s, 2, DispatchPolicy::SharedRoundRobin);
        // Interleaved sequence: (t0,c0) (t1,c0) (t0,c1) (t1,c1) ...
        // SM 0 gets even positions, SM 1 odd ones.
        let tenants_sm0: Vec<TenantId> = lists[0].iter().map(|w| w.tenant).collect();
        let tenants_sm1: Vec<TenantId> = lists[1].iter().map(|w| w.tenant).collect();
        assert_eq!(tenants_sm0, vec![0, 0, 0, 0]);
        assert_eq!(tenants_sm1, vec![1, 1, 1, 1]);
        // With 3 SMs both tenants appear on every SM.
        let lists3 = plan(&s, 3, DispatchPolicy::SharedRoundRobin);
        for list in &lists3 {
            assert!(!list.is_empty());
        }
        let all_tenants: std::collections::HashSet<TenantId> =
            lists3.iter().flatten().map(|w| w.tenant).collect();
        assert_eq!(all_tenants.len(), 2);
    }

    #[test]
    fn spatial_partition_confines_tenants_to_their_sets() {
        let s = streams(&[(6, 2), (9, 2)]);
        let lists = plan(&s, 4, DispatchPolicy::SpatialPartition);
        let sets = spatial_sm_sets(2, 4);
        for (sm, list) in lists.iter().enumerate() {
            for w in list {
                assert!(
                    sets[w.tenant as usize].contains(&sm),
                    "tenant {} CTA on SM {sm} outside its set",
                    w.tenant
                );
            }
        }
        // Every CTA of every stream is assigned exactly once.
        let mut counts = [vec![0usize; 6], vec![0usize; 9]];
        for w in lists.iter().flatten() {
            counts[w.tenant as usize][w.cta as usize] += 1;
        }
        assert!(counts.iter().flatten().all(|&c| c == 1));
    }

    fn load_kernel(name: &str, ctas: usize, ops: usize) -> Arc<dyn Kernel> {
        let info = KernelInfo {
            name: name.into(),
            num_ctas: ctas,
            warps_per_cta: 2,
            shared_mem_per_cta: 0,
        };
        Arc::new(ClosureKernel::new(info, move |cta, w| {
            let ops = (0..ops)
                .map(|i| {
                    WarpOp::coalesced_load((cta as u64 * 977 + w as u64 * 131 + i as u64) * 128)
                })
                .collect();
            Box::new(VecProgram::new(ops))
        }))
    }

    fn gto_units() -> impl FnMut(usize) -> crate::gpu::SmUnit {
        |_| (Box::new(crate::scheduler::GtoScheduler::new()) as _, None)
    }

    #[test]
    fn exclusive_queue_chains_serial_runs() {
        let config = crate::config::GpuConfig::gtx480().with_num_sms(2);
        let a = load_kernel("a", 2, 8);
        let b = load_kernel("b", 2, 8);
        let solo_cycles = |k: &Arc<dyn Kernel>| {
            KernelQueue::from_kernels([Arc::clone(k)])
                .run(&config, DispatchPolicy::Exclusive, gto_units())
                .cycles
        };
        let (ca, cb) = (solo_cycles(&a), solo_cycles(&b));
        let res =
            KernelQueue::from_kernels([a, b]).run(&config, DispatchPolicy::Exclusive, gto_units());
        assert_eq!(res.policy, "exclusive");
        assert_eq!(res.kernel, "a+b");
        assert_eq!(res.per_tenant.len(), 2);
        // Serial total: cycles add; tenant 1 queues behind tenant 0.
        assert_eq!(res.cycles, ca + cb);
        assert_eq!(res.stats.cycles, res.cycles);
        assert!(res.per_tenant[0].finish_cycle <= ca);
        assert!(res.per_tenant[1].finish_cycle > ca);
        assert_eq!(res.per_tenant[0].tenant, 0);
        assert_eq!(res.per_tenant[1].tenant, 1);
        assert_eq!(res.stats.instructions, 2 * (2 * 2 * 8));
        assert!(!res.capped);
        // Per-tenant instruction split covers the total exactly.
        assert_eq!(
            res.per_tenant.iter().map(|t| t.instructions).sum::<u64>(),
            res.stats.instructions
        );
    }

    #[test]
    fn single_stream_queue_matches_plain_chip_run_under_every_policy() {
        let config = crate::config::GpuConfig::gtx480().with_num_sms(2);
        let reference = {
            let mut gpu = crate::gpu::Gpu::new(
                config.clone(),
                load_kernel("k", 4, 10),
                (0..2).map(|i| gto_units()(i)).collect(),
            );
            gpu.run();
            gpu.into_result()
        };
        for policy in DispatchPolicy::all() {
            let res = KernelQueue::from_kernels([load_kernel("k", 4, 10)]).run(
                &config,
                policy,
                gto_units(),
            );
            assert_eq!(res.cycles, reference.cycles, "{policy}");
            assert_eq!(res.stats, reference.stats, "{policy}");
            assert_eq!(res.per_sm, reference.per_sm, "{policy}");
            assert_eq!(res.time_series, reference.time_series, "{policy}");
            assert_eq!(res.per_tenant, reference.per_tenant, "{policy}");
        }
    }

    proptest! {
        /// Every policy assigns every CTA of every stream exactly once.
        #[test]
        fn plan_is_a_partition(
            shapes in proptest::collection::vec((1usize..40, 1usize..4), 1..5),
            sms in 1usize..32,
            policy_idx in 0usize..3,
        ) {
            let policy = DispatchPolicy::all()[policy_idx];
            let s = streams(&shapes);
            let lists = plan(&s, sms, policy);
            prop_assert_eq!(lists.len(), sms);
            let mut counts: Vec<Vec<usize>> =
                shapes.iter().map(|&(ctas, _)| vec![0; ctas]).collect();
            for w in lists.iter().flatten() {
                counts[w.tenant as usize][w.cta as usize] += 1;
            }
            prop_assert!(counts.iter().flatten().all(|&c| c == 1));
        }
    }
}
